//! Uniform-grid spatial index over a frozen DSM.
//!
//! Every per-record spatial query of the Translator hot path
//! ([`locate`](crate::DigitalSpaceModel::locate),
//! [`region_at`](crate::DigitalSpaceModel::region_at),
//! [`nearest_walkable`](crate::DigitalSpaceModel::nearest_walkable),
//! [`nearest_region`](crate::DigitalSpaceModel::nearest_region)) used to be
//! an O(entities) linear
//! scan, making translation O(records × entities). The index buckets
//! entities and regions per floor into a uniform grid keyed by bounding box,
//! built once at topology-freeze time, so point and nearest queries touch
//! only a handful of candidates.
//!
//! **Equivalence contract:** every query answered through the grid returns
//! *exactly* what the linear scan returns, including tie-breaks. The linear
//! scans use `Iterator::min_by` over id-ordered iteration, which keeps the
//! *first* minimal element — i.e. the lowest id among equal keys. The grid
//! paths therefore compare `(key, id)` lexicographically, and the
//! nearest-neighbour ring search keeps expanding while a ring could still
//! contain an *equal*-distance candidate (`lower_bound <= best`), not just a
//! strictly closer one. The `index_equivalence` proptest pins this down over
//! random models.

use crate::entity::{Entity, EntityId, Footprint};
use crate::semantic::{RegionId, SemanticRegion};
use std::collections::BTreeMap;
use trips_geom::{BoundingBox, FloorId, Point};

/// Grid cells per axis are capped so degenerate floor extents can't blow up
/// memory; with the `sqrt(items)` sizing rule the cap only binds beyond
/// ~4096 items on one floor.
const MAX_CELLS_PER_AXIS: usize = 64;

/// Conservative bbox of an entity's footprint, inflated by the geometry
/// crate's boundary tolerance: `Polygon::contains` accepts points up to
/// [`trips_geom::EPSILON`] outside the raw bbox (wall-snap pass), and the
/// grid must register every cell such a point can land in.
fn entity_bbox(e: &Entity) -> BoundingBox {
    match &e.footprint {
        Footprint::Area(p) => p.bbox(),
        Footprint::Opening { anchor, .. } => BoundingBox::new(*anchor, *anchor),
        Footprint::Line(l) => l.bbox(),
    }
    .inflated(trips_geom::EPSILON)
}

/// Conservative bbox of a region (union over its backing polygons), with the
/// same boundary-tolerance inflation as [`entity_bbox`].
fn region_bbox(r: &SemanticRegion) -> BoundingBox {
    r.polygons
        .iter()
        .fold(BoundingBox::empty(), |bb, p| bb.union(&p.bbox()))
        .inflated(trips_geom::EPSILON)
}

/// One floor's uniform grid. Items are registered in every cell their bbox
/// overlaps; candidate lists stay in ascending id order by construction.
#[derive(Debug, Clone)]
struct FloorGrid {
    bounds: BoundingBox,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    entity_cells: Vec<Vec<EntityId>>,
    region_cells: Vec<Vec<RegionId>>,
}

impl FloorGrid {
    fn build(entities: &[(EntityId, BoundingBox)], regions: &[(RegionId, BoundingBox)]) -> Self {
        let mut bounds = BoundingBox::empty();
        for (_, bb) in entities {
            bounds = bounds.union(bb);
        }
        for (_, bb) in regions {
            bounds = bounds.union(bb);
        }
        let n_items = entities.len() + regions.len();
        let side = ((n_items as f64).sqrt().ceil() as usize).clamp(1, MAX_CELLS_PER_AXIS);
        let (nx, ny) = (side, side);
        // Degenerate extents (a single point, a vertical wall) still get a
        // positive cell size so index arithmetic stays finite.
        let cell_w = (bounds.width() / nx as f64).max(1e-9);
        let cell_h = (bounds.height() / ny as f64).max(1e-9);

        let mut grid = FloorGrid {
            bounds,
            nx,
            ny,
            cell_w,
            cell_h,
            entity_cells: vec![Vec::new(); nx * ny],
            region_cells: vec![Vec::new(); nx * ny],
        };
        for (id, bb) in entities {
            for c in grid.covered_cells(*bb) {
                grid.entity_cells[c].push(*id);
            }
        }
        for (id, bb) in regions {
            for c in grid.covered_cells(*bb) {
                grid.region_cells[c].push(*id);
            }
        }
        grid
    }

    /// Indices of every cell the bbox overlaps.
    fn covered_cells(&self, bb: BoundingBox) -> Vec<usize> {
        if bb.is_empty() {
            return Vec::new();
        }
        let (x0, y0) = self.cell_of(bb.min);
        let (x1, y1) = self.cell_of(bb.max);
        let mut cells = Vec::with_capacity((x1 - x0 + 1) * (y1 - y0 + 1));
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                cells.push(iy * self.nx + ix);
            }
        }
        cells
    }

    /// The cell containing `p`, clamped to the grid. The same floor-division
    /// maps item bboxes and query points, so a point contained in an item's
    /// bbox always lands inside that item's registered cell range.
    fn cell_of(&self, p: Point) -> (usize, usize) {
        let ix = ((p.x - self.bounds.min.x) / self.cell_w).floor() as isize;
        let iy = ((p.y - self.bounds.min.y) / self.cell_h).floor() as isize;
        (
            ix.clamp(0, self.nx as isize - 1) as usize,
            iy.clamp(0, self.ny as isize - 1) as usize,
        )
    }

    /// Candidate entities for point-containment queries at `p`.
    fn entities_at(&self, p: Point) -> &[EntityId] {
        let (ix, iy) = self.cell_of(p);
        &self.entity_cells[iy * self.nx + ix]
    }

    /// Candidate regions for point-containment queries at `p`.
    fn regions_at(&self, p: Point) -> &[RegionId] {
        let (ix, iy) = self.cell_of(p);
        &self.region_cells[iy * self.nx + ix]
    }

    /// Expanding-ring nearest search over one candidate layer.
    ///
    /// `dist` returns the item's distance to the query point, or `None` when
    /// the item doesn't participate (filtered kind). The best candidate is
    /// tracked as `(distance, id)` with the id as tie-break, and rings keep
    /// expanding while `lower_bound(ring) <= best_distance` so every item
    /// that could *equal* the best is examined — matching the linear scan's
    /// first-minimal-in-id-order semantics exactly.
    fn nearest<Id: Copy + Ord>(
        &self,
        cells: &[Vec<Id>],
        p: Point,
        mut dist: impl FnMut(Id) -> Option<f64>,
    ) -> Option<(Id, f64)> {
        let (cx, cy) = self.cell_of(p);
        let cell_min = self.cell_w.min(self.cell_h);
        let max_r = cx.max(self.nx - 1 - cx).max(cy.max(self.ny - 1 - cy));
        let mut seen: std::collections::BTreeSet<Id> = std::collections::BTreeSet::new();
        let mut best: Option<(Id, f64)> = None;

        for r in 0..=max_r {
            if let Some((_, bd)) = best {
                // A cell in ring r is at least (r-1) whole cells away from
                // p's cell along some axis, wherever p sits inside (or
                // beyond) the grid. The EPSILON slack absorbs the geometry
                // crate's boundary tolerance so an equal-distance candidate
                // on a ring edge is never pruned.
                let lower_bound = r.saturating_sub(1) as f64 * cell_min;
                if lower_bound > bd + trips_geom::EPSILON {
                    break;
                }
            }
            self.for_ring(cx, cy, r, |cell| {
                for &id in &cells[cell] {
                    if !seen.insert(id) {
                        continue;
                    }
                    if let Some(d) = dist(id) {
                        best = match best {
                            Some((bid, bd)) if bd < d || (bd == d && bid < id) => Some((bid, bd)),
                            _ => Some((id, d)),
                        };
                    }
                }
            });
        }
        best
    }

    /// Visits every in-bounds cell at Chebyshev distance `r` from `(cx, cy)`.
    fn for_ring(&self, cx: usize, cy: usize, r: usize, mut visit: impl FnMut(usize)) {
        let (cx, cy, r) = (cx as isize, cy as isize, r as isize);
        let in_x = |x: isize| x >= 0 && x < self.nx as isize;
        let in_y = |y: isize| y >= 0 && y < self.ny as isize;
        if r == 0 {
            if in_x(cx) && in_y(cy) {
                visit(cy as usize * self.nx + cx as usize);
            }
            return;
        }
        for ix in (cx - r)..=(cx + r) {
            if !in_x(ix) {
                continue;
            }
            if in_y(cy - r) {
                visit((cy - r) as usize * self.nx + ix as usize);
            }
            if in_y(cy + r) {
                visit((cy + r) as usize * self.nx + ix as usize);
            }
        }
        for iy in (cy - r + 1)..=(cy + r - 1) {
            if !in_y(iy) {
                continue;
            }
            if in_x(cx - r) {
                visit(iy as usize * self.nx + (cx - r) as usize);
            }
            if in_x(cx + r) {
                visit(iy as usize * self.nx + (cx + r) as usize);
            }
        }
    }
}

/// The spatial index: one uniform grid per floor, built by
/// [`freeze`](crate::DigitalSpaceModel::freeze) and invalidated by any
/// mutation.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    floors: BTreeMap<FloorId, FloorGrid>,
}

impl SpatialIndex {
    /// Builds the index from a model's current entities and regions.
    pub(crate) fn build(
        entities: impl Iterator<Item = (EntityId, Vec<FloorId>, BoundingBox)>,
        regions: impl Iterator<Item = (RegionId, FloorId, BoundingBox)>,
    ) -> Self {
        type FloorItems = (Vec<(EntityId, BoundingBox)>, Vec<(RegionId, BoundingBox)>);
        let mut per_floor: BTreeMap<FloorId, FloorItems> = BTreeMap::new();
        for (id, floors, bb) in entities {
            for f in floors {
                per_floor.entry(f).or_default().0.push((id, bb));
            }
        }
        for (id, floor, bb) in regions {
            per_floor.entry(floor).or_default().1.push((id, bb));
        }
        SpatialIndex {
            floors: per_floor
                .into_iter()
                .map(|(f, (es, rs))| (f, FloorGrid::build(&es, &rs)))
                .collect(),
        }
    }

    pub(crate) fn from_model(dsm: &crate::model::DigitalSpaceModel) -> Self {
        Self::build(
            dsm.entities()
                .map(|e| (e.id, e.floors().collect(), entity_bbox(e))),
            dsm.regions().map(|r| (r.id, r.floor, region_bbox(r))),
        )
    }

    /// Candidate entity ids whose bbox could contain `p` on `floor`, in
    /// ascending id order. Exact containment still has to be tested.
    pub(crate) fn entity_candidates(&self, floor: FloorId, p: Point) -> &[EntityId] {
        self.floors
            .get(&floor)
            .map(|g| g.entities_at(p))
            .unwrap_or(&[])
    }

    /// Candidate region ids whose bbox could contain `p` on `floor`.
    pub(crate) fn region_candidates(&self, floor: FloorId, p: Point) -> &[RegionId] {
        self.floors
            .get(&floor)
            .map(|g| g.regions_at(p))
            .unwrap_or(&[])
    }

    /// Nearest entity on `floor` under `dist`, ties broken to the lowest id.
    pub(crate) fn nearest_entity(
        &self,
        floor: FloorId,
        p: Point,
        dist: impl FnMut(EntityId) -> Option<f64>,
    ) -> Option<(EntityId, f64)> {
        self.floors
            .get(&floor)
            .and_then(|g| g.nearest(&g.entity_cells, p, dist))
    }

    /// Nearest region on `floor` under `dist`, ties broken to the lowest id.
    pub(crate) fn nearest_region(
        &self,
        floor: FloorId,
        p: Point,
        dist: impl FnMut(RegionId) -> Option<f64>,
    ) -> Option<(RegionId, f64)> {
        self.floors
            .get(&floor)
            .and_then(|g| g.nearest(&g.region_cells, p, dist))
    }

    /// Number of indexed floors (diagnostics).
    pub fn floor_count(&self) -> usize {
        self.floors.len()
    }

    /// `(cells, bucketed entity entries, bucketed region entries)` for one
    /// floor — exposed for diagnostics and index tests.
    pub fn floor_stats(&self, floor: FloorId) -> Option<(usize, usize, usize)> {
        self.floors.get(&floor).map(|g| {
            (
                g.nx * g.ny,
                g.entity_cells.iter().map(Vec::len).sum(),
                g.region_cells.iter().map(Vec::len).sum(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x0: f64, y0: f64, x1: f64, y1: f64) -> BoundingBox {
        BoundingBox::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn index_of(entities: Vec<(u32, Vec<FloorId>, BoundingBox)>) -> SpatialIndex {
        SpatialIndex::build(
            entities
                .into_iter()
                .map(|(id, fs, b)| (EntityId(id), fs, b)),
            std::iter::empty(),
        )
    }

    #[test]
    fn point_candidates_cover_containing_boxes() {
        let idx = index_of(vec![
            (0, vec![0], bb(0.0, 0.0, 10.0, 10.0)),
            (1, vec![0], bb(20.0, 0.0, 30.0, 10.0)),
            (2, vec![1], bb(0.0, 0.0, 10.0, 10.0)),
        ]);
        let cands = idx.entity_candidates(0, Point::new(5.0, 5.0));
        assert!(cands.contains(&EntityId(0)));
        assert!(!cands.contains(&EntityId(2)), "wrong floor");
        assert!(idx.entity_candidates(7, Point::new(5.0, 5.0)).is_empty());
    }

    #[test]
    fn candidates_in_id_order() {
        let idx = index_of(
            (0..20)
                .map(|i| (i, vec![0], bb(0.0, 0.0, 100.0, 100.0)))
                .collect(),
        );
        let cands = idx.entity_candidates(0, Point::new(50.0, 50.0));
        let mut sorted = cands.to_vec();
        sorted.sort();
        assert_eq!(cands, &sorted[..]);
        assert_eq!(cands.len(), 20);
    }

    #[test]
    fn nearest_ties_break_to_lowest_id() {
        // Two unit boxes equidistant from the probe point.
        let idx = index_of(vec![
            (3, vec![0], bb(10.0, 0.0, 11.0, 1.0)),
            (7, vec![0], bb(-11.0, 0.0, -10.0, 1.0)),
        ]);
        let centers = [Point::new(10.0, 0.5), Point::new(-10.0, 0.5)];
        let got = idx.nearest_entity(0, Point::new(0.0, 0.5), |id| {
            let c = if id == EntityId(3) {
                centers[0]
            } else {
                centers[1]
            };
            Some(c.distance(Point::new(0.0, 0.5)))
        });
        assert_eq!(got, Some((EntityId(3), 10.0)));
    }

    #[test]
    fn nearest_none_when_filtered_out() {
        let idx = index_of(vec![(0, vec![0], bb(0.0, 0.0, 1.0, 1.0))]);
        assert_eq!(idx.nearest_entity(0, Point::new(5.0, 5.0), |_| None), None);
        assert_eq!(
            idx.nearest_entity(9, Point::new(0.0, 0.0), |_| Some(0.0)),
            None
        );
    }

    #[test]
    fn multi_floor_entities_registered_per_floor() {
        let idx = index_of(vec![(0, vec![0, 1, 2], bb(0.0, 0.0, 2.0, 2.0))]);
        for f in 0..3 {
            assert_eq!(
                idx.entity_candidates(f, Point::new(1.0, 1.0)),
                &[EntityId(0)]
            );
        }
        assert_eq!(idx.floor_count(), 3);
    }
}
