//! The Space Modeler's drawing tool (paper §3, Figure 2), as a library.
//!
//! The paper's analysts trace a floorplan image in three steps: (1) import
//! the image, (2) draw and combine geometric elements (polygons, polylines,
//! circles) to form indoor entities with edit features — keyboard shortcuts,
//! redo/undo, auto-adjust hints, free transformation/resizing/moving, and
//! layer/group control — and (3) attach semantic tags to the drawn shapes.
//!
//! [`FloorplanCanvas`] is the faithful programmatic equivalent: the same
//! operation vocabulary, driven by code instead of a mouse. `export_to_dsm`
//! converts the finished trace into DSM entities and semantic regions.

use crate::entity::{Entity, EntityKind};
use crate::model::{DigitalSpaceModel, DsmError};
use crate::semantic::{SemanticRegion, SemanticTag};
use serde::{Deserialize, Serialize};
use trips_geom::{Circle, FloorId, Point, Polygon, Polyline};

/// Identifier of a drawn element on the canvas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ElementId(pub u32);

/// A geometric element as drawn (before discretisation into DSM footprints).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    Polygon(Polygon),
    Polyline(Polyline),
    Circle(Circle),
    /// A door marker: anchor point plus opening width.
    DoorMarker {
        anchor: Point,
        width: f64,
    },
}

impl Shape {
    /// All vertices of the shape (snapping candidates).
    pub fn vertices(&self) -> Vec<Point> {
        match self {
            Shape::Polygon(p) => p.vertices().to_vec(),
            Shape::Polyline(l) => l.points().to_vec(),
            Shape::Circle(c) => vec![c.center],
            Shape::DoorMarker { anchor, .. } => vec![*anchor],
        }
    }

    fn translated(&self, dx: f64, dy: f64) -> Shape {
        match self {
            Shape::Polygon(p) => Shape::Polygon(p.translated(dx, dy)),
            Shape::Polyline(l) => Shape::Polyline(Polyline::new(
                l.points()
                    .iter()
                    .map(|p| Point::new(p.x + dx, p.y + dy))
                    .collect(),
            )),
            Shape::Circle(c) => Shape::Circle(Circle::new(
                Point::new(c.center.x + dx, c.center.y + dy),
                c.radius,
            )),
            Shape::DoorMarker { anchor, width } => Shape::DoorMarker {
                anchor: Point::new(anchor.x + dx, anchor.y + dy),
                width: *width,
            },
        }
    }

    fn scaled(&self, center: Point, factor: f64) -> Shape {
        match self {
            Shape::Polygon(p) => Shape::Polygon(p.scaled(center, factor)),
            Shape::Polyline(l) => Shape::Polyline(Polyline::new(
                l.points()
                    .iter()
                    .map(|p| center + (*p - center) * factor)
                    .collect(),
            )),
            Shape::Circle(c) => Shape::Circle(Circle::new(
                center + (c.center - center) * factor,
                c.radius * factor,
            )),
            Shape::DoorMarker { anchor, width } => Shape::DoorMarker {
                anchor: center + (*anchor - center) * factor,
                width: width * factor,
            },
        }
    }

    fn rotated(&self, center: Point, angle: f64) -> Shape {
        match self {
            Shape::Polygon(p) => Shape::Polygon(p.rotated(center, angle)),
            Shape::Polyline(l) => Shape::Polyline(Polyline::new(
                l.points()
                    .iter()
                    .map(|p| p.rotated_around(center, angle))
                    .collect(),
            )),
            Shape::Circle(c) => Shape::Circle(Circle::new(
                c.center.rotated_around(center, angle),
                c.radius,
            )),
            Shape::DoorMarker { anchor, width } => Shape::DoorMarker {
                anchor: anchor.rotated_around(center, angle),
                width: *width,
            },
        }
    }
}

/// A drawn element: a shape plus its editorial state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanvasElement {
    pub id: ElementId,
    pub shape: Shape,
    /// Entity kind this element will become on export.
    pub kind: EntityKind,
    /// Element name (export becomes the entity name).
    pub name: String,
    /// Drawing layer (layer control of Figure 2).
    pub layer: u32,
    /// Group id (group control); 0 = ungrouped.
    pub group: u32,
    /// Attached semantic tag, if any (step 3 of DSM creation).
    pub tag: Option<SemanticTag>,
}

/// One undoable canvas operation.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    Add(CanvasElement),
    Remove(CanvasElement),
    Replace {
        before: CanvasElement,
        after: CanvasElement,
    },
}

impl Op {
    fn inverse(&self) -> Op {
        match self {
            Op::Add(e) => Op::Remove(e.clone()),
            Op::Remove(e) => Op::Add(e.clone()),
            Op::Replace { before, after } => Op::Replace {
                before: after.clone(),
                after: before.clone(),
            },
        }
    }
}

/// Errors raised by canvas operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanvasError {
    UnknownElement(ElementId),
    NothingToUndo,
    NothingToRedo,
}

impl std::fmt::Display for CanvasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanvasError::UnknownElement(id) => write!(f, "unknown canvas element {}", id.0),
            CanvasError::NothingToUndo => write!(f, "nothing to undo"),
            CanvasError::NothingToRedo => write!(f, "nothing to redo"),
        }
    }
}

impl std::error::Error for CanvasError {}

/// A per-floor drawing canvas with undo/redo, snapping, layers and groups.
#[derive(Debug, Clone)]
pub struct FloorplanCanvas {
    pub floor: FloorId,
    /// Reference floorplan image name (step 1: "import the floorplan image").
    pub background_image: Option<String>,
    elements: Vec<CanvasElement>,
    next_id: u32,
    undo_stack: Vec<Op>,
    redo_stack: Vec<Op>,
    /// Snap radius for the auto-adjust hint, metres.
    pub snap_radius: f64,
    /// Number of sides used when discretising circles on export.
    pub circle_sides: usize,
}

impl FloorplanCanvas {
    /// Creates an empty canvas for `floor`.
    pub fn new(floor: FloorId) -> Self {
        FloorplanCanvas {
            floor,
            background_image: None,
            elements: Vec::new(),
            next_id: 0,
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
            snap_radius: 0.3,
            circle_sides: 24,
        }
    }

    /// Step 1: import the floorplan image (kept as a reference string; the
    /// image itself is background-only and never parsed).
    pub fn import_image(&mut self, name: &str) {
        self.background_image = Some(name.to_string());
    }

    /// Number of elements currently drawn.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the canvas has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// All elements.
    pub fn elements(&self) -> &[CanvasElement] {
        &self.elements
    }

    /// Looks up an element.
    pub fn element(&self, id: ElementId) -> Result<&CanvasElement, CanvasError> {
        self.elements
            .iter()
            .find(|e| e.id == id)
            .ok_or(CanvasError::UnknownElement(id))
    }

    fn apply(&mut self, op: Op) {
        match &op {
            Op::Add(e) => self.elements.push(e.clone()),
            Op::Remove(e) => self.elements.retain(|x| x.id != e.id),
            Op::Replace { before, after } => {
                if let Some(slot) = self.elements.iter_mut().find(|x| x.id == before.id) {
                    *slot = after.clone();
                }
            }
        }
        self.undo_stack.push(op);
        self.redo_stack.clear();
    }

    /// Auto-adjust hint: snaps `p` to the nearest existing vertex within
    /// [`snap_radius`](Self::snap_radius); returns `p` unchanged otherwise.
    pub fn snap(&self, p: Point) -> Point {
        let mut best = p;
        let mut best_d = self.snap_radius;
        for e in &self.elements {
            for v in e.shape.vertices() {
                let d = v.distance(p);
                if d <= best_d {
                    best_d = d;
                    best = v;
                }
            }
        }
        best
    }

    /// Draws a polygon element (with vertex snapping applied).
    pub fn draw_polygon(
        &mut self,
        kind: EntityKind,
        name: &str,
        vertices: Vec<Point>,
    ) -> ElementId {
        let snapped: Vec<Point> = vertices.into_iter().map(|v| self.snap(v)).collect();
        self.add_element(Shape::Polygon(Polygon::new(snapped)), kind, name)
    }

    /// Draws a polyline element (walls).
    pub fn draw_polyline(&mut self, kind: EntityKind, name: &str, points: Vec<Point>) -> ElementId {
        let snapped: Vec<Point> = points.into_iter().map(|v| self.snap(v)).collect();
        self.add_element(Shape::Polyline(Polyline::new(snapped)), kind, name)
    }

    /// Draws a circle element.
    pub fn draw_circle(
        &mut self,
        kind: EntityKind,
        name: &str,
        center: Point,
        radius: f64,
    ) -> ElementId {
        self.add_element(
            Shape::Circle(Circle::new(self.snap(center), radius)),
            kind,
            name,
        )
    }

    /// Places a door marker.
    pub fn draw_door(&mut self, name: &str, anchor: Point, width: f64) -> ElementId {
        self.add_element(
            Shape::DoorMarker {
                anchor: self.snap(anchor),
                width,
            },
            EntityKind::Door,
            name,
        )
    }

    fn add_element(&mut self, shape: Shape, kind: EntityKind, name: &str) -> ElementId {
        let id = ElementId(self.next_id);
        self.next_id += 1;
        let e = CanvasElement {
            id,
            shape,
            kind,
            name: name.to_string(),
            layer: 0,
            group: 0,
            tag: None,
        };
        self.apply(Op::Add(e));
        id
    }

    /// Deletes an element.
    pub fn delete(&mut self, id: ElementId) -> Result<(), CanvasError> {
        let e = self.element(id)?.clone();
        self.apply(Op::Remove(e));
        Ok(())
    }

    fn replace_shape(
        &mut self,
        id: ElementId,
        f: impl FnOnce(&Shape) -> Shape,
    ) -> Result<(), CanvasError> {
        let before = self.element(id)?.clone();
        let mut after = before.clone();
        after.shape = f(&before.shape);
        self.apply(Op::Replace { before, after });
        Ok(())
    }

    /// Edit mode: move (free transformation).
    pub fn move_element(&mut self, id: ElementId, dx: f64, dy: f64) -> Result<(), CanvasError> {
        self.replace_shape(id, |s| s.translated(dx, dy))
    }

    /// Edit mode: resize around a center.
    pub fn resize_element(
        &mut self,
        id: ElementId,
        center: Point,
        factor: f64,
    ) -> Result<(), CanvasError> {
        self.replace_shape(id, |s| s.scaled(center, factor))
    }

    /// Edit mode: rotate around a center.
    pub fn rotate_element(
        &mut self,
        id: ElementId,
        center: Point,
        angle: f64,
    ) -> Result<(), CanvasError> {
        self.replace_shape(id, |s| s.rotated(center, angle))
    }

    /// Step 3: attach a semantic tag to a drawn element.
    pub fn assign_tag(&mut self, id: ElementId, tag: SemanticTag) -> Result<(), CanvasError> {
        let before = self.element(id)?.clone();
        let mut after = before.clone();
        after.tag = Some(tag);
        self.apply(Op::Replace { before, after });
        Ok(())
    }

    /// Renames an element.
    pub fn rename(&mut self, id: ElementId, name: &str) -> Result<(), CanvasError> {
        let before = self.element(id)?.clone();
        let mut after = before.clone();
        after.name = name.to_string();
        self.apply(Op::Replace { before, after });
        Ok(())
    }

    /// Layer control.
    pub fn set_layer(&mut self, id: ElementId, layer: u32) -> Result<(), CanvasError> {
        let before = self.element(id)?.clone();
        let mut after = before.clone();
        after.layer = layer;
        self.apply(Op::Replace { before, after });
        Ok(())
    }

    /// Group control: put several elements in one group (they then move
    /// together via [`move_group`](Self::move_group)).
    pub fn set_group(&mut self, ids: &[ElementId], group: u32) -> Result<(), CanvasError> {
        for &id in ids {
            let before = self.element(id)?.clone();
            let mut after = before.clone();
            after.group = group;
            self.apply(Op::Replace { before, after });
        }
        Ok(())
    }

    /// Moves all elements of a group.
    pub fn move_group(&mut self, group: u32, dx: f64, dy: f64) -> Result<(), CanvasError> {
        let ids: Vec<ElementId> = self
            .elements
            .iter()
            .filter(|e| e.group == group && group != 0)
            .map(|e| e.id)
            .collect();
        for id in ids {
            self.move_element(id, dx, dy)?;
        }
        Ok(())
    }

    /// Undo the last operation.
    pub fn undo(&mut self) -> Result<(), CanvasError> {
        let op = self.undo_stack.pop().ok_or(CanvasError::NothingToUndo)?;
        let inv = op.inverse();
        match &inv {
            Op::Add(e) => self.elements.push(e.clone()),
            Op::Remove(e) => self.elements.retain(|x| x.id != e.id),
            Op::Replace { before, after } => {
                if let Some(slot) = self.elements.iter_mut().find(|x| x.id == before.id) {
                    *slot = after.clone();
                }
            }
        }
        self.redo_stack.push(op);
        Ok(())
    }

    /// Redo the last undone operation.
    pub fn redo(&mut self) -> Result<(), CanvasError> {
        let op = self.redo_stack.pop().ok_or(CanvasError::NothingToRedo)?;
        match &op {
            Op::Add(e) => self.elements.push(e.clone()),
            Op::Remove(e) => self.elements.retain(|x| x.id != e.id),
            Op::Replace { before, after } => {
                if let Some(slot) = self.elements.iter_mut().find(|x| x.id == before.id) {
                    *slot = after.clone();
                }
            }
        }
        self.undo_stack.push(op);
        Ok(())
    }

    /// Exports the drawn elements into `dsm` as entities; tagged area
    /// elements additionally become semantic regions mapped to their entity
    /// ("the system reads the drawn indoor entities' geometric properties
    /// and semantic tags", paper §3).
    pub fn export_to_dsm(&self, dsm: &mut DigitalSpaceModel) -> Result<ExportReport, DsmError> {
        let mut report = ExportReport::default();
        for el in &self.elements {
            let eid = dsm.next_entity_id();
            let entity = match (&el.shape, el.kind) {
                (Shape::DoorMarker { anchor, width }, _) => {
                    Entity::door(eid, self.floor, &el.name, *anchor, *width)
                }
                (Shape::Polygon(p), kind) => {
                    Entity::area(eid, kind, self.floor, &el.name, p.clone())
                }
                (Shape::Circle(c), kind) => Entity::area(
                    eid,
                    kind,
                    self.floor,
                    &el.name,
                    c.to_polygon(self.circle_sides),
                ),
                (Shape::Polyline(l), _) => Entity::wall(eid, self.floor, &el.name, l.clone()),
            };
            let footprint = entity.footprint.clone();
            dsm.add_entity(entity)?;
            report.entities += 1;

            if let (Some(tag), Some(poly)) = (&el.tag, footprint.as_area()) {
                let rid = dsm.next_region_id();
                dsm.add_region(SemanticRegion::new(
                    rid,
                    &el.name,
                    tag.clone(),
                    self.floor,
                    poly.clone(),
                    eid,
                ))?;
                report.regions += 1;
            }
        }
        Ok(report)
    }
}

/// Summary of a canvas export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportReport {
    pub entities: usize,
    pub regions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq_pts(x: f64, y: f64, w: f64) -> Vec<Point> {
        vec![
            Point::new(x, y),
            Point::new(x + w, y),
            Point::new(x + w, y + w),
            Point::new(x, y + w),
        ]
    }

    #[test]
    fn draw_and_query() {
        let mut c = FloorplanCanvas::new(0);
        c.import_image("floor0.png");
        let id = c.draw_polygon(EntityKind::Room, "Nike", sq_pts(0.0, 0.0, 10.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.element(id).unwrap().name, "Nike");
        assert_eq!(c.background_image.as_deref(), Some("floor0.png"));
    }

    #[test]
    fn snapping_attracts_nearby_vertices() {
        let mut c = FloorplanCanvas::new(0);
        c.draw_polygon(EntityKind::Room, "A", sq_pts(0.0, 0.0, 10.0));
        // Vertex drawn 0.2 m off the existing corner snaps onto it.
        let id = c.draw_polygon(
            EntityKind::Room,
            "B",
            vec![
                Point::new(10.1, 0.15),
                Point::new(20.0, 0.0),
                Point::new(20.0, 10.0),
                Point::new(10.05, 9.9),
            ],
        );
        let Shape::Polygon(p) = &c.element(id).unwrap().shape else {
            panic!("expected polygon");
        };
        assert_eq!(p.vertices()[0], Point::new(10.0, 0.0));
        assert_eq!(p.vertices()[3], Point::new(10.0, 10.0));
    }

    #[test]
    fn snap_leaves_distant_points_alone() {
        let mut c = FloorplanCanvas::new(0);
        c.draw_polygon(EntityKind::Room, "A", sq_pts(0.0, 0.0, 10.0));
        assert_eq!(c.snap(Point::new(5.0, 5.0)), Point::new(5.0, 5.0));
    }

    #[test]
    fn undo_redo_roundtrip() {
        let mut c = FloorplanCanvas::new(0);
        let id = c.draw_polygon(EntityKind::Room, "A", sq_pts(0.0, 0.0, 10.0));
        c.move_element(id, 5.0, 0.0).unwrap();
        let moved = c.element(id).unwrap().shape.vertices()[0];
        assert_eq!(moved, Point::new(5.0, 0.0));
        c.undo().unwrap();
        assert_eq!(
            c.element(id).unwrap().shape.vertices()[0],
            Point::new(0.0, 0.0)
        );
        c.redo().unwrap();
        assert_eq!(
            c.element(id).unwrap().shape.vertices()[0],
            Point::new(5.0, 0.0)
        );
        // Undo twice removes the element entirely.
        c.undo().unwrap();
        c.undo().unwrap();
        assert!(c.is_empty());
        c.redo().unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn undo_empty_stack_errors() {
        let mut c = FloorplanCanvas::new(0);
        assert_eq!(c.undo(), Err(CanvasError::NothingToUndo));
        assert_eq!(c.redo(), Err(CanvasError::NothingToRedo));
    }

    #[test]
    fn new_draw_clears_redo() {
        let mut c = FloorplanCanvas::new(0);
        c.draw_circle(EntityKind::Obstacle, "pillar", Point::new(3.0, 3.0), 0.5);
        c.undo().unwrap();
        c.draw_circle(EntityKind::Obstacle, "pillar2", Point::new(4.0, 4.0), 0.5);
        assert_eq!(c.redo(), Err(CanvasError::NothingToRedo));
    }

    #[test]
    fn transforms() {
        let mut c = FloorplanCanvas::new(0);
        let id = c.draw_polygon(EntityKind::Room, "A", sq_pts(0.0, 0.0, 10.0));
        c.resize_element(id, Point::origin(), 2.0).unwrap();
        let Shape::Polygon(p) = &c.element(id).unwrap().shape else {
            panic!()
        };
        assert!((p.area() - 400.0).abs() < 1e-9);
        c.rotate_element(id, Point::origin(), std::f64::consts::FRAC_PI_2)
            .unwrap();
        let Shape::Polygon(p) = &c.element(id).unwrap().shape else {
            panic!()
        };
        assert!((p.area() - 400.0).abs() < 1e-6);
    }

    #[test]
    fn groups_move_together() {
        let mut c = FloorplanCanvas::new(0);
        let a = c.draw_polygon(EntityKind::Room, "A", sq_pts(0.0, 0.0, 5.0));
        let b = c.draw_polygon(EntityKind::Room, "B", sq_pts(10.0, 0.0, 5.0));
        let lone = c.draw_polygon(EntityKind::Room, "C", sq_pts(20.0, 0.0, 5.0));
        c.set_group(&[a, b], 1).unwrap();
        c.move_group(1, 0.0, 100.0).unwrap();
        assert_eq!(c.element(a).unwrap().shape.vertices()[0].y, 100.0);
        assert_eq!(c.element(b).unwrap().shape.vertices()[0].y, 100.0);
        assert_eq!(c.element(lone).unwrap().shape.vertices()[0].y, 0.0);
    }

    #[test]
    fn delete_and_unknown() {
        let mut c = FloorplanCanvas::new(0);
        let id = c.draw_polygon(EntityKind::Room, "A", sq_pts(0.0, 0.0, 5.0));
        c.delete(id).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.delete(id), Err(CanvasError::UnknownElement(id)));
        c.undo().unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn export_creates_entities_and_regions() {
        let mut c = FloorplanCanvas::new(2);
        let shop = c.draw_polygon(EntityKind::Room, "Adidas", sq_pts(0.0, 0.0, 8.0));
        c.assign_tag(shop, SemanticTag::new("sportswear", "shop"))
            .unwrap();
        c.draw_door("adidas-door", Point::new(8.0, 4.0), 1.2);
        c.draw_polyline(
            EntityKind::Wall,
            "north-wall",
            vec![Point::new(0.0, 20.0), Point::new(50.0, 20.0)],
        );
        let pillar = c.draw_circle(EntityKind::Obstacle, "pillar", Point::new(4.0, 4.0), 0.4);
        let _ = pillar;

        let mut dsm = DigitalSpaceModel::new("mall");
        let report = c.export_to_dsm(&mut dsm).unwrap();
        assert_eq!(report.entities, 4);
        assert_eq!(report.regions, 1);
        assert_eq!(dsm.entity_count(), 4);
        let region = dsm.regions().next().unwrap();
        assert_eq!(region.name, "Adidas");
        assert_eq!(region.floor, 2);
        // Circle exported as polygon area.
        let pillar_entity = dsm
            .entities()
            .find(|e| e.kind == EntityKind::Obstacle)
            .unwrap();
        assert!(pillar_entity.footprint.as_area().is_some());
    }
}
