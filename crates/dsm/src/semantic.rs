//! Semantic regions and tags.
//!
//! A *semantic region* is "a region associated with some practical semantics"
//! (paper §1) — a shop, a cashier area, the center hall. Regions carry the
//! spatial annotation of mobility semantics. Analysts create them in the
//! Space Modeler by attaching semantic tags to drawn entities.

use crate::entity::EntityId;
use serde::{Deserialize, Serialize};
use std::fmt;
use trips_geom::{FloorId, Point, Polygon};

/// Unique identifier of a semantic region within a DSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A semantic tag: the label vocabulary the analyst attaches to drawn shapes.
///
/// Tags have a `category` (e.g. `"shop"`, `"facility"`) and a display `style`
/// (the paper: "customize and apply different styles to differentiate the
/// indoor entities with different semantic tags").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SemanticTag {
    /// Tag name, e.g. `"sportswear"`, `"cashier"`, `"atrium"`.
    pub name: String,
    /// Coarse category, e.g. `"shop"`, `"service"`, `"circulation"`.
    pub category: String,
    /// Display style as a CSS-like colour string used by the Viewer/SVG.
    pub style: String,
}

impl SemanticTag {
    /// Creates a tag with a default style derived from the category.
    pub fn new(name: &str, category: &str) -> Self {
        let style = match category {
            "shop" => "#4c78a8",
            "service" => "#f58518",
            "circulation" => "#b0b0b0",
            _ => "#54a24b",
        };
        SemanticTag {
            name: name.to_string(),
            category: category.to_string(),
            style: style.to_string(),
        }
    }

    /// Creates a tag with an explicit style.
    pub fn with_style(name: &str, category: &str, style: &str) -> Self {
        SemanticTag {
            name: name.to_string(),
            category: category.to_string(),
            style: style.to_string(),
        }
    }
}

/// A semantic region: a named, tagged area on one floor, backed by one or
/// more drawn entities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticRegion {
    pub id: RegionId,
    /// Display name, e.g. `"Nike Store"`, `"Center Hall"`, `"Cashier"`.
    pub name: String,
    pub tag: SemanticTag,
    pub floor: FloorId,
    /// The region's area footprint (union of the backing entities is
    /// represented as a list of polygons).
    pub polygons: Vec<Polygon>,
    /// Entities this region is mapped onto (the DSM's entity↔region mapping).
    pub entities: Vec<EntityId>,
}

impl SemanticRegion {
    /// Creates a region backed by a single polygon and entity.
    pub fn new(
        id: RegionId,
        name: &str,
        tag: SemanticTag,
        floor: FloorId,
        polygon: Polygon,
        entity: EntityId,
    ) -> Self {
        SemanticRegion {
            id,
            name: name.to_string(),
            tag,
            floor,
            polygons: vec![polygon],
            entities: vec![entity],
        }
    }

    /// Closed containment test over all backing polygons.
    pub fn contains(&self, p: Point) -> bool {
        self.polygons.iter().any(|poly| poly.contains(p))
    }

    /// Distance from `p` to the region (0 inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.polygons
            .iter()
            .map(|poly| poly.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Total area of the region.
    pub fn area(&self) -> f64 {
        self.polygons.iter().map(|p| p.area()).sum()
    }

    /// A deterministic interior point (for labels and inference anchors).
    pub fn anchor(&self) -> Point {
        self.polygons[0].interior_point()
    }

    /// Adds another backing polygon/entity pair (multi-entity regions, e.g.
    /// a shop with a storefront and a stockroom).
    pub fn add_part(&mut self, polygon: Polygon, entity: EntityId) {
        self.polygons.push(polygon);
        self.entities.push(entity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_geom::Point;

    fn region() -> SemanticRegion {
        SemanticRegion::new(
            RegionId(1),
            "Nike Store",
            SemanticTag::new("sportswear", "shop"),
            3,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 8.0)),
            EntityId(7),
        )
    }

    #[test]
    fn tag_default_styles() {
        assert_eq!(SemanticTag::new("x", "shop").style, "#4c78a8");
        assert_eq!(SemanticTag::new("x", "circulation").style, "#b0b0b0");
        assert_eq!(SemanticTag::new("x", "other").style, "#54a24b");
        assert_eq!(
            SemanticTag::with_style("x", "shop", "#123456").style,
            "#123456"
        );
    }

    #[test]
    fn containment_and_distance() {
        let r = region();
        assert!(r.contains(Point::new(5.0, 4.0)));
        assert!(!r.contains(Point::new(11.0, 4.0)));
        assert_eq!(r.distance_to_point(Point::new(5.0, 4.0)), 0.0);
        assert!((r.distance_to_point(Point::new(12.0, 4.0)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn multi_part_region() {
        let mut r = region();
        r.add_part(
            Polygon::rectangle(Point::new(20.0, 0.0), Point::new(25.0, 5.0)),
            EntityId(8),
        );
        assert!(r.contains(Point::new(22.0, 2.0)));
        assert_eq!(r.entities.len(), 2);
        assert!((r.area() - (80.0 + 25.0)).abs() < 1e-9);
    }

    #[test]
    fn anchor_is_inside() {
        let r = region();
        assert!(r.contains(r.anchor()));
    }

    #[test]
    fn ids_display() {
        assert_eq!(RegionId(4).to_string(), "r4");
    }
}
