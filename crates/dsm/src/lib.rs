//! Digital Space Model (DSM) for TRIPS.
//!
//! The DSM is the semi-structured description of an indoor space that every
//! other TRIPS component consumes (paper §3, "Creating DSM from Floorplan
//! Image"). It captures:
//!
//! * **geometric attributes** of indoor entities — rooms, doors, walls,
//!   staircases, hallways ([`entity`]);
//! * **topological relations** between entities (which door opens into which
//!   rooms, which staircase connects which floors) and between semantic
//!   regions ([`topology`]);
//! * **semantic regions** and the mapping from entities to regions
//!   ([`semantic`]);
//! * the **minimum indoor walking distance** engine built on the door graph
//!   ([`distance`]) that the Cleaning layer's speed constraint relies on;
//! * a **uniform-grid spatial index** ([`index`]) built at freeze time that
//!   answers the per-record point/nearest queries sublinearly, with results
//!   identical to the linear scans (tie-breaks included).
//!
//! Two front doors create DSMs:
//!
//! * [`canvas::FloorplanCanvas`] — the programmatic equivalent of the Space
//!   Modeler's drawing tool (trace shapes, undo/redo, snap, tag, export);
//! * [`builder::MallBuilder`] — a parametric generator for the multi-floor
//!   shopping-mall layouts used throughout the evaluation.
//!
//! The DSM round-trips through JSON ([`json`]) exactly as the paper stores it.

pub mod builder;
pub mod canvas;
pub mod distance;
pub mod entity;
pub mod index;
pub mod json;
pub mod semantic;
pub mod topology;
pub mod validate;

mod model;

pub use distance::{PathQuery, WalkPath};
pub use entity::{Entity, EntityId, EntityKind};
pub use index::SpatialIndex;
pub use model::{DigitalSpaceModel, DsmError, FloorInfo};
pub use semantic::{RegionId, SemanticRegion, SemanticTag};
pub use topology::Topology;
pub use validate::{validate, ValidationIssue};
