//! Minimum indoor walking distance (paper §3 Cleaning; definition from
//! Yang et al., "Probabilistic threshold kNN queries over moving objects in
//! symbolic indoor space", EDBT 2010 — the paper's ref \[13\]).
//!
//! People cannot cross walls: the shortest walkable route between two indoor
//! points threads through doors and staircases. This module answers distance
//! and path queries over the door graph computed by [`crate::topology`].

use crate::entity::EntityId;
use crate::model::{DigitalSpaceModel, DsmError};
use crate::topology::Topology;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use trips_geom::{IndoorPoint, Polyline};

/// A walkable route between two indoor points.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkPath {
    /// Total walking distance in metres (includes staircase legs).
    pub distance: f64,
    /// Waypoints from source to target, floor-annotated.
    pub points: Vec<IndoorPoint>,
}

impl WalkPath {
    /// The planar projection of the path on a single floor (for rendering).
    pub fn planar_polyline(&self) -> Polyline {
        Polyline::new(self.points.iter().map(|p| p.xy).collect())
    }

    /// Point at the given fraction of total walking distance, with the floor
    /// of the path leg it falls on. Used by location interpolation.
    pub fn point_at_fraction(&self, fraction: f64) -> IndoorPoint {
        let f = fraction.clamp(0.0, 1.0);
        if self.points.len() < 2 || self.distance <= f64::EPSILON || f <= 0.0 {
            return self.points[0];
        }
        if f >= 1.0 {
            return *self.points.last().expect("path has points");
        }
        let mut remaining = f * self.distance;
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Leg length: planar when same floor, vertical cost otherwise.
            let leg = if a.floor == b.floor {
                a.xy.distance(b.xy)
            } else {
                // Vertical leg weight is embedded in `distance`; approximate
                // by the remaining proportional share.
                self.distance / (self.points.len() - 1) as f64
            };
            if remaining <= leg && leg > 0.0 {
                let t = remaining / leg;
                return IndoorPoint {
                    xy: a.xy.lerp(b.xy, t),
                    floor: if t < 0.5 { a.floor } else { b.floor },
                };
            }
            remaining -= leg;
        }
        *self.points.last().expect("path has points")
    }
}

/// Min-heap entry for Dijkstra.
#[derive(Debug, Copy, Clone, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Distance/path query interface over a frozen DSM.
pub struct PathQuery<'a> {
    dsm: &'a DigitalSpaceModel,
    topo: &'a Topology,
}

impl<'a> PathQuery<'a> {
    /// Creates a query handle. Fails if the DSM is not frozen.
    pub fn new(dsm: &'a DigitalSpaceModel) -> Result<Self, DsmError> {
        Ok(PathQuery {
            dsm,
            topo: dsm.topology()?,
        })
    }

    /// The walkable area containing `p`, falling back to the nearest
    /// walkable area on the floor. Returns the area id and the snap distance
    /// (0 when `p` is properly inside).
    fn anchor_area(&self, p: &IndoorPoint) -> Option<(EntityId, f64)> {
        if let Some(e) = self.dsm.locate(p) {
            return Some((e.id, 0.0));
        }
        self.dsm.nearest_walkable(p).map(|(e, d)| (e.id, d))
    }

    /// Minimum indoor walking distance between two points.
    ///
    /// Returns `None` when no walkable route exists (disconnected floors,
    /// or a floor without walkable areas).
    pub fn distance(&self, a: &IndoorPoint, b: &IndoorPoint) -> Option<f64> {
        self.path(a, b).map(|p| p.distance)
    }

    /// Shortest walkable path between two points.
    pub fn path(&self, a: &IndoorPoint, b: &IndoorPoint) -> Option<WalkPath> {
        let (area_a, snap_a) = self.anchor_area(a)?;
        let (area_b, snap_b) = self.anchor_area(b)?;

        // Same area, same floor: straight line is walkable.
        if area_a == area_b && a.floor == b.floor {
            return Some(WalkPath {
                distance: a.xy.distance(b.xy) + snap_a + snap_b,
                points: vec![*a, *b],
            });
        }

        let n = self.topo.nodes.len();
        if n == 0 {
            return None;
        }

        // Virtual source (n) and target (n + 1) connected to the nodes of
        // their anchor areas.
        let src_nodes = self.topo.area_nodes.get(&area_a)?;
        let dst_nodes = self.topo.area_nodes.get(&area_b)?;
        if src_nodes.is_empty() || dst_nodes.is_empty() {
            return None;
        }

        let mut dist = vec![f64::INFINITY; n + 2];
        let mut prev: Vec<Option<usize>> = vec![None; n + 2];
        let src = n;
        let dst = n + 1;
        dist[src] = 0.0;

        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            node: src,
        });

        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == dst {
                break;
            }
            // Expand edges.
            let push = |heap: &mut BinaryHeap<HeapEntry>,
                        dist: &mut Vec<f64>,
                        prev: &mut Vec<Option<usize>>,
                        v: usize,
                        nd: f64,
                        u: usize| {
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = Some(u);
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            };

            if u == src {
                for &v in src_nodes {
                    // Only connect through nodes on the source floor, except
                    // inside a staircase cell, whose ports on other floors
                    // are reachable at the staircase's vertical cost.
                    let node = self.topo.nodes[v];
                    if node.floor != a.floor && area_a != node.entity {
                        continue;
                    }
                    let vertical =
                        (node.floor - a.floor).abs() as f64 * self.dsm.floor_height * 3.0;
                    let w = snap_a + a.xy.distance(node.point) + vertical;
                    push(&mut heap, &mut dist, &mut prev, v, d + w, u);
                }
                continue;
            }

            // Regular node: graph edges plus possible hop to the target.
            for e in &self.topo.edges[u] {
                push(&mut heap, &mut dist, &mut prev, e.to, d + e.weight, u);
            }
            if dst_nodes.contains(&u)
                && (self.topo.nodes[u].floor == b.floor || area_b == self.topo.nodes[u].entity)
            {
                let node = self.topo.nodes[u];
                let vertical = (node.floor - b.floor).abs() as f64 * self.dsm.floor_height * 3.0;
                let w = snap_b + b.xy.distance(node.point) + vertical;
                push(&mut heap, &mut dist, &mut prev, dst, d + w, u);
            }
        }

        if !dist[dst].is_finite() {
            return None;
        }

        // Reconstruct waypoints.
        let mut rev = vec![*b];
        let mut cur = prev[dst];
        while let Some(u) = cur {
            if u == src {
                break;
            }
            let node = self.topo.nodes[u];
            rev.push(IndoorPoint {
                xy: node.point,
                floor: node.floor,
            });
            cur = prev[u];
        }
        rev.push(*a);
        rev.reverse();
        Some(WalkPath {
            distance: dist[dst],
            points: rev,
        })
    }

    /// Maximum feasible walking speed check helper: the minimum time (s)
    /// needed to get from `a` to `b` at `max_speed` (m/s); `None` when
    /// unreachable.
    pub fn min_travel_time(&self, a: &IndoorPoint, b: &IndoorPoint, max_speed: f64) -> Option<f64> {
        assert!(max_speed > 0.0, "max_speed must be positive");
        self.distance(a, b).map(|d| d / max_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Entity, EntityKind};
    use trips_geom::{Point, Polygon};

    fn sq(x: f64, y: f64, w: f64, h: f64) -> Polygon {
        Polygon::rectangle(Point::new(x, y), Point::new(x + w, y + h))
    }

    /// floor 0: RoomA (0..10) – door(10,5) – Hall (10..20) – door(20,5) – RoomB (20..30)
    /// stairs in hall to floor 1 with RoomC above the hall.
    fn model() -> DigitalSpaceModel {
        let mut dsm = DigitalSpaceModel::new("t");
        let a = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            a,
            EntityKind::Room,
            0,
            "A",
            sq(0.0, 0.0, 10.0, 10.0),
        ))
        .unwrap();
        let hall = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            hall,
            EntityKind::Hallway,
            0,
            "Hall",
            sq(10.0, 0.0, 10.0, 10.0),
        ))
        .unwrap();
        let b = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            b,
            EntityKind::Room,
            0,
            "B",
            sq(20.0, 0.0, 10.0, 10.0),
        ))
        .unwrap();
        let d1 = dsm.next_entity_id();
        dsm.add_entity(Entity::door(d1, 0, "dA", Point::new(10.0, 5.0), 1.0))
            .unwrap();
        let d2 = dsm.next_entity_id();
        dsm.add_entity(Entity::door(d2, 0, "dB", Point::new(20.0, 5.0), 1.0))
            .unwrap();
        let s = dsm.next_entity_id();
        dsm.add_entity(Entity::staircase(s, "st", sq(14.0, 8.0, 2.0, 2.0), &[0, 1]))
            .unwrap();
        let c = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            c,
            EntityKind::Room,
            1,
            "C",
            sq(10.0, 0.0, 10.0, 10.0),
        ))
        .unwrap();
        dsm.freeze();
        dsm
    }

    #[test]
    fn same_room_is_euclidean() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(1.0, 1.0, 0);
        let b = IndoorPoint::new(4.0, 5.0, 0);
        assert!((q.distance(&a, &b).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn adjacent_rooms_route_through_door() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(5.0, 5.0, 0); // RoomA
        let b = IndoorPoint::new(15.0, 5.0, 0); // Hall
        let path = q.path(&a, &b).unwrap();
        // 5 to the door + 5 beyond = 10, strictly more than planar 10? equal
        // here since door is collinear: exactly 10.
        assert!((path.distance - 10.0).abs() < 1e-9);
        assert_eq!(path.points.len(), 3, "a, door, b");
        assert_eq!(path.points[1].xy, Point::new(10.0, 5.0));
    }

    #[test]
    fn distance_exceeds_euclidean_when_door_detours() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(5.0, 9.0, 0); // RoomA top
        let b = IndoorPoint::new(15.0, 9.0, 0); // Hall top
        let d = q.distance(&a, &b).unwrap();
        let euclid = a.planar_distance(&b);
        assert!(
            d > euclid,
            "walking through door (10,5) must detour: {d} vs {euclid}"
        );
    }

    #[test]
    fn two_door_route() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(5.0, 5.0, 0); // RoomA
        let b = IndoorPoint::new(25.0, 5.0, 0); // RoomB
        let path = q.path(&a, &b).unwrap();
        assert!((path.distance - 20.0).abs() < 1e-9);
        assert_eq!(path.points.len(), 4, "a, dA, dB, b");
    }

    #[test]
    fn cross_floor_route_uses_staircase() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(15.0, 5.0, 0); // Hall, floor 0
        let b = IndoorPoint::new(15.0, 5.0, 1); // RoomC, floor 1
        let path = q.path(&a, &b).unwrap();
        // to stairs (~ (15,9)) + vertical (4*3=12) + back ≈ 4+12+4 = 20.
        assert!(path.distance > 12.0);
        assert!(path.points.iter().any(|p| p.floor == 1));
        assert!(path.points.iter().any(|p| p.floor == 0));
    }

    #[test]
    fn unreachable_floor_returns_none() {
        let mut dsm = model();
        let lonely = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            lonely,
            EntityKind::Room,
            5,
            "Lonely",
            sq(0.0, 0.0, 5.0, 5.0),
        ))
        .unwrap();
        dsm.freeze();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(5.0, 5.0, 0);
        let b = IndoorPoint::new(2.0, 2.0, 5);
        assert!(q.path(&a, &b).is_none());
    }

    #[test]
    fn point_outside_any_area_snaps() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let outside = IndoorPoint::new(-2.0, 5.0, 0); // 2 m left of RoomA
        let inside = IndoorPoint::new(5.0, 5.0, 0);
        let d = q.distance(&outside, &inside).unwrap();
        assert!(d >= 7.0 - 1e-9, "snap distance must be charged: {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(3.0, 8.0, 0);
        let b = IndoorPoint::new(27.0, 2.0, 0);
        let d1 = q.distance(&a, &b).unwrap();
        let d2 = q.distance(&b, &a).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_over_rooms() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(5.0, 5.0, 0);
        let m = IndoorPoint::new(15.0, 5.0, 0);
        let b = IndoorPoint::new(25.0, 5.0, 0);
        let dab = q.distance(&a, &b).unwrap();
        let dam = q.distance(&a, &m).unwrap();
        let dmb = q.distance(&m, &b).unwrap();
        assert!(dab <= dam + dmb + 1e-9);
    }

    #[test]
    fn path_fraction_interpolation() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(5.0, 5.0, 0);
        let b = IndoorPoint::new(25.0, 5.0, 0);
        let path = q.path(&a, &b).unwrap();
        let mid = path.point_at_fraction(0.5);
        assert_eq!(mid.floor, 0);
        assert!((mid.xy.x - 15.0).abs() < 1e-6, "midpoint of 20 m route");
        assert_eq!(path.point_at_fraction(0.0), a);
        assert_eq!(path.point_at_fraction(1.0), b);
    }

    #[test]
    fn min_travel_time() {
        let dsm = model();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(5.0, 5.0, 0);
        let b = IndoorPoint::new(25.0, 5.0, 0);
        let t = q.min_travel_time(&a, &b, 2.0).unwrap();
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dsm_has_no_paths() {
        let mut dsm = DigitalSpaceModel::new("empty");
        dsm.freeze();
        let q = PathQuery::new(&dsm).unwrap();
        assert!(q
            .path(
                &IndoorPoint::new(0.0, 0.0, 0),
                &IndoorPoint::new(1.0, 1.0, 0)
            )
            .is_none());
    }
}
