use crate::entity::{Entity, EntityId};
use crate::index::SpatialIndex;
use crate::semantic::{RegionId, SemanticRegion};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use trips_geom::{BoundingBox, FloorId, IndoorPoint, Point};

/// Errors raised by DSM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsmError {
    /// A topology-dependent query was issued before [`DigitalSpaceModel::freeze`].
    NotFrozen,
    /// Referenced an entity id that is not in the model.
    UnknownEntity(EntityId),
    /// Referenced a region id that is not in the model.
    UnknownRegion(RegionId),
    /// Attempted to register a duplicate id.
    DuplicateId(String),
    /// JSON (de)serialization failure.
    Serde(String),
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::NotFrozen => {
                write!(f, "DSM topology not computed; call freeze() first")
            }
            DsmError::UnknownEntity(id) => write!(f, "unknown entity {id}"),
            DsmError::UnknownRegion(id) => write!(f, "unknown region {id}"),
            DsmError::DuplicateId(id) => write!(f, "duplicate id {id}"),
            DsmError::Serde(e) => write!(f, "DSM serialization error: {e}"),
        }
    }
}

impl std::error::Error for DsmError {}

/// Per-floor metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorInfo {
    pub id: FloorId,
    /// Display name, e.g. `"Ground Floor"`, `"3F"`.
    pub name: String,
}

/// The Digital Space Model: geometric attributes and topological relations
/// for indoor entities and semantic regions, plus the entity↔region mapping
/// (paper §2, Space Modeler).
///
/// Build workflow: add entities and regions (directly, via the
/// [`crate::canvas::FloorplanCanvas`], or via [`crate::builder::MallBuilder`]),
/// then call [`freeze`](Self::freeze) to compute topology. Queries that rely
/// on topological relations return [`DsmError::NotFrozen`] before that.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DigitalSpaceModel {
    /// Human-readable model name (e.g. the building name).
    pub name: String,
    /// Floor-to-floor height in metres (vertical cost of staircases).
    pub floor_height: f64,
    floors: BTreeMap<FloorId, FloorInfo>,
    entities: BTreeMap<EntityId, Entity>,
    regions: BTreeMap<RegionId, SemanticRegion>,
    #[serde(skip)]
    topology: Option<Topology>,
    /// Uniform-grid index over entities/regions, built by [`freeze`](Self::freeze)
    /// together with the topology; linear scans answer queries before that.
    #[serde(skip)]
    index: Option<SpatialIndex>,
    next_entity_id: u32,
    next_region_id: u32,
}

impl DigitalSpaceModel {
    /// Creates an empty model.
    pub fn new(name: &str) -> Self {
        DigitalSpaceModel {
            name: name.to_string(),
            floor_height: 4.0,
            floors: BTreeMap::new(),
            entities: BTreeMap::new(),
            regions: BTreeMap::new(),
            topology: None,
            index: None,
            next_entity_id: 0,
            next_region_id: 0,
        }
    }

    /// Registers a floor (idempotent on id).
    pub fn add_floor(&mut self, id: FloorId, name: &str) {
        self.floors.insert(
            id,
            FloorInfo {
                id,
                name: name.to_string(),
            },
        );
    }

    /// All registered floors in ascending id order.
    pub fn floors(&self) -> impl Iterator<Item = &FloorInfo> {
        self.floors.values()
    }

    /// Number of registered floors.
    pub fn floor_count(&self) -> usize {
        self.floors.len()
    }

    /// Allocates the next free entity id.
    pub fn next_entity_id(&mut self) -> EntityId {
        let id = EntityId(self.next_entity_id);
        self.next_entity_id += 1;
        id
    }

    /// Allocates the next free region id.
    pub fn next_region_id(&mut self) -> RegionId {
        let id = RegionId(self.next_region_id);
        self.next_region_id += 1;
        id
    }

    /// Inserts an entity. Invalidate topology.
    pub fn add_entity(&mut self, entity: Entity) -> Result<EntityId, DsmError> {
        if self.entities.contains_key(&entity.id) {
            return Err(DsmError::DuplicateId(entity.id.to_string()));
        }
        self.next_entity_id = self.next_entity_id.max(entity.id.0 + 1);
        // Auto-register floors the entity touches.
        for f in entity.floors().collect::<Vec<_>>() {
            self.floors.entry(f).or_insert_with(|| FloorInfo {
                id: f,
                name: format!("{f}F"),
            });
        }
        let id = entity.id;
        self.entities.insert(id, entity);
        self.topology = None;
        self.index = None;
        Ok(id)
    }

    /// Inserts a semantic region. Invalidates topology.
    pub fn add_region(&mut self, region: SemanticRegion) -> Result<RegionId, DsmError> {
        if self.regions.contains_key(&region.id) {
            return Err(DsmError::DuplicateId(region.id.to_string()));
        }
        for &e in &region.entities {
            if !self.entities.contains_key(&e) {
                return Err(DsmError::UnknownEntity(e));
            }
        }
        self.next_region_id = self.next_region_id.max(region.id.0 + 1);
        let id = region.id;
        self.regions.insert(id, region);
        self.topology = None;
        self.index = None;
        Ok(id)
    }

    /// Looks up an entity.
    pub fn entity(&self, id: EntityId) -> Result<&Entity, DsmError> {
        self.entities.get(&id).ok_or(DsmError::UnknownEntity(id))
    }

    /// Looks up a region.
    pub fn region(&self, id: RegionId) -> Result<&SemanticRegion, DsmError> {
        self.regions.get(&id).ok_or(DsmError::UnknownRegion(id))
    }

    /// All entities in id order.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        self.entities.values()
    }

    /// All semantic regions in id order.
    pub fn regions(&self) -> impl Iterator<Item = &SemanticRegion> {
        self.regions.values()
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of semantic regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Entities touching a floor.
    pub fn entities_on_floor(&self, floor: FloorId) -> impl Iterator<Item = &Entity> {
        self.entities.values().filter(move |e| e.on_floor(floor))
    }

    /// Regions on a floor.
    pub fn regions_on_floor(&self, floor: FloorId) -> impl Iterator<Item = &SemanticRegion> {
        self.regions.values().filter(move |r| r.floor == floor)
    }

    /// The walkable entity (room/hallway/staircell) containing `p`, if any.
    ///
    /// Prefers the *smallest* containing area so a staircell inside a hallway
    /// ring wins over the hallway. Answered through the grid index on a
    /// frozen model; by linear scan otherwise — both return the same entity,
    /// ties included (lowest id among equal areas).
    pub fn locate(&self, p: &IndoorPoint) -> Option<&Entity> {
        let walkable_area = |e: &Entity| {
            (e.kind.is_walkable() && e.contains(p.xy)).then(|| {
                e.footprint
                    .as_area()
                    .map(|poly| poly.area())
                    .unwrap_or(f64::INFINITY)
            })
        };
        if let Some(index) = &self.index {
            return index
                .entity_candidates(p.floor, p.xy)
                .iter()
                .filter_map(|&id| {
                    let e = &self.entities[&id];
                    walkable_area(e).map(|area| (e, area))
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite areas"))
                .map(|(e, _)| e);
        }
        self.entities_on_floor(p.floor)
            .filter_map(|e| walkable_area(e).map(|area| (e, area)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite areas"))
            .map(|(e, _)| e)
    }

    /// The semantic region containing `p`, if any (smallest wins).
    pub fn region_at(&self, p: &IndoorPoint) -> Option<&SemanticRegion> {
        if let Some(index) = &self.index {
            return index
                .region_candidates(p.floor, p.xy)
                .iter()
                .map(|&id| &self.regions[&id])
                .filter(|r| r.contains(p.xy))
                .min_by(|a, b| a.area().partial_cmp(&b.area()).expect("finite areas"));
        }
        self.regions_on_floor(p.floor)
            .filter(|r| r.contains(p.xy))
            .min_by(|a, b| a.area().partial_cmp(&b.area()).expect("finite areas"))
    }

    /// The nearest walkable entity on `p`'s floor and the distance to it
    /// (zero if `p` is inside one). `None` when the floor has no walkable
    /// entities.
    pub fn nearest_walkable(&self, p: &IndoorPoint) -> Option<(&Entity, f64)> {
        if let Some(index) = &self.index {
            return index
                .nearest_entity(p.floor, p.xy, |id| {
                    let e = &self.entities[&id];
                    if !e.kind.is_walkable() {
                        return None;
                    }
                    e.footprint
                        .as_area()
                        .map(|poly| poly.distance_to_point(p.xy))
                })
                .map(|(id, d)| (&self.entities[&id], d));
        }
        self.entities_on_floor(p.floor)
            .filter(|e| e.kind.is_walkable())
            .filter_map(|e| {
                e.footprint
                    .as_area()
                    .map(|poly| (e, poly.distance_to_point(p.xy)))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
    }

    /// The nearest semantic region on `p`'s floor and distance to it.
    pub fn nearest_region(&self, p: &IndoorPoint) -> Option<(&SemanticRegion, f64)> {
        if let Some(index) = &self.index {
            return index
                .nearest_region(p.floor, p.xy, |id| {
                    Some(self.regions[&id].distance_to_point(p.xy))
                })
                .map(|(id, d)| (&self.regions[&id], d));
        }
        self.regions_on_floor(p.floor)
            .map(|r| (r, r.distance_to_point(p.xy)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
    }

    /// Bounding box of all entities on a floor.
    pub fn floor_bbox(&self, floor: FloorId) -> BoundingBox {
        let mut bb = BoundingBox::empty();
        for e in self.entities_on_floor(floor) {
            match &e.footprint {
                crate::entity::Footprint::Area(p) => bb = bb.union(&p.bbox()),
                crate::entity::Footprint::Opening { anchor, .. } => bb.expand(*anchor),
                crate::entity::Footprint::Line(l) => bb = bb.union(&l.bbox()),
            }
        }
        bb
    }

    /// Computes (or recomputes) the topological relations and the spatial
    /// grid index. Must be called after the last mutation and before
    /// topology-dependent queries.
    pub fn freeze(&mut self) {
        self.topology = Some(Topology::compute(self));
        self.index = Some(SpatialIndex::from_model(self));
    }

    /// The spatial grid index, present on a frozen model.
    pub fn spatial_index(&self) -> Option<&SpatialIndex> {
        self.index.as_ref()
    }

    /// Whether [`freeze`](Self::freeze) has been called since the last
    /// mutation.
    pub fn is_frozen(&self) -> bool {
        self.topology.is_some()
    }

    /// The computed topology.
    pub fn topology(&self) -> Result<&Topology, DsmError> {
        self.topology.as_ref().ok_or(DsmError::NotFrozen)
    }

    /// Convenience: the region containing a planar point on a floor.
    pub fn region_at_xy(&self, x: f64, y: f64, floor: FloorId) -> Option<&SemanticRegion> {
        self.region_at(&IndoorPoint {
            xy: Point::new(x, y),
            floor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityKind;
    use crate::semantic::SemanticTag;
    use trips_geom::Polygon;

    fn sq(x: f64, y: f64, w: f64) -> Polygon {
        Polygon::rectangle(Point::new(x, y), Point::new(x + w, y + w))
    }

    fn small_model() -> DigitalSpaceModel {
        let mut dsm = DigitalSpaceModel::new("test-building");
        let room = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            room,
            EntityKind::Room,
            0,
            "RoomA",
            sq(0.0, 0.0, 10.0),
        ))
        .unwrap();
        let hall = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            hall,
            EntityKind::Hallway,
            0,
            "Hall",
            sq(10.0, 0.0, 10.0),
        ))
        .unwrap();
        let rid = dsm.next_region_id();
        dsm.add_region(SemanticRegion::new(
            rid,
            "Nike Store",
            SemanticTag::new("sportswear", "shop"),
            0,
            sq(0.0, 0.0, 10.0),
            room,
        ))
        .unwrap();
        dsm
    }

    #[test]
    fn entity_and_region_lookup() {
        let dsm = small_model();
        assert_eq!(dsm.entity_count(), 2);
        assert_eq!(dsm.region_count(), 1);
        assert!(dsm.entity(EntityId(0)).is_ok());
        assert!(matches!(
            dsm.entity(EntityId(99)),
            Err(DsmError::UnknownEntity(_))
        ));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut dsm = small_model();
        let dup = Entity::area(EntityId(0), EntityKind::Room, 0, "dup", sq(0.0, 0.0, 1.0));
        assert!(matches!(dsm.add_entity(dup), Err(DsmError::DuplicateId(_))));
    }

    #[test]
    fn region_with_unknown_entity_rejected() {
        let mut dsm = small_model();
        let r = SemanticRegion::new(
            RegionId(5),
            "ghost",
            SemanticTag::new("x", "shop"),
            0,
            sq(0.0, 0.0, 1.0),
            EntityId(42),
        );
        assert!(matches!(dsm.add_region(r), Err(DsmError::UnknownEntity(_))));
    }

    #[test]
    fn locate_picks_smallest_containing() {
        let mut dsm = small_model();
        // A staircell inside RoomA.
        let sc = dsm.next_entity_id();
        dsm.add_entity(Entity::staircase(sc, "stairs", sq(1.0, 1.0, 2.0), &[0, 1]))
            .unwrap();
        let inside_stairs = IndoorPoint::new(2.0, 2.0, 0);
        assert_eq!(dsm.locate(&inside_stairs).unwrap().name, "stairs");
        let in_room = IndoorPoint::new(8.0, 8.0, 0);
        assert_eq!(dsm.locate(&in_room).unwrap().name, "RoomA");
        let outside = IndoorPoint::new(50.0, 50.0, 0);
        assert!(dsm.locate(&outside).is_none());
        let wrong_floor = IndoorPoint::new(8.0, 8.0, 5);
        assert!(dsm.locate(&wrong_floor).is_none());
    }

    #[test]
    fn region_queries() {
        let dsm = small_model();
        assert_eq!(
            dsm.region_at(&IndoorPoint::new(5.0, 5.0, 0)).unwrap().name,
            "Nike Store"
        );
        assert!(dsm.region_at(&IndoorPoint::new(15.0, 5.0, 0)).is_none());
        let (r, d) = dsm.nearest_region(&IndoorPoint::new(12.0, 5.0, 0)).unwrap();
        assert_eq!(r.name, "Nike Store");
        assert!((d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn floors_auto_registered() {
        let dsm = small_model();
        assert_eq!(dsm.floor_count(), 1);
        let mut dsm2 = dsm.clone();
        let sc = dsm2.next_entity_id();
        dsm2.add_entity(Entity::staircase(sc, "s", sq(0.0, 0.0, 1.0), &[0, 1, 2]))
            .unwrap();
        assert_eq!(dsm2.floor_count(), 3);
    }

    #[test]
    fn freeze_gates_topology() {
        let mut dsm = small_model();
        assert!(matches!(dsm.topology(), Err(DsmError::NotFrozen)));
        dsm.freeze();
        assert!(dsm.topology().is_ok());
        // Mutation invalidates.
        let e = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            e,
            EntityKind::Room,
            0,
            "B",
            sq(30.0, 0.0, 5.0),
        ))
        .unwrap();
        assert!(matches!(dsm.topology(), Err(DsmError::NotFrozen)));
    }

    #[test]
    fn floor_bbox_covers_entities() {
        let dsm = small_model();
        let bb = dsm.floor_bbox(0);
        assert!(bb.contains(Point::new(0.0, 0.0)));
        assert!(bb.contains(Point::new(20.0, 10.0)));
    }

    #[test]
    fn nearest_walkable() {
        let dsm = small_model();
        let (e, d) = dsm
            .nearest_walkable(&IndoorPoint::new(-3.0, 5.0, 0))
            .unwrap();
        assert_eq!(e.name, "RoomA");
        assert!((d - 3.0).abs() < 1e-9);
        assert!(dsm
            .nearest_walkable(&IndoorPoint::new(0.0, 0.0, 9))
            .is_none());
    }
}
