//! Parametric generator for multi-floor shopping-mall DSMs.
//!
//! The paper's demonstration uses "a 7-floor shopping mall in Hangzhou"; the
//! real floorplans are proprietary, so [`MallBuilder`] synthesises a mall of
//! the same structure — per floor, two rows of shops opening onto a central
//! hallway, with staircases connecting all floors at both ends (see
//! DESIGN.md, substitutions table).
//!
//! Layout of one floor (not to scale):
//!
//! ```text
//! +------+------+------+------+   north shop row
//! | shop | shop | shop | shop |
//! +--d---+--d---+--d---+--d---+   doors on the hallway edge
//! | [st]      hallway     [st]|   staircases at both ends
//! +--d---+--d---+--d---+--d---+
//! | shop | shop | shop | shop |
//! +------+------+------+------+   south shop row
//! ```

use crate::entity::{Entity, EntityKind};
use crate::model::DigitalSpaceModel;
use crate::semantic::{SemanticRegion, SemanticTag};
use trips_geom::{FloorId, Point, Polygon};

/// Brand pool used to name shops; cycled with a floor suffix so every region
/// name is unique. The first few echo the paper's walkthrough (Nike, Adidas,
/// Cashier, Center Hall).
const BRANDS: &[&str] = &[
    "Nike",
    "Adidas",
    "Uniqlo",
    "Zara",
    "Starbucks",
    "Sephora",
    "Muji",
    "Lego",
    "Apple",
    "Swatch",
    "Levis",
    "Puma",
    "Gap",
    "Fila",
    "Casio",
    "Bose",
];

/// Shop categories cycled across the brand pool.
const CATEGORIES: &[&str] = &[
    "sportswear",
    "sportswear",
    "apparel",
    "apparel",
    "food",
    "beauty",
    "home",
    "toys",
    "electronics",
    "accessories",
    "apparel",
    "sportswear",
    "apparel",
    "sportswear",
    "accessories",
    "electronics",
];

/// Builder for synthetic mall DSMs.
#[derive(Debug, Clone)]
pub struct MallBuilder {
    floors: u16,
    shops_per_row: usize,
    shop_w: f64,
    shop_d: f64,
    corridor_w: f64,
    with_cashiers: bool,
}

impl Default for MallBuilder {
    fn default() -> Self {
        MallBuilder {
            floors: 1,
            shops_per_row: 8,
            shop_w: 10.0,
            shop_d: 8.0,
            corridor_w: 6.0,
            with_cashiers: true,
        }
    }
}

impl MallBuilder {
    /// Starts a builder with default dimensions (one floor, 16 shops).
    pub fn new() -> Self {
        Self::default()
    }

    /// The configuration matching the paper's demo environment: a 7-floor
    /// mall.
    pub fn paper_mall() -> Self {
        MallBuilder::new().floors(7)
    }

    /// Number of floors (1–100).
    pub fn floors(mut self, n: u16) -> Self {
        assert!((1..=100).contains(&n), "floors must be in 1..=100");
        self.floors = n;
        self
    }

    /// Shops per row per floor (≥ 1); total shops per floor is twice this.
    pub fn shops_per_row(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one shop per row");
        self.shops_per_row = n;
        self
    }

    /// Shop width along the hallway, metres.
    pub fn shop_width(mut self, w: f64) -> Self {
        assert!(w > 2.0, "shop width must exceed 2 m");
        self.shop_w = w;
        self
    }

    /// Shop depth away from the hallway, metres.
    pub fn shop_depth(mut self, d: f64) -> Self {
        assert!(d > 2.0, "shop depth must exceed 2 m");
        self.shop_d = d;
        self
    }

    /// Hallway width, metres.
    pub fn corridor_width(mut self, w: f64) -> Self {
        assert!(w > 3.0, "corridor must exceed 3 m for staircases");
        self.corridor_w = w;
        self
    }

    /// Whether every 4th shop gets an interior "Cashier" sub-region.
    pub fn with_cashiers(mut self, yes: bool) -> Self {
        self.with_cashiers = yes;
        self
    }

    /// Total mall width, metres.
    pub fn mall_width(&self) -> f64 {
        self.shops_per_row as f64 * self.shop_w
    }

    /// Total floor depth, metres.
    pub fn mall_depth(&self) -> f64 {
        2.0 * self.shop_d + self.corridor_w
    }

    /// Builds and freezes the DSM.
    pub fn build(&self) -> DigitalSpaceModel {
        let mut dsm = DigitalSpaceModel::new("synthetic-mall");
        let w = self.mall_width();

        for f in 0..self.floors {
            let floor = f as FloorId;
            dsm.add_floor(floor, &format!("{floor}F"));
            self.build_floor(&mut dsm, floor);
        }

        // Staircases: spanning all floors, at the west and east ends of the
        // hallway. One entity each, footprint inside the hallway.
        let all_floors: Vec<FloorId> = (0..self.floors as FloorId).collect();
        let y0 = self.shop_d + 1.0;
        let stair_h = (self.corridor_w - 2.0).max(1.0);
        for (name, x0) in [("West Stairs", 1.0), ("East Stairs", w - 3.0)] {
            let id = dsm.next_entity_id();
            dsm.add_entity(Entity::staircase(
                id,
                name,
                Polygon::rectangle(Point::new(x0, y0), Point::new(x0 + 2.0, y0 + stair_h)),
                &all_floors,
            ))
            .expect("fresh id");
        }

        dsm.freeze();
        dsm
    }

    fn build_floor(&self, dsm: &mut DigitalSpaceModel, floor: FloorId) {
        let w = self.mall_width();
        let d = self.shop_d;
        let cw = self.corridor_w;

        // Hallway.
        let hall_id = dsm.next_entity_id();
        let hall_poly = Polygon::rectangle(Point::new(0.0, d), Point::new(w, d + cw));
        dsm.add_entity(Entity::area(
            hall_id,
            EntityKind::Hallway,
            floor,
            &format!("Center Hall ({floor}F)"),
            hall_poly.clone(),
        ))
        .expect("fresh id");
        let hall_region = dsm.next_region_id();
        dsm.add_region(SemanticRegion::new(
            hall_region,
            &format!("Center Hall ({floor}F)"),
            SemanticTag::new("atrium", "circulation"),
            floor,
            hall_poly,
            hall_id,
        ))
        .expect("fresh id");

        // Shop rows: south (row 0, below hallway) and north (row 1, above).
        for row in 0..2usize {
            for i in 0..self.shops_per_row {
                let idx = row * self.shops_per_row + i;
                let brand = BRANDS[idx % BRANDS.len()];
                let category = CATEGORIES[idx % CATEGORIES.len()];
                let name = format!("{brand} ({floor}F-{idx})");

                let x0 = i as f64 * self.shop_w;
                let (y0, y1, door_y) = if row == 0 {
                    (0.0, d, d) // south row: door on the top edge
                } else {
                    (d + cw, d + cw + d, d + cw) // north row: door on the bottom edge
                };

                let shop_id = dsm.next_entity_id();
                let shop_poly =
                    Polygon::rectangle(Point::new(x0, y0), Point::new(x0 + self.shop_w, y1));
                dsm.add_entity(Entity::area(
                    shop_id,
                    EntityKind::Room,
                    floor,
                    &name,
                    shop_poly.clone(),
                ))
                .expect("fresh id");

                let door_id = dsm.next_entity_id();
                dsm.add_entity(Entity::door(
                    door_id,
                    floor,
                    &format!("door:{name}"),
                    Point::new(x0 + self.shop_w / 2.0, door_y),
                    1.5,
                ))
                .expect("fresh id");

                let region_id = dsm.next_region_id();
                dsm.add_region(SemanticRegion::new(
                    region_id,
                    &name,
                    SemanticTag::new(category, "shop"),
                    floor,
                    shop_poly,
                    shop_id,
                ))
                .expect("fresh id");

                // Interior cashier sub-region in every 4th shop.
                if self.with_cashiers && idx % 4 == 3 {
                    let cx0 = x0 + 0.5;
                    let cy0 = if row == 0 { y0 + 0.5 } else { y1 - 2.5 };
                    let cashier_poly =
                        Polygon::rectangle(Point::new(cx0, cy0), Point::new(cx0 + 3.0, cy0 + 2.0));
                    let cid = dsm.next_region_id();
                    dsm.add_region(SemanticRegion::new(
                        cid,
                        &format!("Cashier of {name}"),
                        SemanticTag::new("cashier", "service"),
                        floor,
                        cashier_poly,
                        shop_id,
                    ))
                    .expect("fresh id");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::PathQuery;
    use trips_geom::IndoorPoint;

    #[test]
    fn single_floor_counts() {
        let dsm = MallBuilder::new().shops_per_row(4).build();
        // 8 shops + 8 doors + 1 hallway + 2 staircases = 19 entities.
        assert_eq!(dsm.entity_count(), 19);
        // 8 shop regions + 1 hall + cashiers (idx 3 and 7 → 2).
        assert_eq!(dsm.region_count(), 11);
        assert_eq!(dsm.floor_count(), 1);
        assert!(dsm.is_frozen());
    }

    #[test]
    fn paper_mall_is_seven_floors() {
        let dsm = MallBuilder::paper_mall().shops_per_row(2).build();
        assert_eq!(dsm.floor_count(), 7);
        // Per floor: 4 shops + 4 doors + 1 hall = 9; plus 2 staircases.
        assert_eq!(dsm.entity_count(), 7 * 9 + 2);
    }

    #[test]
    fn every_shop_region_reachable_from_hall() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let topo = dsm.topology().unwrap();
        let hall = dsm
            .regions()
            .find(|r| r.name.starts_with("Center Hall"))
            .unwrap();
        let neigh = topo.neighbours(hall.id);
        // Every shop region is adjacent to the hall; cashier sub-regions are
        // adjacent too (they back onto the shop entities behind the doors).
        for shop in dsm.regions().filter(|r| r.tag.category == "shop") {
            assert!(neigh.contains(&shop.id), "hall must touch {}", shop.name);
        }
        let non_hall_regions = dsm.region_count() - 1;
        assert_eq!(neigh.len(), non_hall_regions, "hall touches every region");
    }

    #[test]
    fn cross_floor_walk_exists() {
        let dsm = MallBuilder::new().floors(3).shops_per_row(2).build();
        let q = PathQuery::new(&dsm).unwrap();
        let a = IndoorPoint::new(5.0, 4.0, 0); // shop on floor 0
        let b = IndoorPoint::new(5.0, 4.0, 2); // same spot, floor 2
        let path = q.path(&a, &b).expect("floors connected by staircases");
        assert!(path.distance >= 2.0 * dsm.floor_height * 3.0);
    }

    #[test]
    fn locate_respects_layout() {
        let b = MallBuilder::new().shops_per_row(4);
        let dsm = b.build();
        // Center of the hallway.
        let hall_pt = IndoorPoint::new(b.mall_width() / 2.0, b.shop_d + b.corridor_w / 2.0, 0);
        assert!(dsm
            .locate(&hall_pt)
            .unwrap()
            .name
            .starts_with("Center Hall"));
        // Center of the first south shop.
        let shop_pt = IndoorPoint::new(b.shop_w / 2.0, b.shop_d / 2.0, 0);
        assert_eq!(dsm.locate(&shop_pt).unwrap().kind, EntityKind::Room);
    }

    #[test]
    fn cashier_region_nested_in_shop() {
        let dsm = MallBuilder::new().shops_per_row(4).build();
        let cashier = dsm
            .regions()
            .find(|r| r.tag.name == "cashier")
            .expect("cashier regions exist");
        // The cashier anchor must also be inside its parent shop region, and
        // region_at must prefer the smaller cashier region.
        let anchor = cashier.anchor();
        let found = dsm
            .region_at(&IndoorPoint {
                xy: anchor,
                floor: cashier.floor,
            })
            .unwrap();
        assert_eq!(found.id, cashier.id, "smallest region wins");
    }

    #[test]
    fn region_names_unique() {
        let dsm = MallBuilder::paper_mall().shops_per_row(8).build();
        let mut names: Vec<&str> = dsm.regions().map(|r| r.name.as_str()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate region names");
    }

    #[test]
    #[should_panic(expected = "floors must be in")]
    fn rejects_zero_floors() {
        MallBuilder::new().floors(0);
    }

    #[test]
    fn dimension_accessors() {
        let b = MallBuilder::new().shops_per_row(5).shop_width(12.0);
        assert_eq!(b.mall_width(), 60.0);
        assert_eq!(b.mall_depth(), 2.0 * 8.0 + 6.0);
    }
}
