//! Indoor entities: the physical building blocks extracted from a floorplan.

use serde::{Deserialize, Serialize};
use std::fmt;
use trips_geom::{FloorId, Point, Polygon, Polyline};

/// Unique identifier of an indoor entity within a DSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The distinct kinds of indoor entities the paper's Space Modeler produces.
///
/// The topology computation treats each kind differently: rooms and hallways
/// are walkable areas, doors connect walkable areas, walls obstruct movement,
/// staircases connect floors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// An enclosed walkable area (a shop, an office, a storage room).
    Room,
    /// An open walkable circulation area (corridor, atrium, center hall).
    Hallway,
    /// A connection point between two walkable areas on the same floor.
    Door,
    /// An impassable boundary (only geometry; rooms own their own rings).
    Wall,
    /// A vertical connector between floors (stairs, escalator, elevator).
    Staircase,
    /// A non-walkable obstacle inside a walkable area (pillar, kiosk block).
    Obstacle,
}

impl EntityKind {
    /// Whether positioning records may legitimately fall inside this entity.
    pub fn is_walkable(self) -> bool {
        matches!(
            self,
            EntityKind::Room | EntityKind::Hallway | EntityKind::Staircase
        )
    }

    /// Stable lowercase name used in JSON and in semantic-tag defaults.
    pub fn name(self) -> &'static str {
        match self {
            EntityKind::Room => "room",
            EntityKind::Hallway => "hallway",
            EntityKind::Door => "door",
            EntityKind::Wall => "wall",
            EntityKind::Staircase => "staircase",
            EntityKind::Obstacle => "obstacle",
        }
    }
}

/// Geometric footprint of an entity.
///
/// Every area entity stores a polygon; doors store an anchor point plus a
/// width (they are modelled as wall openings); walls store their centreline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Footprint {
    /// Area footprint (rooms, hallways, staircells, obstacles).
    Area(Polygon),
    /// Door: anchor point on the shared wall plus the opening width (m).
    Opening { anchor: Point, width: f64 },
    /// Wall centreline.
    Line(Polyline),
}

impl Footprint {
    /// A representative point of the footprint: interior point for areas,
    /// anchor for openings, midpoint for lines.
    pub fn representative_point(&self) -> Point {
        match self {
            Footprint::Area(p) => p.interior_point(),
            Footprint::Opening { anchor, .. } => *anchor,
            Footprint::Line(l) => l.point_at_fraction(0.5),
        }
    }

    /// The area polygon, if this is an area footprint.
    pub fn as_area(&self) -> Option<&Polygon> {
        match self {
            Footprint::Area(p) => Some(p),
            _ => None,
        }
    }
}

/// An indoor entity: a typed, named geometric object on one floor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    pub id: EntityId,
    pub kind: EntityKind,
    pub floor: FloorId,
    /// Human-readable name from the floorplan trace (e.g. `"Nike Store"`).
    pub name: String,
    pub footprint: Footprint,
    /// Extra floors this entity spans (staircases only; empty otherwise).
    pub extra_floors: Vec<FloorId>,
}

impl Entity {
    /// Creates an area entity (room / hallway / obstacle / staircase cell).
    pub fn area(id: EntityId, kind: EntityKind, floor: FloorId, name: &str, poly: Polygon) -> Self {
        Entity {
            id,
            kind,
            floor,
            name: name.to_string(),
            footprint: Footprint::Area(poly),
            extra_floors: Vec::new(),
        }
    }

    /// Creates a door entity at `anchor` with the given opening width.
    pub fn door(id: EntityId, floor: FloorId, name: &str, anchor: Point, width: f64) -> Self {
        Entity {
            id,
            kind: EntityKind::Door,
            floor,
            name: name.to_string(),
            footprint: Footprint::Opening { anchor, width },
            extra_floors: Vec::new(),
        }
    }

    /// Creates a wall entity along `line`.
    pub fn wall(id: EntityId, floor: FloorId, name: &str, line: Polyline) -> Self {
        Entity {
            id,
            kind: EntityKind::Wall,
            floor,
            name: name.to_string(),
            footprint: Footprint::Line(line),
            extra_floors: Vec::new(),
        }
    }

    /// Creates a staircase spanning `floors` (at identical planar footprint).
    ///
    /// # Panics
    /// Panics if `floors` is empty.
    pub fn staircase(id: EntityId, name: &str, poly: Polygon, floors: &[FloorId]) -> Self {
        assert!(!floors.is_empty(), "staircase must span at least one floor");
        Entity {
            id,
            kind: EntityKind::Staircase,
            floor: floors[0],
            name: name.to_string(),
            footprint: Footprint::Area(poly),
            extra_floors: floors[1..].to_vec(),
        }
    }

    /// All floors this entity touches.
    pub fn floors(&self) -> impl Iterator<Item = FloorId> + '_ {
        std::iter::once(self.floor).chain(self.extra_floors.iter().copied())
    }

    /// Returns `true` if the entity touches `floor`.
    pub fn on_floor(&self, floor: FloorId) -> bool {
        self.floor == floor || self.extra_floors.contains(&floor)
    }

    /// Closed containment test against the entity's area footprint.
    /// Non-area entities contain nothing.
    pub fn contains(&self, p: Point) -> bool {
        self.footprint
            .as_area()
            .is_some_and(|poly| poly.contains(p))
    }

    /// Representative anchor of the entity (used as a graph node and as the
    /// label position in the Viewer).
    pub fn anchor(&self) -> Point {
        self.footprint.representative_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_geom::Point;

    fn square(x: f64, y: f64, w: f64) -> Polygon {
        Polygon::rectangle(Point::new(x, y), Point::new(x + w, y + w))
    }

    #[test]
    fn walkability() {
        assert!(EntityKind::Room.is_walkable());
        assert!(EntityKind::Hallway.is_walkable());
        assert!(EntityKind::Staircase.is_walkable());
        assert!(!EntityKind::Door.is_walkable());
        assert!(!EntityKind::Wall.is_walkable());
        assert!(!EntityKind::Obstacle.is_walkable());
    }

    #[test]
    fn room_contains_points() {
        let r = Entity::area(
            EntityId(1),
            EntityKind::Room,
            0,
            "Nike",
            square(0.0, 0.0, 10.0),
        );
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(15.0, 5.0)));
        assert!(r.on_floor(0));
        assert!(!r.on_floor(1));
    }

    #[test]
    fn door_anchor() {
        let d = Entity::door(EntityId(2), 0, "Nike-entrance", Point::new(5.0, 0.0), 1.2);
        assert_eq!(d.anchor(), Point::new(5.0, 0.0));
        assert!(!d.contains(Point::new(5.0, 0.0)), "doors are not areas");
    }

    #[test]
    fn staircase_spans_floors() {
        let s = Entity::staircase(EntityId(3), "esc-1", square(0.0, 0.0, 4.0), &[0, 1, 2]);
        assert!(s.on_floor(0) && s.on_floor(1) && s.on_floor(2));
        assert!(!s.on_floor(3));
        assert_eq!(s.floors().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one floor")]
    fn staircase_requires_floor() {
        Entity::staircase(EntityId(4), "bad", square(0.0, 0.0, 1.0), &[]);
    }

    #[test]
    fn wall_representative_point_is_midpoint() {
        let w = Entity::wall(
            EntityId(5),
            0,
            "w",
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]),
        );
        assert_eq!(w.anchor(), Point::new(5.0, 0.0));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EntityKind::Room.name(), "room");
        assert_eq!(EntityKind::Staircase.name(), "staircase");
    }
}
