//! Golden error-span tests: the ten most likely user typos, each pinned to
//! an exact message and byte span (and, for a sample, the full rendered
//! caret diagnostic). These are the errors catalogued in `docs/TQL.md` —
//! changing a message here means updating the catalogue.

use trips_query_lang::{parse, Span};

fn err(src: &str) -> (String, Span) {
    let e = parse(src).expect_err(src);
    (e.message, e.span)
}

#[test]
fn unclosed_string() {
    let src = r#"WHEN device ENTERS region "lab-"#;
    let (msg, span) = err(src);
    assert_eq!(msg, "unclosed string literal");
    assert_eq!(span, Span::new(26, src.len()));
}

#[test]
fn bad_duration_unit() {
    let (msg, span) = err("FIND dwell_histogram BUCKET 5q");
    assert_eq!(msg, "unknown duration unit `q` (expected ms, s, m, h or d)");
    assert_eq!(span, Span::new(29, 30));
}

#[test]
fn unknown_keyword() {
    let (msg, span) = err("FILTER devices");
    assert_eq!(
        msg,
        "unknown keyword `FILTER` (expected `FIND`, `RULE` or `WHEN`)"
    );
    assert_eq!(span, Span::new(0, 6));
}

#[test]
fn unknown_query_source() {
    let (msg, span) = err("FIND dwellz");
    assert_eq!(
        msg,
        "unknown query source `dwellz` (expected popular_regions, flows, \
         dwell_histogram, devices, semantics or stats)"
    );
    assert_eq!(span, Span::new(5, 11));
}

#[test]
fn missing_alert() {
    let src = "WHEN device ENTERS region 3";
    let (msg, span) = err(src);
    assert_eq!(msg, "a rule needs `ALERT` after its condition");
    assert_eq!(span, Span::point(src.len()), "points at end of input");
}

#[test]
fn hold_on_event_condition() {
    let src = "WHEN device ENTERS region 3 FOR 5m ALERT";
    let (msg, span) = err(src);
    assert_eq!(
        msg,
        "FOR requires a state condition (occupancy/flow); `ENTERS`/`DWELLS` fire per event"
    );
    assert_eq!(span, Span::new(28, 31), "points at the FOR keyword");
}

#[test]
fn half_written_comparison() {
    let (msg, span) = err("WHEN occupancy(region 1) ! 5 ALERT");
    assert_eq!(msg, "expected `!=`");
    assert_eq!(span, Span::new(25, 26));
}

#[test]
fn unknown_where_clause() {
    let (msg, span) = err("FIND semantics WHERE floor 2");
    assert_eq!(
        msg,
        "unknown WHERE clause `floor` (expected device, region, event or BETWEEN)"
    );
    assert_eq!(span, Span::new(21, 26));
}

#[test]
fn duplicate_where_clause() {
    let (msg, span) = err(r#"FIND semantics WHERE device "a" AND device "b""#);
    assert_eq!(msg, "duplicate `device` clause");
    assert_eq!(span, Span::new(36, 42), "points at the second `device`");
}

#[test]
fn time_component_out_of_range() {
    let (msg, span) = err("FIND semantics WHERE BETWEEN 25:00:00 AND 26:00:00");
    assert_eq!(
        msg,
        "time-of-day component out of range (HH:MM:SS, 24-hour clock)"
    );
    assert_eq!(span, Span::new(29, 37), "covers the whole literal");
}

#[test]
fn trailing_input() {
    let (msg, _) = err("FIND stats stats");
    assert_eq!(msg, "unexpected trailing input");
}

#[test]
fn missing_region_ref() {
    let (msg, span) = err("WHEN device ENTERS room 3 ALERT");
    assert_eq!(msg, "expected `region <id|\"glob\">` or `floor <n>`");
    assert_eq!(span, Span::new(19, 23));
}

#[test]
fn rendered_diagnostic_is_caret_aligned() {
    let src = "FIND dwellz";
    let rendered = parse(src).unwrap_err().render(src);
    assert_eq!(
        rendered,
        "error: unknown query source `dwellz` (expected popular_regions, flows, \
         dwell_histogram, devices, semantics or stats)\n  |\n  | FIND dwellz\n  |      ^^^^^^\n"
    );
}
