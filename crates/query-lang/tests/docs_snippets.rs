//! Executable documentation: every fenced ```tql snippet in the language
//! reference (`docs/TQL.md`) must parse, and must survive a canonical
//! round-trip — the doc is a test fixture, not prose that can rot.

use trips_query_lang::parse;

fn tql_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/TQL.md");
    std::fs::read_to_string(path).expect("docs/TQL.md exists at the repository root")
}

/// Extracts the contents of every ```tql fenced block.
fn tql_blocks(doc: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        match &mut current {
            None if line.trim_end() == "```tql" => current = Some(String::new()),
            None => {}
            Some(block) => {
                if line.trim_end() == "```" {
                    blocks.push(current.take().expect("in block"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(
        current.is_none(),
        "unterminated ```tql block in docs/TQL.md"
    );
    blocks
}

#[test]
fn every_tql_snippet_in_the_reference_parses() {
    let doc = tql_doc();
    let blocks = tql_blocks(&doc);
    assert!(
        blocks.len() >= 10,
        "the reference should carry a healthy snippet count, found {}",
        blocks.len()
    );
    for block in &blocks {
        // One statement per snippet (the language is one-statement-per-
        // string); multi-line snippets are a single statement wrapped.
        let src = block.trim();
        let stmt = parse(src).unwrap_or_else(|e| {
            panic!(
                "docs/TQL.md snippet failed to parse:\n{src}\n{}",
                e.render(src)
            )
        });
        // And the canonical form round-trips, as the reference claims.
        let canonical = stmt.to_string();
        assert_eq!(
            parse(&canonical).expect("canonical form re-parses"),
            stmt,
            "canonical round-trip drifted for snippet: {src}"
        );
    }
}

#[test]
fn the_error_catalogue_rows_really_fail() {
    // The "You wrote" column of the error catalogue: every row must
    // actually be rejected (messages themselves are pinned verbatim by
    // tests/golden_errors.rs).
    let rejected = [
        r#"WHEN device ENTERS region "lab-"#,
        "FIND dwell_histogram BUCKET 5q",
        "FILTER devices",
        "FIND dwellz",
        "WHEN device ENTERS region 3",
        "WHEN device ENTERS region 3 FOR 5m ALERT",
        "WHEN occupancy(region 1) ! 5 ALERT",
        "FIND semantics WHERE floor 2",
        r#"FIND semantics WHERE device "a" AND device "b""#,
        "FIND semantics WHERE BETWEEN 25:00:00 AND 26:00:00",
        "FIND stats stats",
        "WHEN device ENTERS room 3 ALERT",
    ];
    for src in rejected {
        assert!(
            parse(src).is_err(),
            "catalogue row unexpectedly parsed: {src}"
        );
    }
}
