//! Property: pretty-printing a parsed statement and re-parsing round-trips
//! to an equal AST — the invariant that lets server traces echo canonical
//! rule text without drift.

use proptest::prelude::*;
use proptest::Strategy;
use trips_query_lang::ast::{FindStmt, Pred, RuleStmt, Source, Statement};
use trips_query_lang::parse;
use trips_store::{CmpOp, Condition, RegionSel};

/// Boxed strategies let `prop_oneof!` mix arms of different concrete types.
type BoxStrat<T> = Box<dyn Strategy<Value = T>>;

fn opt<T: 'static>(s: impl Strategy<Value = T> + 'static) -> BoxStrat<Option<T>> {
    Box::new((0u8..2, s).prop_map(|(some, v)| if some == 1 { Some(v) } else { None }))
}

/// Glob-safe string content: no quotes (TQL strings have no escapes).
const GLOB_CHARS: &[u8] = b"abcxyz019.*?_-";

fn arb_glob() -> BoxStrat<String> {
    Box::new(
        proptest::collection::vec(0usize..GLOB_CHARS.len(), 1..10)
            .prop_map(|ix| ix.into_iter().map(|i| GLOB_CHARS[i] as char).collect()),
    )
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

/// Durations the lexer can spell: n × one unit, n positive.
fn arb_duration_ms() -> impl Strategy<Value = i64> {
    (
        1i64..500,
        prop_oneof![
            Just(1i64),
            Just(1_000i64),
            Just(60_000i64),
            Just(3_600_000i64),
            Just(86_400_000i64),
        ],
    )
        .prop_map(|(n, per)| n * per)
}

/// Timestamps: whole seconds on a day-indexed clock (the literal form).
fn arb_time_ms() -> impl Strategy<Value = i64> {
    (0i64..5, 0i64..24, 0i64..60, 0i64..60)
        .prop_map(|(d, h, m, s)| ((d * 24 + h) * 3600 + m * 60 + s) * 1000)
}

fn arb_region_sel() -> BoxStrat<RegionSel> {
    Box::new(prop_oneof![
        Box::new((0u32..10_000).prop_map(RegionSel::Id)) as BoxStrat<RegionSel>,
        Box::new(arb_glob().prop_map(RegionSel::Name)),
        Box::new((0i16..30).prop_map(RegionSel::Floor)),
    ])
}

fn arb_source() -> BoxStrat<Source> {
    Box::new(prop_oneof![
        Box::new(Just(Source::PopularRegions)) as BoxStrat<Source>,
        Box::new(opt(1usize..1000).prop_map(|limit| Source::Flows { limit })),
        Box::new(arb_duration_ms().prop_map(|bucket_ms| Source::DwellHistogram { bucket_ms })),
        Box::new(Just(Source::Devices)),
        Box::new(Just(Source::Semantics)),
        Box::new(Just(Source::Stats)),
    ])
}

/// At most one predicate of each kind, in any order (duplicates are a
/// parse error by design).
fn arb_preds() -> impl Strategy<Value = Vec<Pred>> {
    (
        opt(arb_glob().prop_map(Pred::Device)),
        opt((0u32..10_000).prop_map(Pred::Region)),
        opt(arb_glob().prop_map(Pred::Event)),
        opt(
            (arb_time_ms(), arb_time_ms()).prop_map(|(a, b)| Pred::Between {
                from_ms: a.min(b),
                to_ms: a.max(b),
            }),
        ),
        0usize..256,
    )
        .prop_map(|(a, b, c, d, shuffle)| {
            let mut preds: Vec<Pred> = [a, b, c, d].into_iter().flatten().collect();
            if !preds.is_empty() {
                let by = shuffle % preds.len();
                preds.rotate_left(by);
            }
            preds
        })
}

fn arb_condition() -> BoxStrat<Condition> {
    Box::new(prop_oneof![
        Box::new(
            (opt(arb_glob()), arb_region_sel())
                .prop_map(|(device, region)| Condition::Enters { device, region })
        ) as BoxStrat<Condition>,
        Box::new(
            (
                opt(arb_glob()),
                arb_region_sel(),
                arb_cmp(),
                arb_duration_ms()
            )
                .prop_map(|(device, region, cmp, threshold_ms)| Condition::Dwells {
                    device,
                    region,
                    cmp,
                    threshold_ms,
                })
        ),
        Box::new(
            (arb_region_sel(), arb_cmp(), 0i64..100_000)
                .prop_map(|(region, cmp, count)| Condition::Occupancy { region, cmp, count })
        ),
        Box::new(
            (arb_region_sel(), arb_region_sel(), arb_cmp(), 0i64..100_000).prop_map(
                |(from, to, cmp, count)| Condition::Flow {
                    from,
                    to,
                    cmp,
                    count,
                }
            )
        ),
    ])
}

fn arb_statement() -> BoxStrat<Statement> {
    Box::new(prop_oneof![
        Box::new(
            (arb_source(), arb_preds())
                .prop_map(|(source, preds)| Statement::Find(FindStmt { source, preds }))
        ) as BoxStrat<Statement>,
        Box::new(
            (
                opt(arb_glob()),
                arb_condition(),
                opt(arb_duration_ms()),
                opt(arb_glob()),
                opt(0i32..1000),
            )
                .prop_map(|(name, condition, hold, message, priority)| {
                    // FOR only holds over state conditions; the parser rejects
                    // it elsewhere, so the generator must too.
                    let hold_ms = hold.filter(|_| condition.is_state());
                    Statement::Rule(RuleStmt {
                        name,
                        condition,
                        hold_ms,
                        message,
                        priority,
                    })
                })
        ),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pretty_print_then_parse_round_trips(stmt in arb_statement()) {
        let text = stmt.to_string();
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("canonical text failed to parse: {text:?}\n{}", e.render(&text)));
        prop_assert_eq!(&reparsed, &stmt, "canonical text: {}", text);
    }

    #[test]
    fn canonical_form_is_a_fixed_point(stmt in arb_statement()) {
        let once = stmt.to_string();
        let twice = parse(&once).unwrap().to_string();
        prop_assert_eq!(once, twice);
    }
}
