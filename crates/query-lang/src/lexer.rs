//! The TQL lexer: hand-rolled, byte-offset spans, no dependencies.
//!
//! Beyond the usual words / strings / punctuation, two literal forms are
//! resolved here because they are purely lexical:
//!
//! * **durations** — an integer with a unit suffix: `250ms`, `90s`, `5m`,
//!   `2h`, `1d`;
//! * **timestamps** — `HH:MM:SS` with an optional day prefix:
//!   `09:30:00`, `2d13:05:00` (the dataset's day-indexed clock).
//!
//! `5d` alone is five days (a duration); `5d` followed by a time of day is
//! a day prefix (`5d09:00:00`). The lexer disambiguates by the character
//! after the `d`.

use crate::error::{Span, TqlError};
use trips_store::CmpOp;

pub const MS_PER_SEC: i64 = 1_000;
pub const MS_PER_MIN: i64 = 60 * MS_PER_SEC;
pub const MS_PER_HOUR: i64 = 60 * MS_PER_MIN;
pub const MS_PER_DAY: i64 = 24 * MS_PER_HOUR;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A bare word: keyword, query source, or clause name.
    Word(String),
    /// A double-quoted string (no escape sequences).
    Str(String),
    Int(i64),
    /// A duration literal, in milliseconds.
    Dur(i64),
    /// A timestamp literal (`[Nd]HH:MM:SS`), in milliseconds.
    Time(i64),
    LParen,
    RParen,
    /// `->`
    Arrow,
    Cmp(CmpOp),
    Eof,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Lexes the whole source; the returned stream always ends with [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, TqlError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'"' => {
                let start = i;
                i += 1;
                let content_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(TqlError::new(
                        "unclosed string literal",
                        Span::new(start, bytes.len()),
                    ));
                }
                tokens.push(Token {
                    tok: Tok::Str(src[content_start..i].to_string()),
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            b'0'..=b'9' => {
                let (token, next) = lex_number(src, i)?;
                tokens.push(token);
                i = next;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Word(src[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            b'(' => {
                tokens.push(Token {
                    tok: Tok::LParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    tok: Tok::RParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        tok: Tok::Arrow,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    return Err(TqlError::new("expected `->`", Span::new(i, i + 1)));
                }
            }
            b'>' | b'<' => {
                let eq = bytes.get(i + 1) == Some(&b'=');
                let cmp = match (b, eq) {
                    (b'>', true) => CmpOp::Ge,
                    (b'>', false) => CmpOp::Gt,
                    (b'<', true) => CmpOp::Le,
                    _ => CmpOp::Lt,
                };
                let len = if eq { 2 } else { 1 };
                tokens.push(Token {
                    tok: Tok::Cmp(cmp),
                    span: Span::new(i, i + len),
                });
                i += len;
            }
            b'=' => {
                tokens.push(Token {
                    tok: Tok::Cmp(CmpOp::Eq),
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        tok: Tok::Cmp(CmpOp::Ne),
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    return Err(TqlError::new("expected `!=`", Span::new(i, i + 1)));
                }
            }
            _ => {
                // Report the whole (possibly multi-byte) character.
                let ch = src[i..].chars().next().unwrap_or('?');
                return Err(TqlError::new(
                    format!("unexpected character `{ch}`"),
                    Span::new(i, i + ch.len_utf8()),
                ));
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        span: Span::point(src.len()),
    });
    Ok(tokens)
}

/// Lexes a token starting with a digit: integer, duration, or timestamp.
fn lex_number(src: &str, start: usize) -> Result<(Token, usize), TqlError> {
    let bytes = src.as_bytes();
    let (first, mut i) = take_int(src, start)?;
    match bytes.get(i) {
        // `HH:MM:SS` — time of day on day 0.
        Some(b':') => {
            let (ms, end) = lex_time_of_day(src, start, first, i)?;
            Ok((
                Token {
                    tok: Tok::Time(ms),
                    span: Span::new(start, end),
                },
                end,
            ))
        }
        // `NdHH:MM:SS` (day prefix) or `Nd` (a duration in days).
        Some(b'd') if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
            let (hours, after_hours) = take_int(src, i + 1)?;
            if bytes.get(after_hours) != Some(&b':') {
                return Err(TqlError::new(
                    "expected `HH:MM:SS` after the day prefix",
                    Span::new(start, after_hours),
                ));
            }
            let (tod_ms, end) = lex_time_of_day(src, start, hours, after_hours)?;
            let ms = first
                .checked_mul(MS_PER_DAY)
                .and_then(|d| d.checked_add(tod_ms))
                .ok_or_else(|| TqlError::new("timestamp too large", Span::new(start, end)))?;
            Ok((
                Token {
                    tok: Tok::Time(ms),
                    span: Span::new(start, end),
                },
                end,
            ))
        }
        Some(b) if b.is_ascii_alphabetic() => {
            let unit_start = i;
            while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                i += 1;
            }
            let unit = &src[unit_start..i];
            let per = match unit {
                "ms" => 1,
                "s" => MS_PER_SEC,
                "m" => MS_PER_MIN,
                "h" => MS_PER_HOUR,
                "d" => MS_PER_DAY,
                _ => {
                    return Err(TqlError::new(
                        format!("unknown duration unit `{unit}` (expected ms, s, m, h or d)"),
                        Span::new(unit_start, i),
                    ))
                }
            };
            let ms = first
                .checked_mul(per)
                .ok_or_else(|| TqlError::new("duration too large", Span::new(start, i)))?;
            Ok((
                Token {
                    tok: Tok::Dur(ms),
                    span: Span::new(start, i),
                },
                i,
            ))
        }
        _ => Ok((
            Token {
                tok: Tok::Int(first),
                span: Span::new(start, i),
            },
            i,
        )),
    }
}

/// Continues a time-of-day literal whose hour component (`hours`) is
/// already consumed and whose next byte (at `colon`) is `:`. Returns the
/// full literal's milliseconds (hours + day handled by the caller via
/// `hours`) and the end offset. `start` anchors error spans at the whole
/// literal.
fn lex_time_of_day(
    src: &str,
    start: usize,
    hours: i64,
    colon: usize,
) -> Result<(i64, usize), TqlError> {
    let (mins, i) = take_int(src, colon + 1)?;
    let bytes = src.as_bytes();
    if bytes.get(i) != Some(&b':') {
        return Err(TqlError::new(
            "expected `HH:MM:SS` (two colons)",
            Span::new(start, i),
        ));
    }
    let (secs, end) = take_int(src, i + 1)?;
    if hours >= 24 || mins >= 60 || secs >= 60 {
        return Err(TqlError::new(
            "time-of-day component out of range (HH:MM:SS, 24-hour clock)",
            Span::new(start, end),
        ));
    }
    Ok((
        hours * MS_PER_HOUR + mins * MS_PER_MIN + secs * MS_PER_SEC,
        end,
    ))
}

/// Consumes a run of ASCII digits at `start`; errors if there is none or
/// the value overflows `i64`.
fn take_int(src: &str, start: usize) -> Result<(i64, usize), TqlError> {
    let bytes = src.as_bytes();
    let mut i = start;
    let mut value: i64 = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        value = value
            .checked_mul(10)
            .and_then(|v| v.checked_add(i64::from(bytes[i] - b'0')))
            .ok_or_else(|| TqlError::new("number too large", Span::new(start, i + 1)))?;
        i += 1;
    }
    if i == start {
        return Err(TqlError::new("expected a number", Span::point(start)));
    }
    Ok((value, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks(r#"FIND flows LIMIT 5"#),
            vec![
                Tok::Word("FIND".into()),
                Tok::Word("flows".into()),
                Tok::Word("LIMIT".into()),
                Tok::Int(5),
                Tok::Eof
            ]
        );
        assert_eq!(toks("5m")[0], Tok::Dur(300_000));
        assert_eq!(toks("250ms")[0], Tok::Dur(250));
        assert_eq!(toks("2d")[0], Tok::Dur(2 * MS_PER_DAY));
        assert_eq!(
            toks("09:30:00")[0],
            Tok::Time(9 * MS_PER_HOUR + 30 * MS_PER_MIN)
        );
        assert_eq!(
            toks("2d01:00:05")[0],
            Tok::Time(2 * MS_PER_DAY + MS_PER_HOUR + 5 * MS_PER_SEC)
        );
        assert_eq!(toks(r#""lab-*""#)[0], Tok::Str("lab-*".into()));
        assert_eq!(
            toks(">= > <= < = !="),
            vec![
                Tok::Cmp(CmpOp::Ge),
                Tok::Cmp(CmpOp::Gt),
                Tok::Cmp(CmpOp::Le),
                Tok::Cmp(CmpOp::Lt),
                Tok::Cmp(CmpOp::Eq),
                Tok::Cmp(CmpOp::Ne),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("( -> )"),
            vec![Tok::LParen, Tok::Arrow, Tok::RParen, Tok::Eof]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let tokens = lex(r#"WHEN "x" 5m"#).unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 4));
        assert_eq!(tokens[1].span, Span::new(5, 8)); // includes the quotes
        assert_eq!(tokens[2].span, Span::new(9, 11));
    }

    #[test]
    fn errors() {
        assert_eq!(
            lex(r#""open"#).unwrap_err().message,
            "unclosed string literal"
        );
        assert!(lex("5q")
            .unwrap_err()
            .message
            .contains("unknown duration unit `q`"));
        assert_eq!(lex("a - b").unwrap_err().message, "expected `->`");
        assert_eq!(lex("a ! b").unwrap_err().message, "expected `!=`");
        assert!(lex("25:00:00")
            .unwrap_err()
            .message
            .contains("out of range"));
        assert!(lex("#")
            .unwrap_err()
            .message
            .contains("unexpected character"));
    }
}
