//! The TQL recursive-descent parser.
//!
//! Keywords are case-insensitive on input (`when` == `WHEN`); the
//! canonical form emitted by the AST's `Display` uses uppercase keywords.
//! Every error carries the span of the offending token and a message
//! naming what was expected — the full catalogue lives in
//! `docs/TQL.md` and is pinned by `tests/golden_errors.rs`.

use crate::ast::{FindStmt, Pred, RuleStmt, Source, Statement};
use crate::error::{Span, TqlError};
use crate::lexer::{lex, Tok, Token};
use trips_store::{CmpOp, Condition, RegionSel};

/// Parses one TQL statement.
pub fn parse(src: &str) -> Result<Statement, TqlError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// The next token if it is a word equal (case-insensitively) to `kw`.
    fn eat_word(&mut self, kw: &str) -> Option<Token> {
        match &self.peek().tok {
            Tok::Word(w) if w.eq_ignore_ascii_case(kw) => Some(self.next()),
            _ => None,
        }
    }

    fn expect_word(&mut self, kw: &str, context: &str) -> Result<Token, TqlError> {
        self.eat_word(kw)
            .ok_or_else(|| TqlError::new(context, self.peek().span))
    }

    fn expect_str(&mut self, context: &str) -> Result<String, TqlError> {
        match &self.peek().tok {
            Tok::Str(_) => {
                let Tok::Str(s) = self.next().tok else {
                    unreachable!()
                };
                Ok(s)
            }
            _ => Err(TqlError::new(context, self.peek().span)),
        }
    }

    fn expect_int(&mut self, context: &str) -> Result<(i64, Span), TqlError> {
        match self.peek().tok {
            Tok::Int(n) => {
                let span = self.next().span;
                Ok((n, span))
            }
            _ => Err(TqlError::new(context, self.peek().span)),
        }
    }

    fn expect_duration(&mut self, context: &str) -> Result<i64, TqlError> {
        match self.peek().tok {
            Tok::Dur(ms) => {
                self.next();
                Ok(ms)
            }
            _ => Err(TqlError::new(context, self.peek().span)),
        }
    }

    fn expect_time(&mut self, context: &str) -> Result<i64, TqlError> {
        match self.peek().tok {
            Tok::Time(ms) => {
                self.next();
                Ok(ms)
            }
            _ => Err(TqlError::new(context, self.peek().span)),
        }
    }

    fn expect_cmp(&mut self) -> Result<CmpOp, TqlError> {
        match self.peek().tok {
            Tok::Cmp(op) => {
                self.next();
                Ok(op)
            }
            _ => Err(TqlError::new(
                "expected a comparison (>, >=, <, <=, =, !=)",
                self.peek().span,
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<(), TqlError> {
        match self.peek().tok {
            Tok::Eof => Ok(()),
            _ => Err(TqlError::new(
                "unexpected trailing input",
                Span::new(
                    self.peek().span.start,
                    self.tokens[self.tokens.len() - 1].span.end,
                ),
            )),
        }
    }

    fn statement(&mut self) -> Result<Statement, TqlError> {
        if self.eat_word("FIND").is_some() {
            return Ok(Statement::Find(self.find()?));
        }
        if let Tok::Word(w) = &self.peek().tok {
            if w.eq_ignore_ascii_case("RULE") || w.eq_ignore_ascii_case("WHEN") {
                return Ok(Statement::Rule(self.rule()?));
            }
            let w = w.clone();
            return Err(TqlError::new(
                format!("unknown keyword `{w}` (expected `FIND`, `RULE` or `WHEN`)"),
                self.peek().span,
            ));
        }
        Err(TqlError::new(
            "expected a statement (`FIND …`, `RULE …` or `WHEN …`)",
            self.peek().span,
        ))
    }

    // ---- FIND ------------------------------------------------------------

    fn find(&mut self) -> Result<FindStmt, TqlError> {
        let source = self.source()?;
        let mut preds = Vec::new();
        if self.eat_word("WHERE").is_some() {
            loop {
                preds.push(self.pred(&preds)?);
                if self.eat_word("AND").is_none() {
                    break;
                }
            }
        }
        Ok(FindStmt { source, preds })
    }

    fn source(&mut self) -> Result<Source, TqlError> {
        let token = self.peek().clone();
        let Tok::Word(w) = &token.tok else {
            return Err(TqlError::new(
                "expected a query source (popular_regions, flows, dwell_histogram, \
                 devices, semantics or stats)",
                token.span,
            ));
        };
        let source = match w.to_ascii_lowercase().as_str() {
            "popular_regions" => {
                self.next();
                Source::PopularRegions
            }
            "flows" => {
                self.next();
                let limit = if self.eat_word("LIMIT").is_some() {
                    let (n, span) = self.expect_int("`LIMIT` takes a count, e.g. LIMIT 10")?;
                    if n <= 0 {
                        return Err(TqlError::new("LIMIT must be positive", span));
                    }
                    Some(n as usize)
                } else {
                    None
                };
                Source::Flows { limit }
            }
            "dwell_histogram" => {
                self.next();
                self.expect_word(
                    "BUCKET",
                    "dwell_histogram requires `BUCKET <duration>` (e.g. BUCKET 5m)",
                )?;
                let bucket_ms =
                    self.expect_duration("`BUCKET` takes a duration, e.g. BUCKET 5m")?;
                Source::DwellHistogram { bucket_ms }
            }
            "devices" => {
                self.next();
                Source::Devices
            }
            "semantics" => {
                self.next();
                Source::Semantics
            }
            "stats" => {
                self.next();
                Source::Stats
            }
            _ => {
                return Err(TqlError::new(
                    format!(
                        "unknown query source `{w}` (expected popular_regions, flows, \
                         dwell_histogram, devices, semantics or stats)"
                    ),
                    token.span,
                ))
            }
        };
        Ok(source)
    }

    fn pred(&mut self, seen: &[Pred]) -> Result<Pred, TqlError> {
        let token = self.peek().clone();
        let Tok::Word(w) = &token.tok else {
            return Err(TqlError::new(
                "expected a WHERE clause (device, region, event or BETWEEN)",
                token.span,
            ));
        };
        let dup = |kind: &str| TqlError::new(format!("duplicate `{kind}` clause"), token.span);
        let pred = match w.to_ascii_lowercase().as_str() {
            "device" => {
                if seen.iter().any(|p| matches!(p, Pred::Device(_))) {
                    return Err(dup("device"));
                }
                self.next();
                Pred::Device(self.expect_str("`device` takes a quoted glob, e.g. device \"3a.*\"")?)
            }
            "region" => {
                if seen.iter().any(|p| matches!(p, Pred::Region(_))) {
                    return Err(dup("region"));
                }
                self.next();
                let (n, span) = self.expect_int("`region` takes a region id, e.g. region 5")?;
                Pred::Region(region_id(n, span)?)
            }
            "event" => {
                if seen.iter().any(|p| matches!(p, Pred::Event(_))) {
                    return Err(dup("event"));
                }
                self.next();
                Pred::Event(self.expect_str("`event` takes a quoted name, e.g. event \"stay\"")?)
            }
            "between" => {
                if seen.iter().any(|p| matches!(p, Pred::Between { .. })) {
                    return Err(dup("BETWEEN"));
                }
                self.next();
                let from_ms = self.expect_time(
                    "`BETWEEN` takes timestamps, e.g. BETWEEN 0d09:00:00 AND 0d17:00:00",
                )?;
                self.expect_word("AND", "expected `AND` between the BETWEEN bounds")?;
                let to_ms = self.expect_time(
                    "`BETWEEN` takes timestamps, e.g. BETWEEN 0d09:00:00 AND 0d17:00:00",
                )?;
                Pred::Between { from_ms, to_ms }
            }
            _ => {
                return Err(TqlError::new(
                    format!(
                        "unknown WHERE clause `{w}` (expected device, region, event or BETWEEN)"
                    ),
                    token.span,
                ))
            }
        };
        Ok(pred)
    }

    // ---- Rules -----------------------------------------------------------

    fn rule(&mut self) -> Result<RuleStmt, TqlError> {
        let name = if self.eat_word("RULE").is_some() {
            Some(self.expect_str("`RULE` takes a quoted name, e.g. RULE \"lab-watch\"")?)
        } else {
            None
        };
        self.expect_word("WHEN", "a rule needs `WHEN <condition>`")?;
        let condition = self.condition()?;
        let hold_ms = if let Some(for_tok) = self.eat_word("FOR") {
            if !condition.is_state() {
                return Err(TqlError::new(
                    "FOR requires a state condition (occupancy/flow); \
                     `ENTERS`/`DWELLS` fire per event",
                    for_tok.span,
                ));
            }
            Some(self.expect_duration("`FOR` takes a duration, e.g. FOR 5m")?)
        } else {
            None
        };
        self.expect_word("ALERT", "a rule needs `ALERT` after its condition")?;
        let message = match &self.peek().tok {
            Tok::Str(_) => Some(self.expect_str("")?),
            _ => None,
        };
        let priority = if self.eat_word("PRIORITY").is_some() {
            let (n, span) = self.expect_int("`PRIORITY` takes a number, e.g. PRIORITY 5")?;
            Some(i32::try_from(n).map_err(|_| TqlError::new("priority out of range", span))?)
        } else {
            None
        };
        Ok(RuleStmt {
            name,
            condition,
            hold_ms,
            message,
            priority,
        })
    }

    fn condition(&mut self) -> Result<Condition, TqlError> {
        let token = self.peek().clone();
        let Tok::Word(w) = &token.tok else {
            return Err(TqlError::new(
                "expected a condition (device …, occupancy(…), flow(…))",
                token.span,
            ));
        };
        match w.to_ascii_lowercase().as_str() {
            "device" => {
                self.next();
                let device = match &self.peek().tok {
                    Tok::Str(_) => Some(self.expect_str("")?),
                    _ => None,
                };
                if self.eat_word("ENTERS").is_some() {
                    let region = self.region_ref()?;
                    Ok(Condition::Enters { device, region })
                } else if self.eat_word("DWELLS").is_some() {
                    self.expect_word("IN", "expected `IN` after `DWELLS`")?;
                    let region = self.region_ref()?;
                    let cmp = self.expect_cmp()?;
                    let threshold_ms =
                        self.expect_duration("dwell comparisons take a duration, e.g. > 30m")?;
                    Ok(Condition::Dwells {
                        device,
                        region,
                        cmp,
                        threshold_ms,
                    })
                } else {
                    Err(TqlError::new(
                        "expected `ENTERS` or `DWELLS` after `device`",
                        self.peek().span,
                    ))
                }
            }
            "occupancy" => {
                self.next();
                self.expect_lparen("occupancy")?;
                let region = self.region_ref()?;
                self.expect_rparen()?;
                let cmp = self.expect_cmp()?;
                let (count, _) =
                    self.expect_int("occupancy comparisons take a count, e.g. > 50")?;
                Ok(Condition::Occupancy { region, cmp, count })
            }
            "flow" => {
                self.next();
                self.expect_lparen("flow")?;
                let from = self.region_ref()?;
                match self.peek().tok {
                    Tok::Arrow => {
                        self.next();
                    }
                    _ => {
                        return Err(TqlError::new(
                            "expected `->` between the flow endpoints",
                            self.peek().span,
                        ))
                    }
                }
                let to = self.region_ref()?;
                self.expect_rparen()?;
                let cmp = self.expect_cmp()?;
                let (count, _) = self.expect_int("flow comparisons take a count, e.g. >= 100")?;
                Ok(Condition::Flow {
                    from,
                    to,
                    cmp,
                    count,
                })
            }
            _ => Err(TqlError::new(
                format!("unknown condition `{w}` (expected device, occupancy or flow)"),
                token.span,
            )),
        }
    }

    fn expect_lparen(&mut self, what: &str) -> Result<(), TqlError> {
        match self.peek().tok {
            Tok::LParen => {
                self.next();
                Ok(())
            }
            _ => Err(TqlError::new(
                format!("expected `(` after `{what}`"),
                self.peek().span,
            )),
        }
    }

    fn expect_rparen(&mut self) -> Result<(), TqlError> {
        match self.peek().tok {
            Tok::RParen => {
                self.next();
                Ok(())
            }
            _ => Err(TqlError::new("expected `)`", self.peek().span)),
        }
    }

    fn region_ref(&mut self) -> Result<RegionSel, TqlError> {
        if self.eat_word("region").is_some() {
            match self.peek().tok.clone() {
                Tok::Int(n) => {
                    let span = self.next().span;
                    Ok(RegionSel::Id(region_id(n, span)?))
                }
                Tok::Str(glob) => {
                    self.next();
                    Ok(RegionSel::Name(glob))
                }
                _ => Err(TqlError::new(
                    "`region` takes an id or a quoted name glob, e.g. region 5 or region \"lab-*\"",
                    self.peek().span,
                )),
            }
        } else if self.eat_word("floor").is_some() {
            let (n, span) = self.expect_int("`floor` takes a floor number, e.g. floor 2")?;
            let floor =
                i16::try_from(n).map_err(|_| TqlError::new("floor number out of range", span))?;
            Ok(RegionSel::Floor(floor))
        } else {
            Err(TqlError::new(
                "expected `region <id|\"glob\">` or `floor <n>`",
                self.peek().span,
            ))
        }
    }
}

fn region_id(n: i64, span: Span) -> Result<u32, TqlError> {
    u32::try_from(n).map_err(|_| TqlError::new("region id out of range", span))
}
