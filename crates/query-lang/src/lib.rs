//! # trips-query-lang — TQL, the textual query language
//!
//! The typed [`QueryRequest`] surface is precise but programmatic; analysts
//! and monitoring configs want text. TQL is a small language with two
//! statement forms, compiled by this crate onto the existing typed layers:
//!
//! * **One-shot queries** — `FIND <source> [WHERE …]` compiles to a
//!   [`QueryRequest`] answered by the store's query service;
//! * **Standing rules** — `[RULE "<name>"] WHEN <condition> [FOR <dur>]
//!   ALERT ["<msg>"] [PRIORITY <n>]` compiles to a [`RuleSpec`] registered
//!   with the store's [`RuleEngine`](trips_store::RuleEngine) and
//!   evaluated continuously on the ingest path.
//!
//! The full language reference (grammar, clause catalogue, error-message
//! catalogue, one-shot vs standing semantics) lives in `docs/TQL.md` at
//! the repository root; every fenced TQL snippet in that document is fed
//! through [`parse`] by a test.
//!
//! ## Parsing a one-shot query
//!
//! ```
//! use trips_query_lang::{compile, Compiled};
//! use trips_store::Query;
//!
//! let compiled = compile(r#"FIND flows LIMIT 5 WHERE device "3a.*""#).unwrap();
//! let Compiled::Query(request) = compiled else { panic!("one-shot") };
//! assert_eq!(request.query, Query::TopFlows { limit: 5 });
//! assert_eq!(request.selector.device_pattern.as_deref(), Some("3a.*"));
//! ```
//!
//! ## Compiling a standing rule
//!
//! ```
//! use trips_query_lang::{compile, Compiled};
//! use trips_store::{CmpOp, Condition, RegionSel};
//!
//! let compiled =
//!     compile(r#"RULE "crowded" WHEN occupancy(floor 2) > 50 FOR 5m ALERT PRIORITY 9"#)
//!         .unwrap();
//! let Compiled::Rule(spec) = compiled else { panic!("standing") };
//! assert_eq!(spec.name, "crowded");
//! assert_eq!(spec.priority, 9);
//! assert_eq!(spec.hold_ms, Some(300_000));
//! assert_eq!(
//!     spec.condition,
//!     Condition::Occupancy { region: RegionSel::Floor(2), cmp: CmpOp::Gt, count: 50 }
//! );
//! ```
//!
//! ## Pretty error spans
//!
//! Errors carry byte spans and render caret diagnostics:
//!
//! ```
//! use trips_query_lang::parse;
//!
//! let src = "FIND dwellz";
//! let err = parse(src).unwrap_err();
//! let rendered = err.render(src);
//! assert!(rendered.contains("unknown query source `dwellz`"));
//! assert!(rendered.contains("^^^^^^"));
//! ```
//!
//! ## Canonical form
//!
//! [`Statement`]'s `Display` emits a canonical spelling that re-parses to
//! an equal AST (property-tested), so a registered rule's source can be
//! echoed in server traces without drift:
//!
//! ```
//! use trips_query_lang::parse;
//!
//! let stmt = parse("when device enters region \"lab-*\" alert").unwrap();
//! assert_eq!(stmt.to_string(), r#"WHEN device ENTERS region "lab-*" ALERT"#);
//! assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
//! ```

pub mod ast;
mod error;
mod lexer;
mod parser;

pub use ast::{FindStmt, Pred, RuleStmt, Source, Statement};
pub use error::{Span, TqlError};
pub use parser::parse;

use trips_data::Timestamp;
use trips_dsm::RegionId;
use trips_store::{Query, QueryRequest, RuleSpec, SemanticsSelector};

/// `FIND flows` without `LIMIT` compiles to this many top flows.
pub const DEFAULT_FLOW_LIMIT: usize = 10;

/// What a TQL statement compiles to.
#[derive(Debug, Clone, PartialEq)]
pub enum Compiled {
    /// A one-shot query: hand it to the store's query service.
    Query(QueryRequest),
    /// A standing rule: register it with the store's rule engine.
    Rule(RuleSpec),
}

/// Parses and compiles one TQL statement (see [`parse`] and
/// [`compile_statement`]).
pub fn compile(src: &str) -> Result<Compiled, TqlError> {
    Ok(compile_statement(&parse(src)?))
}

/// Compiles a parsed statement. Infallible: every semantic restriction
/// (e.g. `FOR` on an event condition) is rejected by [`parse`], where a
/// source span is still available for the diagnostic.
pub fn compile_statement(stmt: &Statement) -> Compiled {
    match stmt {
        Statement::Find(find) => {
            let mut selector = SemanticsSelector::all();
            for pred in &find.preds {
                selector = match pred {
                    Pred::Device(glob) => selector.with_device_pattern(glob),
                    Pred::Region(id) => selector.with_region(RegionId(*id)),
                    Pred::Event(name) => selector.with_event(name),
                    Pred::Between { from_ms, to_ms } => selector.between(
                        Timestamp::from_millis(*from_ms),
                        Timestamp::from_millis(*to_ms),
                    ),
                };
            }
            let query = match &find.source {
                Source::PopularRegions => Query::PopularRegions,
                Source::Flows { limit } => Query::TopFlows {
                    limit: limit.unwrap_or(DEFAULT_FLOW_LIMIT),
                },
                Source::DwellHistogram { bucket_ms } => Query::DwellHistogram {
                    bucket: trips_data::Duration(*bucket_ms),
                },
                Source::Devices => Query::DeviceSummaries,
                Source::Semantics => Query::Semantics,
                Source::Stats => Query::Stats,
            };
            Compiled::Query(QueryRequest::new(selector, query))
        }
        Statement::Rule(rule) => Compiled::Rule(RuleSpec {
            name: rule.name.clone().unwrap_or_default(),
            priority: rule.priority.unwrap_or(0),
            condition: rule.condition.clone(),
            hold_ms: rule.hold_ms,
            message: rule.message.clone(),
            // The canonical pretty-printing, not the user's raw text: what
            // traces echo must itself re-parse.
            source: stmt.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_store::{CmpOp, Condition, RegionSel};

    #[test]
    fn find_compiles_every_source() {
        let cases: &[(&str, Query)] = &[
            ("FIND popular_regions", Query::PopularRegions),
            (
                "FIND flows",
                Query::TopFlows {
                    limit: DEFAULT_FLOW_LIMIT,
                },
            ),
            ("FIND flows LIMIT 3", Query::TopFlows { limit: 3 }),
            (
                "FIND dwell_histogram BUCKET 5m",
                Query::DwellHistogram {
                    bucket: trips_data::Duration(300_000),
                },
            ),
            ("FIND devices", Query::DeviceSummaries),
            ("FIND semantics", Query::Semantics),
            ("FIND stats", Query::Stats),
        ];
        for (src, want) in cases {
            let Compiled::Query(req) = compile(src).unwrap() else {
                panic!("{src}: expected a query");
            };
            assert_eq!(&req.query, want, "{src}");
            assert!(req.selector.is_all(), "{src}");
        }
    }

    #[test]
    fn where_clauses_fill_the_selector() {
        let Compiled::Query(req) = compile(
            r#"FIND semantics WHERE device "3a.*" AND region 5 AND event "stay" AND BETWEEN 0d09:00:00 AND 1d00:00:00"#,
        )
        .unwrap() else {
            panic!("expected a query");
        };
        assert_eq!(req.selector.device_pattern.as_deref(), Some("3a.*"));
        assert_eq!(req.selector.region, Some(RegionId(5)));
        assert_eq!(req.selector.event.as_deref(), Some("stay"));
        let (from, to) = req.selector.range.unwrap();
        assert_eq!(from, Timestamp::from_millis(9 * 3_600_000));
        assert_eq!(to, Timestamp::from_millis(24 * 3_600_000));
    }

    #[test]
    fn rules_compile_with_all_options() {
        let Compiled::Rule(spec) = compile(
            r#"RULE "lab" WHEN device "3a.*" DWELLS IN region "lab-*" >= 30m ALERT "long dwell" PRIORITY 7"#,
        )
        .unwrap() else {
            panic!("expected a rule");
        };
        assert_eq!(spec.name, "lab");
        assert_eq!(spec.priority, 7);
        assert_eq!(spec.message.as_deref(), Some("long dwell"));
        assert_eq!(spec.hold_ms, None);
        assert_eq!(
            spec.condition,
            Condition::Dwells {
                device: Some("3a.*".into()),
                region: RegionSel::Name("lab-*".into()),
                cmp: CmpOp::Ge,
                threshold_ms: 1_800_000,
            }
        );
        // The echoed source is canonical and re-parses to the same rule.
        let reparsed = parse(&spec.source).unwrap();
        assert_eq!(compile_statement(&reparsed), Compiled::Rule(spec));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(parse("find stats").unwrap(), parse("FIND stats").unwrap());
        assert_eq!(
            parse(r#"when flow(region 1 -> region 2) >= 10 alert"#).unwrap(),
            parse(r#"WHEN flow(region 1 -> region 2) >= 10 ALERT"#).unwrap()
        );
    }
}
