//! Typed TQL errors with byte-offset spans and caret-underlined rendering.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `at` (end-of-input errors).
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }
}

/// A lexing, parsing or compilation error, anchored to the offending
/// source range. `Display` shows the bare message; [`TqlError::render`]
/// produces the full caret diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TqlError {
    pub message: String,
    pub span: Span,
}

impl TqlError {
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        TqlError {
            message: message.into(),
            span,
        }
    }

    /// Renders a compiler-style diagnostic against the source the error
    /// came from:
    ///
    /// ```text
    /// error: unknown keyword `FILTER` (expected `FIND`, `RULE` or `WHEN`)
    ///   |
    ///   | FILTER devices
    ///   | ^^^^^^
    /// ```
    pub fn render(&self, src: &str) -> String {
        // Locate the line holding the span start.
        let line_start = src[..self.span.start.min(src.len())]
            .rfind('\n')
            .map(|p| p + 1)
            .unwrap_or(0);
        let line_end = src[line_start..]
            .find('\n')
            .map(|p| line_start + p)
            .unwrap_or(src.len());
        let line = &src[line_start..line_end];
        let col = src[line_start..self.span.start.min(src.len())]
            .chars()
            .count();
        let width = src[self.span.start.min(src.len())..self.span.end.min(src.len())]
            .chars()
            .count()
            .max(1);
        let mut out = String::new();
        out.push_str(&format!("error: {}\n", self.message));
        out.push_str("  |\n");
        out.push_str(&format!("  | {line}\n"));
        out.push_str(&format!("  | {}{}\n", " ".repeat(col), "^".repeat(width)));
        out
    }
}

impl fmt::Display for TqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TqlError {}
