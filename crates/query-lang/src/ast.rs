//! The typed TQL AST and its canonical pretty-printer.
//!
//! `Display` emits the **canonical form**: keywords uppercase, sources and
//! selectors lowercase, durations in the largest evenly-dividing unit,
//! timestamps as `NdHH:MM:SS`. Parsing the canonical form yields an equal
//! AST (property-tested in `tests/roundtrip.rs`), which is what lets the
//! server echo a registered rule's source in its traces without drift.

use std::fmt;

use crate::lexer::{MS_PER_DAY, MS_PER_HOUR, MS_PER_MIN, MS_PER_SEC};
use trips_store::{Condition, RegionSel};

/// A parsed TQL statement: a one-shot query or a standing rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Find(FindStmt),
    Rule(RuleStmt),
}

/// `FIND <source> [WHERE <pred> {AND <pred>}]`
#[derive(Debug, Clone, PartialEq)]
pub struct FindStmt {
    pub source: Source,
    pub preds: Vec<Pred>,
}

/// What a `FIND` asks for (maps onto [`trips_store::Query`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    PopularRegions,
    /// `flows [LIMIT n]` — `None` compiles to the default limit.
    Flows {
        limit: Option<usize>,
    },
    /// `dwell_histogram BUCKET <duration>`
    DwellHistogram {
        bucket_ms: i64,
    },
    Devices,
    Semantics,
    Stats,
}

/// One `WHERE` predicate (maps onto [`trips_store::SemanticsSelector`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `device "<glob>"`
    Device(String),
    /// `region <id>`
    Region(u32),
    /// `event "<name>"`
    Event(String),
    /// `BETWEEN <ts> AND <ts>` — half-open `[from, to)`.
    Between { from_ms: i64, to_ms: i64 },
}

/// `[RULE "<name>"] WHEN <condition> [FOR <dur>] ALERT ["<msg>"] [PRIORITY <n>]`
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStmt {
    pub name: Option<String>,
    pub condition: Condition,
    pub hold_ms: Option<i64>,
    pub message: Option<String>,
    pub priority: Option<i32>,
}

/// Formats a duration in the largest unit that divides it evenly.
pub fn fmt_duration(ms: i64) -> String {
    for (per, unit) in [
        (MS_PER_DAY, "d"),
        (MS_PER_HOUR, "h"),
        (MS_PER_MIN, "m"),
        (MS_PER_SEC, "s"),
    ] {
        if ms != 0 && ms % per == 0 {
            return format!("{}{unit}", ms / per);
        }
    }
    format!("{ms}ms")
}

/// Formats a timestamp as `NdHH:MM:SS` (day-indexed clock).
pub fn fmt_timestamp(ms: i64) -> String {
    let day = ms.div_euclid(MS_PER_DAY);
    let tod = ms.rem_euclid(MS_PER_DAY);
    format!(
        "{day}d{:02}:{:02}:{:02}",
        tod / MS_PER_HOUR,
        (tod % MS_PER_HOUR) / MS_PER_MIN,
        (tod % MS_PER_MIN) / MS_PER_SEC,
    )
}

fn fmt_region(f: &mut fmt::Formatter<'_>, sel: &RegionSel) -> fmt::Result {
    match sel {
        RegionSel::Id(id) => write!(f, "region {id}"),
        RegionSel::Name(glob) => write!(f, "region \"{glob}\""),
        RegionSel::Floor(n) => write!(f, "floor {n}"),
    }
}

fn fmt_condition(f: &mut fmt::Formatter<'_>, cond: &Condition) -> fmt::Result {
    match cond {
        Condition::Enters { device, region } => {
            write!(f, "device ")?;
            if let Some(glob) = device {
                write!(f, "\"{glob}\" ")?;
            }
            write!(f, "ENTERS ")?;
            fmt_region(f, region)
        }
        Condition::Dwells {
            device,
            region,
            cmp,
            threshold_ms,
        } => {
            write!(f, "device ")?;
            if let Some(glob) = device {
                write!(f, "\"{glob}\" ")?;
            }
            write!(f, "DWELLS IN ")?;
            fmt_region(f, region)?;
            write!(f, " {} {}", cmp.as_str(), fmt_duration(*threshold_ms))
        }
        Condition::Occupancy { region, cmp, count } => {
            write!(f, "occupancy(")?;
            fmt_region(f, region)?;
            write!(f, ") {} {count}", cmp.as_str())
        }
        Condition::Flow {
            from,
            to,
            cmp,
            count,
        } => {
            write!(f, "flow(")?;
            fmt_region(f, from)?;
            write!(f, " -> ")?;
            fmt_region(f, to)?;
            write!(f, ") {} {count}", cmp.as_str())
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Device(glob) => write!(f, "device \"{glob}\""),
            Pred::Region(id) => write!(f, "region {id}"),
            Pred::Event(name) => write!(f, "event \"{name}\""),
            Pred::Between { from_ms, to_ms } => write!(
                f,
                "BETWEEN {} AND {}",
                fmt_timestamp(*from_ms),
                fmt_timestamp(*to_ms)
            ),
        }
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::PopularRegions => write!(f, "popular_regions"),
            Source::Flows { limit: None } => write!(f, "flows"),
            Source::Flows { limit: Some(n) } => write!(f, "flows LIMIT {n}"),
            Source::DwellHistogram { bucket_ms } => {
                write!(f, "dwell_histogram BUCKET {}", fmt_duration(*bucket_ms))
            }
            Source::Devices => write!(f, "devices"),
            Source::Semantics => write!(f, "semantics"),
            Source::Stats => write!(f, "stats"),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Find(find) => {
                write!(f, "FIND {}", find.source)?;
                for (i, pred) in find.preds.iter().enumerate() {
                    write!(f, " {} {pred}", if i == 0 { "WHERE" } else { "AND" })?;
                }
                Ok(())
            }
            Statement::Rule(rule) => {
                if let Some(name) = &rule.name {
                    write!(f, "RULE \"{name}\" ")?;
                }
                write!(f, "WHEN ")?;
                fmt_condition(f, &rule.condition)?;
                if let Some(hold) = rule.hold_ms {
                    write!(f, " FOR {}", fmt_duration(hold))?;
                }
                write!(f, " ALERT")?;
                if let Some(msg) = &rule.message {
                    write!(f, " \"{msg}\"")?;
                }
                if let Some(p) = rule.priority {
                    write!(f, " PRIORITY {p}")?;
                }
                Ok(())
            }
        }
    }
}
