//! One shard: per-device semantics plus the incremental aggregates that
//! make unfiltered analytics queries O(shards) merges.

use std::collections::{BTreeMap, BTreeSet};
use trips_annotate::MobilitySemantics;
use trips_data::DeviceId;
use trips_dsm::RegionId;

/// Everything stored for one device within its shard.
#[derive(Default)]
pub(crate) struct DeviceEntry {
    /// Full semantics sequence in ingest order.
    pub semantics: Vec<MobilitySemantics>,
    /// Distinct regions visited.
    pub regions: BTreeSet<RegionId>,
    /// Number of `stay` semantics.
    pub stays: usize,
    /// Total time accounted for by semantics (ms).
    pub accounted_ms: i64,
    /// Region of the last ingested semantics — carries directed-flow
    /// counting across ingest batch boundaries.
    pub last: Option<(RegionId, String)>,
    /// Indices into `semantics` where a session ended (`end_session`):
    /// no flow is counted across these boundaries, and snapshots split at
    /// them so the suppression survives persist/load.
    pub breaks: Vec<usize>,
}

/// Running per-region popularity aggregate.
pub(crate) struct RegionAgg {
    pub name: String,
    pub stays: usize,
    pub pass_bys: usize,
    /// Devices that stayed at least once. Devices are partitioned by shard,
    /// so summing set sizes across shards gives the exact unique count.
    pub stayers: BTreeSet<DeviceId>,
    pub dwell_ms: i64,
}

/// Running directed-flow aggregate.
pub(crate) struct FlowAgg {
    pub from_name: String,
    pub to_name: String,
    pub count: usize,
}

#[derive(Default)]
pub(crate) struct Shard {
    pub devices: BTreeMap<DeviceId, DeviceEntry>,
    pub regions: BTreeMap<RegionId, RegionAgg>,
    pub flows: BTreeMap<(RegionId, RegionId), FlowAgg>,
    /// Exact stay durations (ms) → count; bucketed at query time so any
    /// histogram width stays an O(distinct durations) merge.
    pub dwell: BTreeMap<i64, usize>,
    pub semantics_count: usize,
}

impl Shard {
    pub fn ingest(&mut self, device: &DeviceId, semantics: &[MobilitySemantics]) {
        let entry = self.devices.entry(device.clone()).or_default();
        for s in semantics {
            let dur_ms = s.duration().as_millis();
            let region = self.regions.entry(s.region).or_insert_with(|| RegionAgg {
                name: s.region_name.clone(),
                stays: 0,
                pass_bys: 0,
                stayers: BTreeSet::new(),
                dwell_ms: 0,
            });
            if s.event == "stay" {
                region.stays += 1;
                region.dwell_ms += dur_ms;
                region.stayers.insert(device.clone());
                entry.stays += 1;
                *self.dwell.entry(dur_ms).or_default() += 1;
            } else {
                region.pass_bys += 1;
            }
            if let Some((prev, prev_name)) = &entry.last {
                if *prev != s.region {
                    self.flows
                        .entry((*prev, s.region))
                        .or_insert_with(|| FlowAgg {
                            from_name: prev_name.clone(),
                            to_name: s.region_name.clone(),
                            count: 0,
                        })
                        .count += 1;
                }
            }
            entry.last = Some((s.region, s.region_name.clone()));
            entry.regions.insert(s.region);
            entry.accounted_ms += dur_ms;
            entry.semantics.push(s.clone());
            self.semantics_count += 1;
        }
    }
}
