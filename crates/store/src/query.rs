//! Query layer: selector-filtered analytics over the sharded store.
//!
//! Unfiltered (match-all) requests merge the per-shard incremental
//! aggregates — O(shards). Filtered requests scan only the matching
//! devices' semantics inside each shard, applying the same accumulation,
//! so filtered and unfiltered paths agree wherever they overlap (pinned by
//! this module's tests).

use crate::types::{DeviceSummary, Flow, RegionPopularity, StoreHealth, StoreStats};
use crate::SemanticsStore;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use trips_annotate::MobilitySemantics;
use trips_data::{glob_match, DeviceId, Duration, Timestamp};
use trips_dsm::RegionId;

/// Filter over stored semantics, reusing the Data Selector's conventions
/// from `trips-data`: device-id glob patterns (`*` / `?`, as in
/// `SelectionRule::DevicePattern`) and **half-open** `[from, to)` temporal
/// ranges (as in `SelectionRule::TemporalRange`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SemanticsSelector {
    /// Device-id glob (`None` = every device).
    pub device_pattern: Option<String>,
    /// Restrict to one semantic region.
    pub region: Option<RegionId>,
    /// Restrict to one event annotation (e.g. `"stay"`).
    pub event: Option<String>,
    /// Half-open window `[from, to)`: a semantics matches when its
    /// interval, treated half-open as `[start, end)`, intersects the
    /// window (`start < to && end > from`), so back-to-back windows
    /// partition time with no double-counted semantics — the same
    /// convention as `trips-data`'s `TemporalRange`. A zero-duration
    /// semantics is treated as the instant `start` (matches when
    /// `from <= start < to`).
    pub range: Option<(Timestamp, Timestamp)>,
}

impl SemanticsSelector {
    /// Matches everything (the aggregate fast path).
    pub fn all() -> Self {
        SemanticsSelector::default()
    }

    /// Adds a device-id glob pattern.
    pub fn with_device_pattern(mut self, pattern: &str) -> Self {
        self.device_pattern = Some(pattern.to_string());
        self
    }

    /// Restricts to one region.
    pub fn with_region(mut self, region: RegionId) -> Self {
        self.region = Some(region);
        self
    }

    /// Restricts to one event annotation.
    pub fn with_event(mut self, event: &str) -> Self {
        self.event = Some(event.to_string());
        self
    }

    /// Restricts to the half-open window `[from, to)`.
    pub fn between(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.range = Some((from, to));
        self
    }

    /// Whether the selector matches everything (enables the O(shards)
    /// aggregate merge).
    pub fn is_all(&self) -> bool {
        self.device_pattern.is_none()
            && self.region.is_none()
            && self.event.is_none()
            && self.range.is_none()
    }

    /// Device-level predicate (glob only).
    pub fn matches_device(&self, device: &DeviceId) -> bool {
        self.device_pattern
            .as_deref()
            .map_or(true, |p| glob_match(p, device.as_str()))
    }

    /// Semantics-level predicate (region / event / half-open time window;
    /// the device predicate is applied separately).
    pub fn matches(&self, s: &MobilitySemantics) -> bool {
        self.region.map_or(true, |r| s.region == r)
            && self.event.as_deref().map_or(true, |e| s.event == e)
            && self.range.map_or(true, |(from, to)| {
                if s.start == s.end {
                    s.start >= from && s.start < to
                } else {
                    s.start < to && s.end > from
                }
            })
    }
}

/// What to compute over the selected semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Regions ranked by stay count then total dwell.
    PopularRegions,
    /// Directed region-to-region transitions ranked by count.
    TopFlows { limit: usize },
    /// Histogram of stay dwell times with the given bucket width.
    DwellHistogram { bucket: Duration },
    /// Per-device visit summaries (keyed by device id).
    DeviceSummaries,
    /// The matching semantics themselves (device-major, ingest order).
    Semantics,
    /// Store occupancy counters (ignores the selector).
    Stats,
}

/// A selector plus a query kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    pub selector: SemanticsSelector,
    pub query: Query,
}

impl QueryRequest {
    pub fn new(selector: SemanticsSelector, query: Query) -> Self {
        QueryRequest { selector, query }
    }
}

/// The result of a [`QueryRequest`], variant-matched to its [`Query`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryResult {
    PopularRegions(Vec<RegionPopularity>),
    Flows(Vec<Flow>),
    DwellHistogram(Vec<(Duration, usize)>),
    DeviceSummaries(Vec<(DeviceId, DeviceSummary)>),
    Semantics(Vec<MobilitySemantics>),
    Stats(StoreStats),
}

impl SemanticsStore {
    /// Answers one request (see the per-query methods for details).
    pub fn query(&self, request: &QueryRequest) -> QueryResult {
        match &request.query {
            Query::PopularRegions => {
                QueryResult::PopularRegions(self.popular_regions(&request.selector))
            }
            Query::TopFlows { limit } => {
                QueryResult::Flows(self.top_flows(&request.selector, *limit))
            }
            Query::DwellHistogram { bucket } => {
                QueryResult::DwellHistogram(self.dwell_histogram(&request.selector, *bucket))
            }
            Query::DeviceSummaries => {
                QueryResult::DeviceSummaries(self.device_summaries(&request.selector))
            }
            Query::Semantics => QueryResult::Semantics(self.semantics(&request.selector)),
            Query::Stats => QueryResult::Stats(self.stats()),
        }
    }

    /// Regions ranked by stays (desc), then total dwell (desc); ties keep
    /// region-id order.
    pub fn popular_regions(&self, selector: &SemanticsSelector) -> Vec<RegionPopularity> {
        let mut map: BTreeMap<RegionId, RegionPopularity> = BTreeMap::new();
        if selector.is_all() {
            for shard in self.shards() {
                let shard = shard.read();
                for (rid, agg) in &shard.regions {
                    let e = map.entry(*rid).or_insert_with(|| RegionPopularity {
                        region: *rid,
                        region_name: agg.name.clone(),
                        stays: 0,
                        pass_bys: 0,
                        unique_stayers: 0,
                        total_dwell: Duration::ZERO,
                    });
                    e.stays += agg.stays;
                    e.pass_bys += agg.pass_bys;
                    e.unique_stayers += agg.stayers.len();
                    e.total_dwell = e.total_dwell + Duration(agg.dwell_ms);
                }
            }
        } else {
            let mut stayers: BTreeMap<RegionId, usize> = BTreeMap::new();
            for shard in self.shards() {
                let shard = shard.read();
                for (device, entry) in &shard.devices {
                    if !selector.matches_device(device) {
                        continue;
                    }
                    let mut stayed: BTreeSet<RegionId> = BTreeSet::new();
                    for s in entry.semantics.iter().filter(|s| selector.matches(s)) {
                        let e = map.entry(s.region).or_insert_with(|| RegionPopularity {
                            region: s.region,
                            region_name: s.region_name.clone(),
                            stays: 0,
                            pass_bys: 0,
                            unique_stayers: 0,
                            total_dwell: Duration::ZERO,
                        });
                        if s.event == "stay" {
                            e.stays += 1;
                            e.total_dwell = e.total_dwell + s.duration();
                            stayed.insert(s.region);
                        } else {
                            e.pass_bys += 1;
                        }
                    }
                    for r in stayed {
                        *stayers.entry(r).or_default() += 1;
                    }
                }
            }
            for (r, n) in stayers {
                if let Some(e) = map.get_mut(&r) {
                    e.unique_stayers = n;
                }
            }
        }
        let mut out: Vec<RegionPopularity> = map.into_values().collect();
        out.sort_by(|a, b| {
            b.stays
                .cmp(&a.stays)
                .then(b.total_dwell.cmp(&a.total_dwell))
        });
        out
    }

    /// Directed region-to-region transitions ranked by count (desc); ties
    /// keep (from, to) order. Filtered requests count transitions between
    /// *consecutive matching* semantics of each matching device.
    pub fn top_flows(&self, selector: &SemanticsSelector, limit: usize) -> Vec<Flow> {
        let mut counts: BTreeMap<(RegionId, RegionId), (String, String, usize)> = BTreeMap::new();
        if selector.is_all() {
            for shard in self.shards() {
                let shard = shard.read();
                for ((from, to), agg) in &shard.flows {
                    counts
                        .entry((*from, *to))
                        .or_insert_with(|| (agg.from_name.clone(), agg.to_name.clone(), 0))
                        .2 += agg.count;
                }
            }
        } else {
            for shard in self.shards() {
                let shard = shard.read();
                for (device, entry) in &shard.devices {
                    if !selector.matches_device(device) {
                        continue;
                    }
                    let mut prev: Option<&MobilitySemantics> = None;
                    let mut breaks = entry.breaks.iter().peekable();
                    for (i, s) in entry.semantics.iter().enumerate() {
                        // Session boundaries suppress flows on the fast
                        // path (entry.last reset); mirror that here.
                        while breaks.peek().is_some_and(|b| **b <= i) {
                            prev = None;
                            breaks.next();
                        }
                        if !selector.matches(s) {
                            continue;
                        }
                        if let Some(p) = prev {
                            if p.region != s.region {
                                counts
                                    .entry((p.region, s.region))
                                    .or_insert_with(|| {
                                        (p.region_name.clone(), s.region_name.clone(), 0)
                                    })
                                    .2 += 1;
                            }
                        }
                        prev = Some(s);
                    }
                }
            }
        }
        let mut flows: Vec<Flow> = counts
            .into_iter()
            .map(|((from, to), (from_name, to_name, count))| Flow {
                from,
                from_name,
                to,
                to_name,
                count,
            })
            .collect();
        flows.sort_by_key(|f| std::cmp::Reverse(f.count));
        flows.truncate(limit);
        flows
    }

    /// Histogram of stay dwell times with the given bucket width
    /// (`bucket` must be positive).
    pub fn dwell_histogram(
        &self,
        selector: &SemanticsSelector,
        bucket: Duration,
    ) -> Vec<(Duration, usize)> {
        assert!(bucket.as_millis() > 0, "bucket must be positive");
        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
        if selector.is_all() {
            for shard in self.shards() {
                let shard = shard.read();
                for (dur_ms, n) in &shard.dwell {
                    *counts.entry(dur_ms / bucket.as_millis()).or_default() += n;
                }
            }
        } else {
            for shard in self.shards() {
                let shard = shard.read();
                for (device, entry) in &shard.devices {
                    if !selector.matches_device(device) {
                        continue;
                    }
                    for s in entry
                        .semantics
                        .iter()
                        .filter(|s| s.event == "stay" && selector.matches(s))
                    {
                        let b = s.duration().as_millis() / bucket.as_millis();
                        *counts.entry(b).or_default() += 1;
                    }
                }
            }
        }
        counts
            .into_iter()
            .map(|(b, n)| (Duration(b * bucket.as_millis()), n))
            .collect()
    }

    /// Per-device summaries for matching devices, in device-id order.
    pub fn device_summaries(&self, selector: &SemanticsSelector) -> Vec<(DeviceId, DeviceSummary)> {
        let mut out: BTreeMap<DeviceId, DeviceSummary> = BTreeMap::new();
        for shard in self.shards() {
            let shard = shard.read();
            for (device, entry) in &shard.devices {
                if !selector.matches_device(device) {
                    continue;
                }
                let summary = if selector.is_all() {
                    DeviceSummary {
                        device: device.anonymized(),
                        regions_visited: entry.regions.len(),
                        stays: entry.stays,
                        accounted: Duration(entry.accounted_ms),
                    }
                } else {
                    let mut regions: BTreeSet<RegionId> = BTreeSet::new();
                    let (mut stays, mut accounted_ms) = (0usize, 0i64);
                    for s in entry.semantics.iter().filter(|s| selector.matches(s)) {
                        regions.insert(s.region);
                        if s.event == "stay" {
                            stays += 1;
                        }
                        accounted_ms += s.duration().as_millis();
                    }
                    DeviceSummary {
                        device: device.anonymized(),
                        regions_visited: regions.len(),
                        stays,
                        accounted: Duration(accounted_ms),
                    }
                };
                out.insert(device.clone(), summary);
            }
        }
        out.into_iter().collect()
    }

    /// The matching semantics, device-major (device-id order), in ingest
    /// order within each device.
    pub fn semantics(&self, selector: &SemanticsSelector) -> Vec<MobilitySemantics> {
        let mut per_device: BTreeMap<DeviceId, Vec<MobilitySemantics>> = BTreeMap::new();
        for shard in self.shards() {
            let shard = shard.read();
            for (device, entry) in &shard.devices {
                if !selector.matches_device(device) {
                    continue;
                }
                let matching: Vec<MobilitySemantics> = entry
                    .semantics
                    .iter()
                    .filter(|s| selector.matches(s))
                    .cloned()
                    .collect();
                if !matching.is_empty() {
                    per_device.insert(device.clone(), matching);
                }
            }
        }
        per_device.into_values().flatten().collect()
    }

    /// Store occupancy counters.
    pub fn stats(&self) -> StoreStats {
        let mut devices = 0;
        let mut semantics = 0;
        let mut regions: BTreeSet<RegionId> = BTreeSet::new();
        let mut per_shard = Vec::with_capacity(self.shard_count());
        for shard in self.shards() {
            let shard = shard.read();
            devices += shard.devices.len();
            semantics += shard.semantics_count;
            regions.extend(shard.regions.keys().copied());
            per_shard.push(shard.devices.len());
        }
        StoreStats {
            shards: self.shard_count(),
            devices,
            semantics,
            regions: regions.len(),
            devices_per_shard: per_shard,
        }
    }
}

/// Shareable, cloneable handle answering [`QueryRequest`]s against one
/// store — the API concurrent consumers hold.
#[derive(Clone)]
pub struct QueryService {
    store: Arc<SemanticsStore>,
}

impl QueryService {
    pub fn new(store: Arc<SemanticsStore>) -> Self {
        QueryService { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<SemanticsStore> {
        &self.store
    }

    /// Answers one request.
    pub fn query(&self, request: &QueryRequest) -> QueryResult {
        self.store.query(request)
    }

    pub fn popular_regions(&self, selector: &SemanticsSelector) -> Vec<RegionPopularity> {
        self.store.popular_regions(selector)
    }

    pub fn top_flows(&self, selector: &SemanticsSelector, limit: usize) -> Vec<Flow> {
        self.store.top_flows(selector, limit)
    }

    pub fn dwell_histogram(
        &self,
        selector: &SemanticsSelector,
        bucket: Duration,
    ) -> Vec<(Duration, usize)> {
        self.store.dwell_histogram(selector, bucket)
    }

    pub fn device_summaries(&self, selector: &SemanticsSelector) -> Vec<(DeviceId, DeviceSummary)> {
        self.store.device_summaries(selector)
    }

    pub fn semantics(&self, selector: &SemanticsSelector) -> Vec<MobilitySemantics> {
        self.store.semantics(selector)
    }

    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Cheap occupancy counters (device/semantics counts, shard count) —
    /// the health-endpoint view; see [`SemanticsStore::store_stats`].
    pub fn store_stats(&self) -> StoreHealth {
        self.store.store_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_annotate::MobilitySemantics;

    fn sem(
        device: &str,
        region: u32,
        name: &str,
        event: &str,
        start_s: i64,
        end_s: i64,
    ) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new(device),
            event: event.into(),
            region: RegionId(region),
            region_name: name.into(),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            inferred: false,
            display_point: None,
        }
    }

    /// The analytics sample from `trips-core` (two devices, Nike/Hall/
    /// Adidas), ingested under each listed shard count.
    fn sample(shards: usize) -> SemanticsStore {
        let store = SemanticsStore::with_shards(shards);
        store.ingest(
            &DeviceId::new("a.b.c.1"),
            &[
                sem("a.b.c.1", 1, "Nike", "stay", 0, 600),
                sem("a.b.c.1", 2, "Hall", "pass-by", 600, 630),
                sem("a.b.c.1", 3, "Adidas", "stay", 630, 900),
            ],
        );
        store.ingest(
            &DeviceId::new("a.b.c.2"),
            &[
                sem("a.b.c.2", 2, "Hall", "pass-by", 0, 60),
                sem("a.b.c.2", 1, "Nike", "stay", 60, 360),
                sem("a.b.c.2", 2, "Hall", "pass-by", 360, 400),
                sem("a.b.c.2", 1, "Nike", "stay", 400, 500),
            ],
        );
        store
    }

    #[test]
    fn popularity_ranks_by_stays_across_shard_counts() {
        for shards in [1, 4, 16] {
            let pops = sample(shards).popular_regions(&SemanticsSelector::all());
            assert_eq!(pops[0].region_name, "Nike", "shards={shards}");
            assert_eq!(pops[0].stays, 3);
            assert_eq!(pops[0].unique_stayers, 2);
            assert_eq!(pops[0].total_dwell, Duration::from_secs(1000));
            let hall = pops.iter().find(|p| p.region_name == "Hall").unwrap();
            assert_eq!((hall.stays, hall.pass_bys), (0, 3));
        }
    }

    #[test]
    fn shard_count_is_query_invariant() {
        let one = sample(1);
        let many = sample(16);
        let all = SemanticsSelector::all();
        assert_eq!(one.popular_regions(&all), many.popular_regions(&all));
        assert_eq!(one.top_flows(&all, 10), many.top_flows(&all, 10));
        assert_eq!(
            one.dwell_histogram(&all, Duration::from_mins(5)),
            many.dwell_histogram(&all, Duration::from_mins(5))
        );
        assert_eq!(one.device_summaries(&all), many.device_summaries(&all));
        assert_eq!(one.semantics(&all), many.semantics(&all));
    }

    #[test]
    fn incremental_ingest_equals_batch_ingest() {
        let batch = sample(4);
        // Same data, but device 1's semantics arrive in three calls.
        let inc = SemanticsStore::with_shards(4);
        let d1 = DeviceId::new("a.b.c.1");
        inc.ingest(&d1, &[sem("a.b.c.1", 1, "Nike", "stay", 0, 600)]);
        inc.ingest(&d1, &[sem("a.b.c.1", 2, "Hall", "pass-by", 600, 630)]);
        inc.ingest(&d1, &[sem("a.b.c.1", 3, "Adidas", "stay", 630, 900)]);
        inc.ingest(
            &DeviceId::new("a.b.c.2"),
            &[
                sem("a.b.c.2", 2, "Hall", "pass-by", 0, 60),
                sem("a.b.c.2", 1, "Nike", "stay", 60, 360),
                sem("a.b.c.2", 2, "Hall", "pass-by", 360, 400),
                sem("a.b.c.2", 1, "Nike", "stay", 400, 500),
            ],
        );
        let all = SemanticsSelector::all();
        assert_eq!(batch.popular_regions(&all), inc.popular_regions(&all));
        assert_eq!(
            batch.top_flows(&all, 10),
            inc.top_flows(&all, 10),
            "flows must count across ingest batch boundaries"
        );
        assert_eq!(batch.device_summaries(&all), inc.device_summaries(&all));
    }

    #[test]
    fn filtered_path_agrees_with_fast_path_on_match_all_shape() {
        // A selector that matches everything but is not `is_all` forces the
        // rescan path; results must agree with the aggregate path.
        let store = sample(8);
        let rescan = SemanticsSelector::all().with_device_pattern("*");
        let fast = SemanticsSelector::all();
        assert!(!rescan.is_all());
        assert_eq!(store.popular_regions(&fast), store.popular_regions(&rescan));
        assert_eq!(store.top_flows(&fast, 10), store.top_flows(&rescan, 10));
        assert_eq!(
            store.dwell_histogram(&fast, Duration::from_mins(5)),
            store.dwell_histogram(&rescan, Duration::from_mins(5))
        );
        assert_eq!(
            store.device_summaries(&fast),
            store.device_summaries(&rescan)
        );
    }

    #[test]
    fn filtered_flows_respect_session_boundaries() {
        let store = SemanticsStore::with_shards(4);
        let d = DeviceId::new("sessions");
        store.ingest(&d, &[sem("sessions", 1, "Nike", "stay", 0, 600)]);
        store.end_session(&d);
        store.ingest(&d, &[sem("sessions", 2, "Hall", "pass-by", 700, 730)]);
        let fast = SemanticsSelector::all();
        let rescan = SemanticsSelector::all().with_device_pattern("*");
        assert!(
            store.top_flows(&fast, 10).is_empty(),
            "aggregate path suppresses the cross-session flow"
        );
        assert_eq!(
            store.top_flows(&fast, 10),
            store.top_flows(&rescan, 10),
            "rescan path must suppress it too"
        );
    }

    #[test]
    fn device_pattern_filters() {
        let store = sample(8);
        let sel = SemanticsSelector::all().with_device_pattern("*.1");
        let sums = store.device_summaries(&sel);
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].0.as_str(), "a.b.c.1");
        let pops = store.popular_regions(&sel);
        let nike = pops.iter().find(|p| p.region_name == "Nike").unwrap();
        assert_eq!((nike.stays, nike.unique_stayers), (1, 1));
    }

    #[test]
    fn region_and_event_filters() {
        let store = sample(8);
        let stays = store.semantics(&SemanticsSelector::all().with_event("stay"));
        assert_eq!(stays.len(), 4);
        assert!(stays.iter().all(|s| s.event == "stay"));
        let nike = store.semantics(&SemanticsSelector::all().with_region(RegionId(1)));
        assert_eq!(nike.len(), 3);
    }

    #[test]
    fn temporal_range_is_half_open() {
        let store = sample(8);
        // Window [600 s, 900 s): device 1's Nike stay is [0, 600] — it
        // *ends* exactly at the window start, so treated half-open it has
        // zero overlap and is excluded; the Hall pass-by [600, 630] and
        // Adidas stay [630, 900] are in.
        let sel = SemanticsSelector::all().between(
            Timestamp::from_millis(600_000),
            Timestamp::from_millis(900_000),
        );
        let got = store.semantics(&sel);
        assert!(got.iter().any(|s| s.region_name == "Adidas"));
        assert!(got.iter().any(|s| s.region_name == "Hall"));
        assert!(
            !got.iter()
                .any(|s| s.region_name == "Nike" && s.end == Timestamp::from_millis(600_000)),
            "interval ending at the window start has zero overlap"
        );
        // Back-to-back windows partition time: every semantics lands in
        // exactly one of [0, 600) and [600, 1200) — no double counting.
        let w1 = SemanticsSelector::all()
            .between(Timestamp::from_millis(0), Timestamp::from_millis(600_000));
        let w2 = SemanticsSelector::all().between(
            Timestamp::from_millis(600_000),
            Timestamp::from_millis(1_200_000),
        );
        let (n1, n2) = (store.semantics(&w1).len(), store.semantics(&w2).len());
        assert_eq!(
            n1 + n2,
            store.semantics(&SemanticsSelector::all()).len(),
            "adjacent windows must partition the semantics"
        );
        assert!(n1 > 0 && n2 > 0);
        // A window strictly after every semantics matches nothing; so does
        // a zero-width window (nothing fits inside [t, t)).
        let late = SemanticsSelector::all().between(
            Timestamp::from_millis(10_000_000),
            Timestamp::from_millis(20_000_000),
        );
        assert!(store.semantics(&late).is_empty());
        let empty = SemanticsSelector::all().between(
            Timestamp::from_millis(600_000),
            Timestamp::from_millis(600_000),
        );
        assert!(store.semantics(&empty).is_empty());
        // A zero-duration semantics is the instant `start`: included by a
        // window starting there, excluded by one ending there.
        let store2 = SemanticsStore::with_shards(2);
        store2.ingest(
            &DeviceId::new("blip"),
            &[sem("blip", 9, "Kiosk", "pass-by", 600, 600)],
        );
        let before = SemanticsSelector::all()
            .between(Timestamp::from_millis(0), Timestamp::from_millis(600_000));
        let after = SemanticsSelector::all().between(
            Timestamp::from_millis(600_000),
            Timestamp::from_millis(1_200_000),
        );
        assert!(store2.semantics(&before).is_empty());
        assert_eq!(store2.semantics(&after).len(), 1);
    }

    #[test]
    fn query_request_dispatch() {
        let service = QueryService::new(Arc::new(sample(8)));
        let req = QueryRequest::new(SemanticsSelector::all(), Query::PopularRegions);
        match service.query(&req) {
            QueryResult::PopularRegions(p) => assert_eq!(p[0].region_name, "Nike"),
            other => panic!("wrong variant: {other:?}"),
        }
        match service.query(&QueryRequest::new(SemanticsSelector::all(), Query::Stats)) {
            QueryResult::Stats(s) => {
                assert_eq!((s.devices, s.semantics, s.regions), (2, 7, 3));
                assert_eq!(s.devices_per_shard.iter().sum::<usize>(), 2);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn query_service_store_stats_matches_full_stats() {
        let service = QueryService::new(Arc::new(sample(8)));
        let health = service.store_stats();
        let full = service.stats();
        assert_eq!(health.shards, full.shards);
        assert_eq!(health.devices, full.devices);
        assert_eq!(health.semantics, full.semantics);
        assert_eq!((health.devices, health.semantics), (2, 7));
    }

    /// The typed query surface must survive a JSON round-trip unchanged —
    /// the serving layer ships these exact shapes over the wire.
    #[test]
    fn query_types_roundtrip_through_json() {
        let store = sample(8);
        let requests = vec![
            QueryRequest::new(SemanticsSelector::all(), Query::PopularRegions),
            QueryRequest::new(
                SemanticsSelector::all().with_device_pattern("*.1"),
                Query::TopFlows { limit: 5 },
            ),
            QueryRequest::new(
                SemanticsSelector::all()
                    .with_region(RegionId(1))
                    .with_event("stay")
                    .between(Timestamp::from_millis(0), Timestamp::from_millis(900_000)),
                Query::DwellHistogram {
                    bucket: Duration::from_mins(5),
                },
            ),
            QueryRequest::new(SemanticsSelector::all(), Query::DeviceSummaries),
            QueryRequest::new(SemanticsSelector::all(), Query::Semantics),
            QueryRequest::new(SemanticsSelector::all(), Query::Stats),
        ];
        for req in requests {
            let json = serde_json::to_string(&req).unwrap();
            let back: QueryRequest = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "request roundtrip: {json}");
            let result = store.query(&req);
            let rjson = serde_json::to_string(&result).unwrap();
            let rback: QueryResult = serde_json::from_str(&rjson).unwrap();
            assert_eq!(rback, result, "result roundtrip for {req:?}");
        }
    }

    #[test]
    fn empty_store_queries() {
        let store = SemanticsStore::with_shards(4);
        let all = SemanticsSelector::all();
        assert!(store.popular_regions(&all).is_empty());
        assert!(store.top_flows(&all, 5).is_empty());
        assert!(store
            .dwell_histogram(&all, Duration::from_mins(1))
            .is_empty());
        assert!(store.device_summaries(&all).is_empty());
        assert!(store.semantics(&all).is_empty());
    }
}
