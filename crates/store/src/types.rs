//! Public analytics result types served by the store.
//!
//! These began life in `trips-core`'s `analytics` module (which now
//! re-exports them), so downstream code keeps its import paths while the
//! store serves the same shapes. All of them derive serde so the serving
//! layer (`trips-server`) can put them on the wire unchanged.

use serde::{Deserialize, Serialize};
use trips_data::Duration;
use trips_dsm::RegionId;

/// Popularity of one semantic region across all matching devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionPopularity {
    pub region: RegionId,
    pub region_name: String,
    /// Number of `stay` semantics in the region.
    pub stays: usize,
    /// Number of `pass-by` semantics in the region.
    pub pass_bys: usize,
    /// Distinct devices that stayed at least once.
    pub unique_stayers: usize,
    /// Total stay dwell time.
    pub total_dwell: Duration,
}

impl RegionPopularity {
    /// Conversion rate: stays per (stays + pass-bys) — how often walking
    /// past turns into a visit (the in-store-marketing question).
    pub fn conversion_rate(&self) -> f64 {
        let total = self.stays + self.pass_bys;
        if total == 0 {
            0.0
        } else {
            self.stays as f64 / total as f64
        }
    }
}

/// One directed flow between two regions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    pub from: RegionId,
    pub from_name: String,
    pub to: RegionId,
    pub to_name: String,
    pub count: usize,
}

/// Per-device visit summary: how many regions were visited and total time
/// accounted for (dashboard row for the analyst). `device` is the
/// anonymized id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceSummary {
    pub device: String,
    pub regions_visited: usize,
    pub stays: usize,
    pub accounted: Duration,
}

/// Store occupancy snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    pub shards: usize,
    pub devices: usize,
    pub semantics: usize,
    pub regions: usize,
    /// Device count per shard, in shard order (sharding balance check).
    pub devices_per_shard: Vec<usize>,
}

/// Minimal occupancy counters, cheap enough for a high-frequency health
/// endpoint: two integers per shard lock, no per-device or per-region scan
/// (see [`crate::SemanticsStore::store_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreHealth {
    pub shards: usize,
    pub devices: usize,
    pub semantics: usize,
}
