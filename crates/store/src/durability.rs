//! The durability layer: every store mutation appends a WAL record
//! *before* it is applied (and therefore before any caller can ack it),
//! snapshots are WAL **checkpoints** that retire older segments, and boot
//! is one recovery story — `snapshot load → replay segments newer than
//! the checkpoint`.
//!
//! ## WAL record payloads
//!
//! Each `trips-wal` record payload is one store op in a compact
//! little-endian binary layout (JSON through the serde value tree costs
//! ~4× the in-memory ingest itself; the hot path can't pay that):
//!
//! ```text
//! payload       := codec_version u8 (=1) | tag u8 | body
//! tag           := 0 Ingest | 1 Register | 2 EndSession | 3 Clear
//! Ingest body   := str(device) | count u32 | semantics*
//! Register/EndSession body := str(device)
//! Clear body    := (empty)
//! semantics     := dev_flag u8 (0 = same as op device, 1 = str follows)
//!                  [str(device)] | str(event) | region u32 |
//!                  str(region_name) | start i64 ms | end i64 ms |
//!                  inferred u8 | point_flag u8 [x f64 | y f64 | floor i16]
//! str(s)        := len u32 | utf-8 bytes
//! ```
//!
//! Floats travel as raw IEEE-754 bits, so display points round-trip
//! bit-exactly (JSON would reformat them). The codec version byte lets a
//! future build change the layout while still replaying old segments.
//!
//! Only *effective* mutations are logged: an empty ingest batch, a
//! re-registration, or an `end_session` with no open flow are no-ops in
//! memory and never reach the WAL, so replay is step-for-step equivalent
//! to the original execution.
//!
//! ## Ordering
//!
//! A writer appends while holding its device's **shard write lock**, so
//! for any device the WAL order equals the apply order; across devices
//! the store's final state is order-independent (state is a function of
//! the per-device sequences). [`SemanticsStore::checkpoint`] takes every
//! shard lock before rotating, so the snapshot is a point-in-time cut and
//! nothing lands in both the snapshot and a replayed segment.
//!
//! ## Crash safety of checkpoints
//!
//! The checkpoint sequence is stored *inside* the snapshot file and the
//! snapshot is published with a tmp-file + atomic-rename, so the
//! "snapshot contents" and "where replay resumes" can never disagree: a
//! crash before the rename leaves the old snapshot + full WAL, a crash
//! after it leaves the new snapshot + a WAL whose stale segments are
//! retired on the next boot.

use crate::snapshot::{self, SemanticsStoreError};
use crate::SemanticsStore;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, SystemTime};
use trips_annotate::MobilitySemantics;
use trips_data::DeviceId;
use trips_wal::{FsyncPolicy, Wal, WalConfig};

/// Where and how the store journals its mutations.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the WAL segments and the checkpoint snapshot.
    pub dir: PathBuf,
    /// When appended records reach stable storage (see
    /// [`trips_wal::FsyncPolicy`] for the trade-offs).
    pub fsync: FsyncPolicy,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// Defaults: `EveryN(64)` fsync, 8 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let defaults = WalConfig::default();
        DurabilityConfig {
            dir: dir.into(),
            fsync: defaults.fsync,
            segment_bytes: defaults.segment_bytes,
        }
    }

    /// The checkpoint snapshot lives alongside the segments.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.json")
    }

    /// The inner `trips-wal` config. `EveryN` is implemented at *this*
    /// layer by a background flusher (group commit — appenders never
    /// block on fsync), so the inner log runs `Never` and the flusher
    /// calls [`Wal::sync`]. `Always`/`Never` pass through.
    fn wal_config(&self) -> WalConfig {
        WalConfig {
            segment_bytes: self.segment_bytes,
            fsync: match self.fsync {
                FsyncPolicy::EveryN(_) => FsyncPolicy::Never,
                passthrough => passthrough,
            },
        }
    }
}

/// The `EveryN` group-commit flusher: appenders bump the lock-free
/// `dirty` counter (one relaxed `fetch_add` on the hot path) and poke
/// the condvar only when the counter crosses the threshold; this thread
/// syncs the WAL off the hot path. A 100 ms wait timeout bounds
/// staleness under trickle load (and absorbs any notify race — the
/// threshold poke deliberately skips the signal mutex). SIGKILL safety
/// is unaffected — every append already lands in the page cache via the
/// mapped segment; only an OS/power crash can lose the unsynced window.
struct Flusher {
    dirty: Arc<AtomicU64>,
    signal: Arc<(StdMutex<bool>, Condvar)>, // the bool is `stop`
    /// Group-commit fdatasyncs completed (these bypass the inner
    /// [`Wal`]'s own counter — they sync a cloned fd off the lock).
    synced: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    fn spawn(wal: Arc<Mutex<Wal>>) -> Flusher {
        let dirty = Arc::new(AtomicU64::new(0));
        let signal = Arc::new((StdMutex::new(false), Condvar::new()));
        let synced = Arc::new(AtomicU64::new(0));
        let (dirty2, signal2, synced2) = (dirty.clone(), signal.clone(), synced.clone());
        let thread = std::thread::Builder::new()
            .name("trips-wal-flusher".to_string())
            .spawn(move || {
                let (lock, cv) = &*signal2;
                loop {
                    let stop = {
                        let guard = lock.lock().expect("flusher signal lock");
                        if *guard {
                            true
                        } else {
                            let (guard, _) = cv
                                .wait_timeout(guard, Duration::from_millis(100))
                                .expect("flusher signal lock");
                            *guard
                        }
                    };
                    if dirty2.swap(0, Ordering::Relaxed) > 0 {
                        // Clone the fd under the wal lock, fdatasync
                        // outside it: appenders keep appending while the
                        // sync runs.
                        let handle = wal.lock().sync_handle();
                        if let Ok(f) = handle {
                            if f.sync_data().is_ok() {
                                synced2.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    if stop {
                        return;
                    }
                }
            })
            .expect("spawn wal flusher");
        Flusher {
            dirty,
            signal,
            synced,
            thread: Some(thread),
        }
    }

    #[inline]
    fn note_append(&self, every: u32) {
        let appended = self.dirty.fetch_add(1, Ordering::Relaxed) + 1;
        if appended >= u64::from(every) && appended % u64::from(every) == 0 {
            // Mutex-free notify: if the flusher isn't waiting yet it
            // will see the counter on its next timeout tick.
            self.signal.1.notify_one();
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        let (lock, cv) = &*self.signal;
        if let Ok(mut stop) = lock.lock() {
            *stop = true;
            cv.notify_one();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One journaled store mutation (owned form, used on replay).
#[derive(Debug)]
pub(crate) enum WalOp {
    Ingest {
        device: String,
        semantics: Vec<MobilitySemantics>,
    },
    Register {
        device: String,
    },
    EndSession {
        device: String,
    },
    Clear,
}

/// Borrowed mirror of [`WalOp`] so the hot append path encodes without
/// cloning the batch.
pub(crate) enum WalOpRef<'a> {
    Ingest {
        device: &'a str,
        semantics: &'a [MobilitySemantics],
    },
    Register {
        device: &'a str,
    },
    EndSession {
        device: &'a str,
    },
    Clear,
}

/// The binary payload codec (layout in the module docs).
mod codec {
    use super::{WalOp, WalOpRef};
    use trips_annotate::MobilitySemantics;
    use trips_data::{DeviceId, Timestamp};
    use trips_dsm::RegionId;
    use trips_geom::IndoorPoint;

    pub(super) const CODEC_VERSION: u8 = 1;

    /// Exact encoded size of `op` — computed up front so the append path
    /// can reserve its slot in the WAL segment and encode straight into
    /// it (zero intermediate buffers).
    pub(super) fn encoded_len(op: &WalOpRef<'_>) -> usize {
        match op {
            WalOpRef::Ingest { device, semantics } => {
                let mut n = 2 + 4 + device.len() + 4;
                for s in *semantics {
                    n +=
                        1 + if s.device.as_str() == *device {
                            0
                        } else {
                            4 + s.device.as_str().len()
                        } + 4
                            + s.event.len()
                            + 4
                            + 4
                            + s.region_name.len()
                            + 8
                            + 8
                            + 1
                            + 1
                            + if s.display_point.is_some() { 18 } else { 0 };
                }
                n
            }
            WalOpRef::Register { device } | WalOpRef::EndSession { device } => 2 + 4 + device.len(),
            WalOpRef::Clear => 2,
        }
    }

    /// Sequential writer over a pre-sized slot.
    struct Sink<'a> {
        buf: &'a mut [u8],
        pos: usize,
    }

    impl Sink<'_> {
        #[inline]
        fn put(&mut self, bytes: &[u8]) {
            let end = self.pos + bytes.len();
            self.buf[self.pos..end].copy_from_slice(bytes);
            self.pos = end;
        }

        #[inline]
        fn put_u8(&mut self, b: u8) {
            self.buf[self.pos] = b;
            self.pos += 1;
        }

        #[inline]
        fn put_str(&mut self, s: &str) {
            self.put(&(s.len() as u32).to_le_bytes());
            self.put(s.as_bytes());
        }
    }

    /// Encodes `op` into `buf`, which must be exactly
    /// [`encoded_len`]`(op)` bytes.
    pub(super) fn encode_to(buf: &mut [u8], op: &WalOpRef<'_>) {
        let mut w = Sink { buf, pos: 0 };
        w.put_u8(CODEC_VERSION);
        match op {
            WalOpRef::Ingest { device, semantics } => {
                w.put_u8(0);
                w.put_str(device);
                w.put(&(semantics.len() as u32).to_le_bytes());
                for s in *semantics {
                    if s.device.as_str() == *device {
                        w.put_u8(0);
                    } else {
                        w.put_u8(1);
                        w.put_str(s.device.as_str());
                    }
                    w.put_str(&s.event);
                    w.put(&s.region.0.to_le_bytes());
                    w.put_str(&s.region_name);
                    w.put(&s.start.as_millis().to_le_bytes());
                    w.put(&s.end.as_millis().to_le_bytes());
                    w.put_u8(u8::from(s.inferred));
                    match &s.display_point {
                        None => w.put_u8(0),
                        Some(p) => {
                            w.put_u8(1);
                            w.put(&p.xy.x.to_bits().to_le_bytes());
                            w.put(&p.xy.y.to_bits().to_le_bytes());
                            w.put(&p.floor.to_le_bytes());
                        }
                    }
                }
            }
            WalOpRef::Register { device } => {
                w.put_u8(1);
                w.put_str(device);
            }
            WalOpRef::EndSession { device } => {
                w.put_u8(2);
                w.put_str(device);
            }
            WalOpRef::Clear => w.put_u8(3),
        }
        debug_assert_eq!(w.pos, w.buf.len(), "encoded_len must match encode_to");
    }

    #[cfg(test)]
    pub(super) fn encode(op: &WalOpRef<'_>) -> Vec<u8> {
        let mut buf = vec![0u8; encoded_len(op)];
        encode_to(&mut buf, op);
        buf
    }

    /// A streaming reader over a payload; every accessor bounds-checks.
    struct Reader<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&e| e <= self.data.len())
                .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
            let out = &self.data[self.pos..end];
            self.pos = end;
            Ok(out)
        }

        fn u8(&mut self) -> Result<u8, String> {
            Ok(self.take(1)?[0])
        }

        fn u32(&mut self) -> Result<u32, String> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        fn i64(&mut self) -> Result<i64, String> {
            Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        fn f64(&mut self) -> Result<f64, String> {
            Ok(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            )))
        }

        fn i16(&mut self) -> Result<i16, String> {
            Ok(i16::from_le_bytes(self.take(2)?.try_into().unwrap()))
        }

        fn str(&mut self) -> Result<&'a str, String> {
            let len = self.u32()? as usize;
            std::str::from_utf8(self.take(len)?).map_err(|e| format!("non-utf8 string: {e}"))
        }

        fn done(&self) -> bool {
            self.pos == self.data.len()
        }
    }

    pub(super) fn decode(payload: &[u8]) -> Result<WalOp, String> {
        let mut r = Reader {
            data: payload,
            pos: 0,
        };
        let version = r.u8()?;
        if version != CODEC_VERSION {
            return Err(format!(
                "wal payload codec version {version} (this build reads {CODEC_VERSION})"
            ));
        }
        let op = match r.u8()? {
            0 => {
                let device = r.str()?.to_string();
                let count = r.u32()? as usize;
                let mut semantics = Vec::with_capacity(count.min(64 * 1024));
                for _ in 0..count {
                    let sem_device = match r.u8()? {
                        0 => device.clone(),
                        1 => r.str()?.to_string(),
                        other => return Err(format!("bad device flag {other}")),
                    };
                    let event = r.str()?.to_string();
                    let region = RegionId(r.u32()?);
                    let region_name = r.str()?.to_string();
                    let start = Timestamp::from_millis(r.i64()?);
                    let end = Timestamp::from_millis(r.i64()?);
                    let inferred = match r.u8()? {
                        0 => false,
                        1 => true,
                        other => return Err(format!("bad inferred flag {other}")),
                    };
                    let display_point = match r.u8()? {
                        0 => None,
                        1 => {
                            let x = r.f64()?;
                            let y = r.f64()?;
                            let floor = r.i16()?;
                            Some(IndoorPoint::new(x, y, floor))
                        }
                        other => return Err(format!("bad display-point flag {other}")),
                    };
                    semantics.push(MobilitySemantics {
                        device: DeviceId::new(&sem_device),
                        event,
                        region,
                        region_name,
                        start,
                        end,
                        inferred,
                        display_point,
                    });
                }
                WalOp::Ingest { device, semantics }
            }
            1 => WalOp::Register {
                device: r.str()?.to_string(),
            },
            2 => WalOp::EndSession {
                device: r.str()?.to_string(),
            },
            3 => WalOp::Clear,
            other => return Err(format!("unknown wal op tag {other}")),
        };
        if !r.done() {
            return Err(format!(
                "trailing bytes after op ({} of {})",
                r.pos,
                r.data.len()
            ));
        }
        Ok(op)
    }
}

/// Live WAL occupancy, for health/metrics endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalStats {
    /// Live segment files.
    pub segments: usize,
    /// Total bytes across live segments.
    pub bytes: u64,
    /// Records appended (or replayed) since the last checkpoint — the
    /// replay debt a crash right now would incur.
    pub records_since_checkpoint: u64,
    /// Milliseconds since the last checkpoint snapshot was published
    /// (`None` if no checkpoint has ever been taken).
    pub last_checkpoint_age_ms: Option<u64>,
    /// `fdatasync`s issued since open: fsync-policy syncs, segment
    /// seals, and group-commit flusher syncs combined. `#[serde(default)]`
    /// so reports from builds predating this field still parse.
    #[serde(default)]
    pub fsyncs: u64,
    /// Segment rotations since open. `#[serde(default)]` — see `fsyncs`.
    #[serde(default)]
    pub rotations: u64,
}

/// What [`SemanticsStore::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a checkpoint snapshot was loaded.
    pub snapshot_loaded: bool,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Whether a torn tail (crash mid-append) was truncated away.
    pub torn_tail_truncated: bool,
    /// Live segments after recovery.
    pub segments: usize,
    /// Segment sequence replay resumed from.
    pub checkpoint_seq: u64,
}

/// What [`SemanticsStore::checkpoint`] wrote and retired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The published snapshot file.
    pub snapshot_path: PathBuf,
    /// Segments deleted by compaction.
    pub retired_segments: usize,
    pub devices: usize,
    pub semantics: usize,
}

/// The store's handle on its WAL. Writers append under their shard lock;
/// the wal mutex is always acquired *after* a shard lock (checkpoint
/// takes every shard lock first), so the lock order is globally
/// consistent.
pub(crate) struct Durability {
    wal: Arc<Mutex<Wal>>,
    /// Group-commit flusher; present only under `FsyncPolicy::EveryN`.
    flusher: Option<Flusher>,
    fsync: FsyncPolicy,
    snapshot_path: PathBuf,
    records_since_checkpoint: AtomicU64,
    last_checkpoint: Mutex<Option<SystemTime>>,
}

impl Durability {
    fn new(wal: Wal, config: &DurabilityConfig, replayed: u64, mtime: Option<SystemTime>) -> Self {
        let wal = Arc::new(Mutex::new(wal));
        let flusher = match config.fsync {
            FsyncPolicy::EveryN(_) => Some(Flusher::spawn(wal.clone())),
            _ => None,
        };
        Durability {
            wal,
            flusher,
            fsync: config.fsync,
            snapshot_path: config.snapshot_path(),
            records_since_checkpoint: AtomicU64::new(replayed),
            last_checkpoint: Mutex::new(mtime),
        }
    }

    /// Encodes and appends one op; **aborts the process** on a WAL I/O
    /// failure. A store that promised "acked ⇒ durable" must not keep
    /// acking after its log is gone (disk full, volume yanked) —
    /// crash-only: die, get restarted, recover from the WAL. A panic
    /// would be weaker, not stronger: it kills only the worker thread
    /// that hit it, leaving a serving process that accepts connections
    /// but can never answer — wedged instead of restartable.
    pub(crate) fn append(&self, op: &WalOpRef<'_>) {
        let len = codec::encoded_len(op);
        let mut wal = self.wal.lock();
        if let Err(e) = wal.append_with(len, |slot| codec::encode_to(slot, op)) {
            eprintln!(
                "FATAL: WAL append to {} failed: {e} — refusing to ack a \
                 non-durable write; aborting so a supervisor can restart \
                 into recovery",
                wal.dir().display()
            );
            std::process::abort();
        }
        drop(wal);
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        if let (Some(flusher), FsyncPolicy::EveryN(n)) = (&self.flusher, self.fsync) {
            flusher.note_append(n.max(1));
        }
    }

    pub(crate) fn stats(&self) -> WalStats {
        let (segments, bytes, wal_syncs, rotations) = {
            let wal = self.wal.lock();
            (
                wal.segment_count(),
                wal.total_bytes(),
                wal.fsyncs(),
                wal.rotations(),
            )
        };
        let flusher_syncs = self
            .flusher
            .as_ref()
            .map_or(0, |f| f.synced.load(Ordering::Relaxed));
        let last_checkpoint_age_ms = self.last_checkpoint.lock().and_then(|t| {
            SystemTime::now()
                .duration_since(t)
                .ok()
                .map(|d| d.as_millis() as u64)
        });
        WalStats {
            segments,
            bytes,
            records_since_checkpoint: self.records_since_checkpoint.load(Ordering::Relaxed),
            last_checkpoint_age_ms,
            fsyncs: wal_syncs + flusher_syncs,
            rotations,
        }
    }

    pub(crate) fn sync(&self) -> std::io::Result<()> {
        self.wal.lock().sync()
    }
}

impl SemanticsStore {
    /// Boots a store from its durability directory: load the checkpoint
    /// snapshot if one exists, replay every WAL record in segments at or
    /// after the checkpoint sequence, truncate any torn tail, retire
    /// segments the checkpoint already covers, and attach the WAL for
    /// appending. `shards` seeds the shard count when there is no
    /// snapshot to dictate one (`0` = [`crate::default_shard_count`]).
    ///
    /// The recovered store is *equivalent* to the never-crashed store:
    /// same devices, same per-device semantics and session boundaries,
    /// same aggregates (rebuilt, as with snapshot load), pinned by tests
    /// down to byte-identical re-persisted snapshots.
    pub fn recover(
        config: &DurabilityConfig,
        shards: usize,
    ) -> Result<(SemanticsStore, RecoveryReport), SemanticsStoreError> {
        // Open first: validates the tail and truncates a torn final
        // frame, so the replay below reads a clean log.
        let wal = Wal::open(&config.dir, config.wal_config())?;
        let torn_tail_truncated = wal.truncated_tail().is_some();

        let snapshot_path = config.snapshot_path();
        let (mut store, checkpoint_seq, snapshot_loaded, snapshot_mtime) = if snapshot_path.exists()
        {
            let file = snapshot::read_snapshot(&snapshot_path)?;
            let mtime = std::fs::metadata(&snapshot_path)
                .and_then(|m| m.modified())
                .ok();
            let seq = file.wal_seq.unwrap_or(0);
            (snapshot::store_from_file(&file), seq, true, mtime)
        } else {
            let store = if shards > 0 {
                SemanticsStore::with_shards(shards)
            } else {
                SemanticsStore::new()
            };
            (store, 0, false, None)
        };

        // Replay. The store has no durability handle yet, so applying
        // through the public methods cannot re-append.
        let mut replay = Wal::replay_from(&config.dir, checkpoint_seq)?;
        let mut replayed_records = 0u64;
        for entry in replay.by_ref() {
            let entry = entry?;
            let op = codec::decode(&entry.payload).map_err(|e| {
                SemanticsStoreError::Serde(format!(
                    "wal record in segment {} does not decode: {e}",
                    entry.segment
                ))
            })?;
            store.apply(op);
            replayed_records += 1;
        }

        // A crash between snapshot-rename and retirement leaves covered
        // segments behind; finish the job.
        let mut wal = wal;
        wal.retire_below(checkpoint_seq)?;
        let segments = wal.segment_count();

        store.durability = Some(Durability::new(
            wal,
            config,
            replayed_records,
            snapshot_mtime,
        ));
        Ok((
            store,
            RecoveryReport {
                snapshot_loaded,
                replayed_records,
                torn_tail_truncated,
                segments,
                checkpoint_seq,
            },
        ))
    }

    /// Applies a replayed op without journaling (recovery path; the op is
    /// already in the log).
    fn apply(&self, op: WalOp) {
        match op {
            WalOp::Ingest { device, semantics } => {
                self.ingest(&DeviceId::new(&device), &semantics);
            }
            WalOp::Register { device } => self.register_device(&DeviceId::new(&device)),
            WalOp::EndSession { device } => self.end_session(&DeviceId::new(&device)),
            WalOp::Clear => self.clear(),
        }
    }

    /// Whether this store journals to a WAL.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Live WAL occupancy (`None` for a non-durable store).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durability.as_ref().map(Durability::stats)
    }

    /// Forces any buffered WAL appends to stable storage now (a no-op
    /// for a non-durable store). Serving drains call this so the tail of
    /// an `EveryN` window survives a graceful shutdown.
    pub fn sync_wal(&self) -> std::io::Result<()> {
        match &self.durability {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Checkpoints a durable store: under every shard lock (a point-in-
    /// time cut), rotate the WAL, snapshot the full store state tagged
    /// with the new segment sequence, publish it atomically, then retire
    /// all older segments. Recovery after this replays only segments at
    /// or after the rotation point.
    ///
    /// Errors with [`SemanticsStoreError::NotDurable`] on a store that
    /// has no WAL — use [`SemanticsStore::persist`] there.
    pub fn checkpoint(&self) -> Result<CheckpointReport, SemanticsStoreError> {
        let Some(d) = &self.durability else {
            return Err(SemanticsStoreError::NotDurable);
        };
        // Shard locks first, wal lock second — same global order as the
        // append path, so writers and checkpoints cannot deadlock.
        let guards: Vec<_> = self.shards().iter().map(|s| s.write()).collect();
        let seq = d.wal.lock().rotate()?;
        let file =
            snapshot::build_snapshot(guards.iter().map(|g| &**g), self.shard_count(), Some(seq));
        let (devices, semantics) = (
            file.devices.len(),
            file.devices
                .iter()
                .flat_map(|(_, sessions)| sessions.iter().map(Vec::len))
                .sum(),
        );
        // Replay debt covered by this checkpoint = the appends that
        // happened before the cut; captured under the guards so appends
        // racing the disk write below stay counted.
        let covered = d.records_since_checkpoint.load(Ordering::Relaxed);
        // The point-in-time cut only needs to cover the rotation and the
        // in-memory copy: release writers before the expensive disk work
        // (serialize + write + fsync + rename). Mutations landing from
        // here on go to segments >= seq and replay on top of the
        // snapshot — the same story as a crash between rename and
        // retirement.
        drop(guards);
        snapshot::write_atomic(&d.snapshot_path, &file)?;

        let retired_segments = d.wal.lock().retire_below(seq)?;
        d.records_since_checkpoint
            .fetch_sub(covered, Ordering::Relaxed);
        *d.last_checkpoint.lock() = Some(SystemTime::now());
        Ok(CheckpointReport {
            snapshot_path: d.snapshot_path.clone(),
            retired_segments,
            devices,
            semantics,
        })
    }
}

/// The single boot path for every serving configuration:
///
/// * `durability` set — full recovery (checkpoint snapshot + WAL replay);
///   `snapshot` must be `None` (the checkpoint snapshot lives inside the
///   durability directory).
/// * only `snapshot` set — one-shot load of a non-durable snapshot file
///   (changes after boot are not journaled).
/// * neither — an empty store with `shards` shards (`0` = default).
pub fn boot_store(
    durability: Option<&DurabilityConfig>,
    snapshot: Option<&Path>,
    shards: usize,
) -> Result<(SemanticsStore, Option<RecoveryReport>), SemanticsStoreError> {
    match (durability, snapshot) {
        (Some(_), Some(_)) => Err(SemanticsStoreError::Config(
            "configure either a durability dir or a boot snapshot, not both \
             (a durable store's snapshot is its checkpoint)"
                .to_string(),
        )),
        (Some(config), None) => {
            let (store, report) = SemanticsStore::recover(config, shards)?;
            Ok((store, Some(report)))
        }
        (None, Some(path)) => Ok((SemanticsStore::load(path)?, None)),
        (None, None) => {
            let store = if shards > 0 {
                SemanticsStore::with_shards(shards)
            } else {
                SemanticsStore::new()
            };
            Ok((store, None))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::Timestamp;
    use trips_dsm::RegionId;
    use trips_geom::IndoorPoint;

    fn sem(device: &str, with_point: bool) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new(device),
            event: "stay".into(),
            region: RegionId(7),
            region_name: "Nike (0F-0)".into(),
            start: Timestamp::from_millis(36_000_123),
            end: Timestamp::from_millis(36_600_456),
            inferred: !with_point,
            display_point: with_point.then(|| IndoorPoint::new(6.5000001, -4.25, -2)),
        }
    }

    /// The binary codec must reproduce every field bit-exactly —
    /// including float display points (raw IEEE-754 bits) and semantics
    /// whose device differs from the op device.
    #[test]
    fn codec_roundtrips_every_op_shape() {
        let own = sem("dev-a", true);
        let foreign = sem("dev-b", false);
        let ops = [
            WalOpRef::Ingest {
                device: "dev-a",
                semantics: std::slice::from_ref(&own),
            },
            WalOpRef::Ingest {
                device: "dev-a",
                semantics: &[own.clone(), foreign.clone()],
            },
            WalOpRef::Ingest {
                device: "dev-a",
                semantics: &[],
            },
            WalOpRef::Register { device: "dev-α" }, // non-ASCII survives
            WalOpRef::EndSession { device: "" },
            WalOpRef::Clear,
        ];
        for op in &ops {
            let bytes = codec::encode(op);
            assert_eq!(bytes.len(), codec::encoded_len(op), "exact sizing");
            let back = codec::decode(&bytes).expect("decode");
            match (op, &back) {
                (
                    WalOpRef::Ingest { device, semantics },
                    WalOp::Ingest {
                        device: d,
                        semantics: s,
                    },
                ) => {
                    assert_eq!(d, device);
                    assert_eq!(s.as_slice(), *semantics, "bit-exact semantics roundtrip");
                }
                (WalOpRef::Register { device }, WalOp::Register { device: d })
                | (WalOpRef::EndSession { device }, WalOp::EndSession { device: d }) => {
                    assert_eq!(d, device);
                }
                (WalOpRef::Clear, WalOp::Clear) => {}
                (_, other) => panic!("variant mismatch: {other:?}"),
            }
        }
    }

    /// Truncations, flag garbage, trailing bytes, and future codec
    /// versions must all fail typed — never panic, never misparse.
    #[test]
    fn codec_rejects_malformed_payloads() {
        let bytes = codec::encode(&WalOpRef::Ingest {
            device: "dev-a",
            semantics: &[sem("dev-a", true)],
        });
        for cut in 0..bytes.len() {
            assert!(codec::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(codec::decode(&trailing).is_err(), "trailing byte");
        let mut future = bytes.clone();
        future[0] = 99;
        let err = codec::decode(&future).unwrap_err();
        assert!(err.contains("codec version 99"), "{err}");
        let mut bad_tag = bytes;
        bad_tag[1] = 42;
        assert!(codec::decode(&bad_tag).is_err(), "unknown tag");
    }
}
