//! Snapshot/restore: the versioned JSON format documented in the crate
//! docs. Only the raw per-device semantics travel; aggregates are rebuilt
//! on load so a snapshot can never disagree with its aggregates.
//!
//! Writes are **atomic**: the document goes to a `<path>.tmp` sibling
//! which is fsynced and renamed over the target, so a crash mid-write can
//! never leave a torn snapshot — readers see the old file or the new one,
//! nothing in between. The version field is checked *before* the body is
//! parsed, so a snapshot from a newer build (whose shape this build may
//! not even recognize) fails with the typed
//! [`SemanticsStoreError::Version`] rather than a shape error or a silent
//! misparse.

use crate::shard::Shard;
use crate::SemanticsStore;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::Path;
use trips_annotate::MobilitySemantics;
use trips_data::DeviceId;

pub(crate) const SNAPSHOT_VERSION: u32 = 1;

/// Errors raised by snapshot persist/load and durability
/// recovery/checkpoint.
#[derive(Debug)]
pub enum SemanticsStoreError {
    Io(std::io::Error),
    Serde(String),
    /// The file's `version` field is not one this build understands
    /// (typically a snapshot written by a newer build).
    Version(u32),
    /// The write-ahead log is unreadable (mid-log corruption, bad
    /// segment) or failed an I/O operation.
    Wal(trips_wal::WalError),
    /// A durability-only operation (checkpoint) on a store with no WAL.
    NotDurable,
    /// Contradictory boot configuration.
    Config(String),
}

impl std::fmt::Display for SemanticsStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemanticsStoreError::Io(e) => write!(f, "semantics store I/O error: {e}"),
            SemanticsStoreError::Serde(e) => {
                write!(f, "semantics store serialization error: {e}")
            }
            SemanticsStoreError::Version(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SemanticsStoreError::Wal(e) => write!(f, "semantics store durability error: {e}"),
            SemanticsStoreError::NotDurable => {
                write!(f, "store has no durability layer (checkpoint needs a WAL)")
            }
            SemanticsStoreError::Config(msg) => write!(f, "store configuration error: {msg}"),
        }
    }
}

impl std::error::Error for SemanticsStoreError {}

impl From<std::io::Error> for SemanticsStoreError {
    fn from(e: std::io::Error) -> Self {
        SemanticsStoreError::Io(e)
    }
}

impl From<trips_wal::WalError> for SemanticsStoreError {
    fn from(e: trips_wal::WalError) -> Self {
        SemanticsStoreError::Wal(e)
    }
}

#[derive(Serialize, Deserialize)]
pub(crate) struct SnapshotFile {
    pub(crate) version: u32,
    pub(crate) shards: usize,
    /// For a durability **checkpoint**: the WAL segment sequence recovery
    /// resumes replay from — everything in older segments is already in
    /// this snapshot. `None` for plain [`SemanticsStore::persist`]
    /// snapshots (and absent in pre-durability files, which deserialize
    /// as `None`). Living inside the snapshot document, it is published
    /// by the same atomic rename as the data it describes.
    pub(crate) wal_seq: Option<u64>,
    /// Per device: its semantics split into **sessions** at the
    /// `end_session` boundaries, so flow suppression across independent
    /// sequences survives a persist/load roundtrip (a trailing empty
    /// session encodes a boundary after the final semantics).
    pub(crate) devices: Vec<(String, Vec<Vec<MobilitySemantics>>)>,
}

/// Builds the snapshot document from already-locked shards (the
/// checkpoint path holds write guards; `persist` passes read guards).
pub(crate) fn build_snapshot<'a>(
    shards: impl Iterator<Item = &'a Shard>,
    shard_count: usize,
    wal_seq: Option<u64>,
) -> SnapshotFile {
    let mut devices: Vec<(String, Vec<Vec<MobilitySemantics>>)> = Vec::new();
    for shard in shards {
        for (device, entry) in &shard.devices {
            let mut sessions = Vec::with_capacity(entry.breaks.len() + 1);
            let mut start = 0usize;
            for &b in &entry.breaks {
                sessions.push(entry.semantics[start..b].to_vec());
                start = b;
            }
            sessions.push(entry.semantics[start..].to_vec());
            devices.push((device.as_str().to_string(), sessions));
        }
    }
    devices.sort_by(|a, b| a.0.cmp(&b.0));
    SnapshotFile {
        version: SNAPSHOT_VERSION,
        shards: shard_count,
        wal_seq,
        devices,
    }
}

/// Serializes and publishes a snapshot atomically: write `<path>.tmp`,
/// fsync it, rename over `path`, fsync the directory (best-effort). A
/// pre-existing stale `.tmp` (from a crashed earlier attempt) is simply
/// overwritten.
pub(crate) fn write_atomic(path: &Path, file: &SnapshotFile) -> Result<(), SemanticsStoreError> {
    let json =
        serde_json::to_string(file).map_err(|e| SemanticsStoreError::Serde(e.to_string()))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and validates a snapshot file. The `version` field is inspected
/// on the raw JSON value *before* the typed parse, so files from newer
/// builds fail with [`SemanticsStoreError::Version`] even when their
/// shape has diverged.
pub(crate) fn read_snapshot(path: &Path) -> Result<SnapshotFile, SemanticsStoreError> {
    let json = fs::read_to_string(path)?;
    let value: serde::Value =
        serde_json::from_str(&json).map_err(|e| SemanticsStoreError::Serde(e.to_string()))?;
    let version = value
        .as_object()
        .and_then(|obj| obj.iter().find(|(k, _)| k == "version"))
        .and_then(|(_, v)| v.as_i64())
        .ok_or_else(|| {
            SemanticsStoreError::Serde("snapshot has no integer `version` field".to_string())
        })?;
    if version != i64::from(SNAPSHOT_VERSION) {
        return Err(SemanticsStoreError::Version(
            u32::try_from(version).unwrap_or(u32::MAX),
        ));
    }
    serde::Deserialize::from_value(&value).map_err(|e| SemanticsStoreError::Serde(e.to_string()))
}

/// Rebuilds a store (and every aggregate) from a snapshot document by
/// re-ingesting each session.
pub(crate) fn store_from_file(file: &SnapshotFile) -> SemanticsStore {
    let store = SemanticsStore::with_shards(file.shards);
    for (device, sessions) in &file.devices {
        let device = DeviceId::new(device);
        store.register_device(&device); // keep devices even if fully empty
        for (i, session) in sessions.iter().enumerate() {
            store.ingest(&device, session);
            if i + 1 < sessions.len() {
                store.end_session(&device);
            }
        }
    }
    store
}

impl SemanticsStore {
    /// Writes a version-1 snapshot of the store to `path`, atomically
    /// (tmp file + rename — a crash mid-persist leaves the previous
    /// file, never a torn one).
    pub fn persist(&self, path: impl AsRef<Path>) -> Result<(), SemanticsStoreError> {
        let guards: Vec<_> = self.shards().iter().map(|s| s.read()).collect();
        let file = build_snapshot(guards.iter().map(|g| &**g), self.shard_count(), None);
        drop(guards);
        write_atomic(path.as_ref(), &file)
    }

    /// Restores a store from a snapshot written by [`SemanticsStore::persist`],
    /// recreating the recorded shard count, session boundaries, and every
    /// aggregate. The result is **not** durable — use
    /// [`SemanticsStore::recover`] to boot a WAL-backed store.
    pub fn load(path: impl AsRef<Path>) -> Result<SemanticsStore, SemanticsStoreError> {
        Ok(store_from_file(&read_snapshot(path.as_ref())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SemanticsSelector;
    use trips_data::{Duration, Timestamp};
    use trips_dsm::RegionId;

    fn sem(device: &str, region: u32, event: &str, start_s: i64, end_s: i64) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new(device),
            event: event.into(),
            region: RegionId(region),
            region_name: format!("R{region}"),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            inferred: false,
            display_point: None,
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("trips-semstore-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        let store = SemanticsStore::with_shards(8);
        for d in 0..10 {
            let id = format!("dev-{d}");
            let sems: Vec<MobilitySemantics> = (0..5)
                .map(|i| {
                    sem(
                        &id,
                        (d + i) % 4,
                        if i % 2 == 0 { "stay" } else { "pass-by" },
                        i as i64 * 100,
                        i as i64 * 100 + 60,
                    )
                })
                .collect();
            store.ingest(&DeviceId::new(&id), &sems);
        }
        store.register_device(&DeviceId::new("silent"));

        let path = temp_path("roundtrip");
        store.persist(&path).unwrap();
        let back = SemanticsStore::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(back.shard_count(), store.shard_count());
        assert_eq!(
            back.device_count(),
            store.device_count(),
            "empty device kept"
        );
        let all = SemanticsSelector::all();
        assert_eq!(back.popular_regions(&all), store.popular_regions(&all));
        assert_eq!(back.top_flows(&all, 20), store.top_flows(&all, 20));
        assert_eq!(
            back.dwell_histogram(&all, Duration::from_mins(1)),
            store.dwell_histogram(&all, Duration::from_mins(1))
        );
        assert_eq!(back.device_summaries(&all), store.device_summaries(&all));
        assert_eq!(back.semantics(&all), store.semantics(&all));
    }

    #[test]
    fn session_boundaries_survive_roundtrip() {
        let store = SemanticsStore::with_shards(4);
        let d = DeviceId::new("two-sessions");
        store.ingest(&d, &[sem("two-sessions", 1, "stay", 0, 600)]);
        store.end_session(&d);
        store.ingest(&d, &[sem("two-sessions", 2, "pass-by", 700, 730)]);
        let c = DeviceId::new("continuous");
        store.ingest(&c, &[sem("continuous", 1, "stay", 0, 600)]);
        store.ingest(&c, &[sem("continuous", 2, "pass-by", 700, 730)]);

        let all = SemanticsSelector::all();
        assert_eq!(
            store.top_flows(&all, 10).len(),
            1,
            "only the continuous flow"
        );

        let path = temp_path("sessions");
        store.persist(&path).unwrap();
        let back = SemanticsStore::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            back.top_flows(&all, 10),
            store.top_flows(&all, 10),
            "suppressed cross-session flow must not reappear after load"
        );
        assert_eq!(back.semantics(&all), store.semantics(&all));
    }

    /// A serving restart path may snapshot before any ingest arrived: an
    /// empty store must persist and come back empty (same shard count, no
    /// devices, every query empty) rather than erroring.
    #[test]
    fn empty_store_roundtrip() {
        let store = SemanticsStore::with_shards(8);
        let path = temp_path("empty");
        store.persist(&path).unwrap();
        let back = SemanticsStore::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.shard_count(), 8);
        assert!(back.is_empty());
        assert_eq!(back.semantics_count(), 0);
        let all = SemanticsSelector::all();
        assert!(back.popular_regions(&all).is_empty());
        assert!(back.top_flows(&all, 10).is_empty());
        assert!(back.semantics(&all).is_empty());
    }

    #[test]
    fn unknown_version_rejected() {
        let path = temp_path("version");
        std::fs::write(&path, r#"{"version":99,"shards":4,"devices":[]}"#).unwrap();
        let err = SemanticsStore::load(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, SemanticsStoreError::Version(99)), "{err}");
    }

    /// Forward compatibility: a snapshot from a **newer** build — larger
    /// version, fields this build has never heard of, a reshaped
    /// `devices` — must fail with the typed `Version` error, not a shape
    /// error and certainly not a silent misparse into an empty store.
    #[test]
    fn newer_snapshot_version_is_a_typed_error_even_with_unknown_shape() {
        let path = temp_path("future");
        std::fs::write(
            &path,
            format!(
                r#"{{"version":{},"shards":4,"codec":"columnar-zstd","devices":{{"packed":"AAAA"}}}}"#,
                SNAPSHOT_VERSION + 1
            ),
        )
        .unwrap();
        let err = SemanticsStore::load(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        match err {
            SemanticsStoreError::Version(v) => assert_eq!(v, SNAPSHOT_VERSION + 1),
            other => panic!("want Version error, got {other}"),
        }
    }

    /// A snapshot cut off mid-write (crash, full disk) must surface a
    /// serde error — not a panic — so a restarting server can report it
    /// and start fresh.
    #[test]
    fn truncated_snapshot_is_an_error_not_a_panic() {
        // Build a real snapshot, then truncate it at several points.
        let store = SemanticsStore::with_shards(4);
        store.ingest(
            &DeviceId::new("dev-a"),
            &[
                sem("dev-a", 1, "stay", 0, 600),
                sem("dev-a", 2, "pass-by", 600, 630),
            ],
        );
        let path = temp_path("truncated");
        store.persist(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        for frac in [0.25, 0.5, 0.9] {
            let cut = (full.len() as f64 * frac) as usize;
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = SemanticsStore::load(&path).unwrap_err();
            assert!(
                matches!(err, SemanticsStoreError::Serde(_)),
                "cut at {cut}/{}: {err}",
                full.len()
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_and_missing_files_surface_errors() {
        let path = temp_path("garbage");
        std::fs::write(&path, "not json at all {").unwrap();
        let err = SemanticsStore::load(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, SemanticsStoreError::Serde(_)), "{err}");
        let missing = SemanticsStore::load(temp_path("missing-never-written")).unwrap_err();
        assert!(matches!(missing, SemanticsStoreError::Io(_)), "{missing}");
    }

    /// Persist is atomic: a crashed earlier attempt's partial `.tmp`
    /// must not poison a later persist, and a reader never sees the tmp
    /// shadow as the snapshot.
    #[test]
    fn persist_overwrites_a_preseeded_partial_tmp() {
        let path = temp_path("atomic");
        let tmp = std::path::PathBuf::from(format!("{}.tmp", path.display()));
        // Simulate a crash mid-write from a previous run.
        std::fs::write(&tmp, r#"{"version":1,"shards":4,"dev"#).unwrap();

        let store = SemanticsStore::with_shards(4);
        store.ingest(&DeviceId::new("dev-a"), &[sem("dev-a", 1, "stay", 0, 600)]);
        store.persist(&path).unwrap();

        assert!(!tmp.exists(), "tmp shadow renamed away");
        let back = SemanticsStore::load(&path).unwrap();
        assert_eq!(back.semantics_count(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
