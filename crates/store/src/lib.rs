//! # trips-store — sharded concurrent mobility-semantics store
//!
//! TRIPS positions translation as the front half of a system whose payoff is
//! serving mobility-semantics *queries* — popular regions, flows, dwell
//! histograms — to many concurrent consumers (paper §1's applications).
//! This crate is the serving half: a [`SemanticsStore`] that absorbs
//! streaming translations while answering analytics reads concurrently,
//! without rescanning every stored semantics on each call.
//!
//! ## Architecture
//!
//! * **Sharding** — devices are partitioned over N shards by an FNV-1a hash
//!   of the device id, each shard behind its own `parking_lot::RwLock`.
//!   Writers for different devices contend only when they hash to the same
//!   shard; readers never block each other.
//! * **Incremental aggregates** — every shard maintains, alongside the raw
//!   per-device semantics, running aggregates updated at ingest time:
//!   per-region popularity (stays / pass-bys / unique stayers / total
//!   dwell), directed region-to-region flow counts, an exact-duration dwell
//!   multiset (bucketable at query time into any histogram width), and
//!   per-device visit summaries. Unfiltered analytics queries are therefore
//!   **O(shards) merges** instead of full rescans; since a device lives in
//!   exactly one shard, per-shard unique-stayer counts sum exactly.
//! * **Query service** — [`QueryService`] answers
//!   [`QueryRequest`]s (a [`SemanticsSelector`] filter plus a [`Query`]
//!   kind) against a shared store. Selectors reuse `trips-data`'s Data
//!   Selector conventions: device-id glob patterns
//!   ([`trips_data::glob_match`]) and **half-open** `[from, to)` temporal
//!   ranges, matching `SelectionRule::TemporalRange`. Filtered queries fall
//!   back to scanning only the matching devices' semantics (still sharded).
//!
//! ## Shard-count heuristic
//!
//! [`default_shard_count`] picks `2 × available_parallelism`, rounded up to
//! a power of two and clamped to `[4, 64]`. Twice the hardware parallelism
//! keeps write contention low even when every core runs an ingesting
//! writer; the power-of-two count turns shard selection into a mask; and
//! the cap bounds the O(shards) merge cost of aggregate queries. Pass an
//! explicit count to [`SemanticsStore::with_shards`] to override (it is
//! rounded up to the next power of two, minimum 1).
//!
//! ## Snapshot format
//!
//! [`SemanticsStore::persist`] writes a single JSON document (version 1),
//! atomically (tmp file + rename):
//!
//! ```json
//! { "version": 1,
//!   "shards": 8,
//!   "wal_seq": null,
//!   "devices": [["<device id>", [[<MobilitySemantics...>], ...]], ...] }
//! ```
//!
//! Devices are sorted by id, each paired with its semantics in ingest
//! order, split into **sessions** at [`SemanticsStore::end_session`]
//! boundaries (a trailing empty session encodes a boundary after the last
//! semantics) so flow suppression across independent sequences survives a
//! roundtrip. Aggregates are *not* serialized — they are derivable, and
//! [`SemanticsStore::load`] rebuilds them by re-ingesting each session, so
//! the snapshot can never disagree with its aggregates. `shards` records
//! the source store's shard count and is reused on load. Loading rejects
//! unknown versions with [`SemanticsStoreError::Version`] — checked on
//! the raw JSON before the body parse, so snapshots from newer builds
//! fail typed even when their shape diverged.
//!
//! The file-backed `trips-core` `Store` uses these two entry points as its
//! snapshot/restore backend (`Store::save_semantics` / `load_semantics`).
//!
//! ## Durability
//!
//! A store can be booted through [`SemanticsStore::recover`] (or the
//! all-in-one [`boot_store`]), which attaches a `trips-wal` write-ahead
//! log: every effective `ingest` / `register_device` / `end_session` /
//! `clear` appends a WAL record **before** it is applied, so a caller
//! that sees the mutation return may ack it as durable (under the
//! configured [`FsyncPolicy`]). `wal_seq` in a snapshot marks it as a
//! **checkpoint** ([`SemanticsStore::checkpoint`]): the WAL rotates, the
//! snapshot is tagged with the new segment sequence and published
//! atomically, and older segments are retired. Recovery is `snapshot
//! load → replay segments ≥ wal_seq`, equivalent to the never-crashed
//! store. See the [`durability`] module docs for the record payloads,
//! lock ordering, and crash-safety argument.

pub mod durability;
mod query;
pub mod rules;
mod shard;
mod snapshot;
mod types;

pub use durability::{boot_store, CheckpointReport, DurabilityConfig, RecoveryReport, WalStats};
pub use query::{Query, QueryRequest, QueryResult, QueryService, SemanticsSelector};
pub use rules::{
    Alert, AlertSink, CmpOp, CollectingSink, Condition, RegionSel, RuleEngine, RuleError, RuleSpec,
    RuleTrace, DEFAULT_RULE_LIMIT,
};
pub use snapshot::SemanticsStoreError;
pub use trips_wal::FsyncPolicy;
pub use types::{DeviceSummary, Flow, RegionPopularity, StoreHealth, StoreStats};

use durability::{Durability, WalOpRef};
use parking_lot::RwLock;
use shard::Shard;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use trips_annotate::MobilitySemantics;
use trips_data::DeviceId;

/// Default shard count: `2 × available_parallelism`, next power of two,
/// clamped to `[4, 64]` (see the module docs for the rationale).
pub fn default_shard_count() -> usize {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    (threads * 2).next_power_of_two().clamp(4, 64)
}

/// FNV-1a 64-bit — deterministic across runs and platforms, so a device
/// always lands in the same shard (snapshots and tests rely on this).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The per-device routing hash (FNV-1a 64-bit over the device id bytes),
/// exported so other layers can shard by device **consistently** with the
/// store: masking this hash with any power-of-two shard count keeps two
/// sharded structures (e.g. the server's per-shard translator locks and
/// the store's shards) aligned on the same device partitioning.
pub fn device_hash(device: &DeviceId) -> u64 {
    fnv1a(device.as_str().as_bytes())
}

/// Sharded, concurrently readable/writable store of translated mobility
/// semantics with incremental analytics aggregates.
///
/// All methods take `&self`: the store is `Sync` and designed to be shared
/// (typically via `Arc`) between ingesting writers and querying readers.
pub struct SemanticsStore {
    shards: Vec<RwLock<Shard>>,
    mask: usize,
    /// The WAL handle, attached by [`SemanticsStore::recover`]. Appends
    /// happen under the mutating device's shard write lock, so per-device
    /// WAL order always equals apply order.
    durability: Option<Durability>,
    /// Standing rules, evaluated after each applied ingest batch (a
    /// zero-rule engine costs one atomic load per batch). See [`rules`].
    rules: RuleEngine,
    /// Ingest shard-lock acquisitions that found the lock held (observed
    /// only while `trips_obs::enabled()`; the uninstrumented path takes
    /// the lock directly).
    lock_contended: AtomicU64,
}

impl Default for SemanticsStore {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SemanticsStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemanticsStore")
            .field("shards", &self.shard_count())
            .field("devices", &self.device_count())
            .field("semantics", &self.semantics_count())
            .finish()
    }
}

impl SemanticsStore {
    /// Creates a store with [`default_shard_count`] shards.
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// Creates a store with an explicit shard count (rounded up to the next
    /// power of two, minimum 1).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        SemanticsStore {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            mask: n - 1,
            durability: None,
            rules: RuleEngine::new(),
            lock_contended: AtomicU64::new(0),
        }
    }

    /// The standing-rules engine evaluated on this store's ingest path.
    pub fn rules(&self) -> &RuleEngine {
        &self.rules
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn shards(&self) -> &[RwLock<Shard>] {
        &self.shards
    }

    pub(crate) fn shard_index(&self, device: &DeviceId) -> usize {
        (fnv1a(device.as_str().as_bytes()) as usize) & self.mask
    }

    /// Ingests a batch of semantics for one device, appending to any
    /// previously ingested semantics and updating every aggregate
    /// incrementally (including the flow across the append boundary).
    ///
    /// An empty batch is a **no-op**: it must not register the device, or a
    /// serving path that naturally produces empty batches (a streaming
    /// micro-batch with nothing finalized, a wire request with zero usable
    /// records) would inflate [`SemanticsStore::device_count`] with devices
    /// that have no semantics. Use [`SemanticsStore::register_device`] when
    /// a known-but-silent device must appear (snapshot restore does).
    ///
    /// On a durable store (see [`SemanticsStore::recover`]) the batch is
    /// appended to the WAL before it is applied — when this returns, the
    /// batch is journaled (and on stable storage, under the configured
    /// fsync policy), so the caller may ack it.
    pub fn ingest(&self, device: &DeviceId, semantics: &[MobilitySemantics]) {
        if semantics.is_empty() {
            return;
        }
        let obs = trips_obs::enabled();
        {
            let lock = &self.shards[self.shard_index(device)];
            // Instrumented path: try the lock first so the uncontended
            // case pays no clock read; a miss counts as contention and
            // attributes the wait to the in-flight request's span.
            let mut shard = if obs {
                match lock.try_write() {
                    Some(guard) => guard,
                    None => {
                        let waiting = Instant::now();
                        let guard = lock.write();
                        self.lock_contended.fetch_add(1, Ordering::Relaxed);
                        trips_obs::stage::add_store_lock_wait_ns(
                            waiting.elapsed().as_nanos() as u64
                        );
                        guard
                    }
                }
            } else {
                lock.write()
            };
            let applying = obs.then(Instant::now);
            if let Some(d) = &self.durability {
                d.append(&WalOpRef::Ingest {
                    device: device.as_str(),
                    semantics,
                });
            }
            shard.ingest(device, semantics);
            if let Some(t) = applying {
                trips_obs::stage::add_store_ns(t.elapsed().as_nanos() as u64);
            }
        }
        // Standing rules see the batch after it is applied (and after the
        // shard lock is released — the engine's locks are leaf locks). The
        // serving layer serializes batches per device, so rule evaluation
        // order equals store order.
        self.rules.publish(device, semantics);
    }

    /// Ingest shard-lock acquisitions that had to wait (counted while
    /// observability is enabled).
    pub fn shard_lock_contention(&self) -> u64 {
        self.lock_contended.load(Ordering::Relaxed)
    }

    /// Registers `device` with no semantics (a deliberate empty entry —
    /// unlike an empty [`SemanticsStore::ingest`] batch, which is a no-op).
    /// Snapshot restore uses this to keep devices that were explicitly
    /// registered before persisting.
    pub fn register_device(&self, device: &DeviceId) {
        let mut shard = self.shards[self.shard_index(device)].write();
        if !shard.devices.contains_key(device) {
            // Journal only effective registrations — a re-register is a
            // no-op and must not bloat replay.
            if let Some(d) = &self.durability {
                d.append(&WalOpRef::Register {
                    device: device.as_str(),
                });
            }
            shard.devices.entry(device.clone()).or_default();
        }
    }

    /// Ends the current flow "session" for `device`: the next ingested
    /// batch will not count a directed flow from this device's previously
    /// ingested last region. Use when successive batches are independent
    /// sequences rather than a continuation — e.g. republishing separate
    /// translation results for the same device. Streaming ingest should
    /// *not* call this between micro-batches (their boundary flows are
    /// real).
    pub fn end_session(&self, device: &DeviceId) {
        {
            let mut shard = self.shards[self.shard_index(device)].write();
            let durable = self.durability.as_ref();
            if let Some(entry) = shard.devices.get_mut(device) {
                if entry.last.is_some() {
                    // Journal only effective boundaries (a second
                    // end_session in a row is a no-op).
                    if let Some(d) = durable {
                        d.append(&WalOpRef::EndSession {
                            device: device.as_str(),
                        });
                    }
                    entry.last = None;
                    entry.breaks.push(entry.semantics.len());
                }
            }
        }
        // The device's session is over: release its occupancy contribution
        // in the rules engine.
        self.rules.device_gone(device);
    }

    /// Drops all devices and aggregates, keeping the shard layout (and
    /// journaling the wipe, so replay does not resurrect the dropped
    /// state). All shard locks are taken *before* the WAL append — the
    /// same shards-then-wal order as every other mutator and
    /// [`SemanticsStore::checkpoint`] — so a concurrent ingest can never
    /// be ordered after the wipe in memory but before it in the log.
    pub fn clear(&self) {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        if let Some(d) = &self.durability {
            d.append(&WalOpRef::Clear);
        }
        for g in &mut guards {
            **g = Shard::default();
        }
        drop(guards);
        // Tracked rule state (occupancy/flows/positions) describes the
        // wiped data; registered rules survive, their counters re-arm.
        self.rules.reset_state();
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().devices.len()).sum()
    }

    /// Total semantics stored.
    pub fn semantics_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().semantics_count).sum()
    }

    /// Whether no device has been ingested.
    pub fn is_empty(&self) -> bool {
        self.device_count() == 0
    }

    /// Cheap occupancy counters — one pass over the shard locks reading
    /// two integers each, no per-device or per-region iteration. Suitable
    /// for a serving health endpoint called at high frequency; the full
    /// [`SemanticsStore::stats`] adds region counts and per-shard balance
    /// at O(regions + shards) cost.
    pub fn store_stats(&self) -> StoreHealth {
        let mut devices = 0;
        let mut semantics = 0;
        for s in &self.shards {
            let s = s.read();
            devices += s.devices.len();
            semantics += s.semantics_count;
        }
        StoreHealth {
            shards: self.shard_count(),
            devices,
            semantics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::Timestamp;
    use trips_dsm::RegionId;

    pub(crate) fn sem(
        device: &str,
        region: u32,
        name: &str,
        event: &str,
        start_s: i64,
        end_s: i64,
    ) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new(device),
            event: event.into(),
            region: RegionId(region),
            region_name: name.into(),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            inferred: false,
            display_point: None,
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SemanticsStore::with_shards(0).shard_count(), 1);
        assert_eq!(SemanticsStore::with_shards(1).shard_count(), 1);
        assert_eq!(SemanticsStore::with_shards(3).shard_count(), 4);
        assert_eq!(SemanticsStore::with_shards(8).shard_count(), 8);
        let d = default_shard_count();
        assert!(d.is_power_of_two() && (4..=64).contains(&d));
    }

    #[test]
    fn sharding_is_deterministic_and_total() {
        let store = SemanticsStore::with_shards(8);
        for i in 0..100 {
            let d = DeviceId::new(&format!("dev-{i}"));
            let a = store.shard_index(&d);
            assert_eq!(a, store.shard_index(&d), "stable per device");
            assert!(a < store.shard_count());
        }
    }

    #[test]
    fn ingest_counts_and_clear() {
        let store = SemanticsStore::with_shards(4);
        assert!(store.is_empty());
        let d = DeviceId::new("a.b.c.1");
        store.ingest(&d, &[sem("a.b.c.1", 1, "Nike", "stay", 0, 600)]);
        store.register_device(&DeviceId::new("a.b.c.2"));
        assert_eq!(store.device_count(), 2, "explicit registration counts");
        assert_eq!(store.semantics_count(), 1);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.semantics_count(), 0);
    }

    /// Regression (serving batch path): an empty ingest batch must not
    /// register a phantom device — servers naturally produce empty batches
    /// (a micro-batch with nothing finalized, a request with zero usable
    /// records) and `device_count` would creep upward forever.
    #[test]
    fn empty_ingest_does_not_inflate_device_count() {
        let store = SemanticsStore::with_shards(4);
        store.ingest(&DeviceId::new("phantom"), &[]);
        assert!(store.is_empty(), "empty batch must not register a device");
        assert_eq!(store.device_count(), 0);
        // An empty batch for an existing device is a harmless no-op.
        let d = DeviceId::new("real");
        store.ingest(&d, &[sem("real", 1, "Nike", "stay", 0, 600)]);
        store.ingest(&d, &[]);
        assert_eq!(store.device_count(), 1);
        assert_eq!(store.semantics_count(), 1);
        // Explicit registration is still available for known-silent devices.
        store.register_device(&DeviceId::new("silent"));
        assert_eq!(store.device_count(), 2);
        assert_eq!(store.semantics_count(), 1);
    }

    #[test]
    fn store_stats_is_cheap_occupancy_view() {
        let store = SemanticsStore::with_shards(4);
        assert_eq!(
            store.store_stats(),
            StoreHealth {
                shards: 4,
                devices: 0,
                semantics: 0
            }
        );
        store.ingest(&DeviceId::new("a"), &[sem("a", 1, "Nike", "stay", 0, 600)]);
        store.ingest(
            &DeviceId::new("b"),
            &[
                sem("b", 1, "Nike", "stay", 0, 300),
                sem("b", 2, "Hall", "pass-by", 300, 330),
            ],
        );
        let health = store.store_stats();
        assert_eq!((health.devices, health.semantics), (2, 3));
        // Agrees with the heavier full stats.
        let full = store.stats();
        assert_eq!((full.devices, full.semantics), (2, 3));
    }
}
