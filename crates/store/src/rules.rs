//! Standing rules: continuous predicates evaluated on the ingest path.
//!
//! Pull queries answer "what happened"; a monitoring deployment also needs
//! "tell me when" — device entered a restricted zone, floor occupancy
//! crossed a threshold, a dwell ran long. This module is the push half:
//! a [`RuleEngine`] that holds compiled [`RuleSpec`]s (typically produced
//! by the `trips-query-lang` compiler from TQL `WHEN … ALERT` statements)
//! and evaluates them **incrementally** as semantics are published into
//! the store — no rescans, no polling loop.
//!
//! ## Evaluation model
//!
//! [`RuleEngine::publish`] is called by [`SemanticsStore::ingest`] after
//! the batch is applied (the translator shard lock serializes batches per
//! device, so per-device ordering here equals store order). Each published
//! semantics entry drives:
//!
//! * **Event conditions** ([`Condition::Enters`], [`Condition::Dwells`]) —
//!   fire per matching entry: an `Enters` on a region *transition* (the
//!   device's tracked last region changed), a `Dwells` on a `"stay"` whose
//!   duration satisfies the comparison.
//! * **State conditions** ([`Condition::Occupancy`], [`Condition::Flow`]) —
//!   maintained counters (devices currently in a region / observed directed
//!   transitions) are compared on every transition that touches them; the
//!   rule fires on the **rising edge** (false → true) and re-arms when the
//!   condition goes false. With a hold duration (`FOR 5m` in TQL) the
//!   condition must stay true for that long — in *event time*, measured on
//!   the semantics timestamps — before firing.
//!
//! Rules are kept priority-ordered (highest first, ties by registration
//! id), so alert delivery order within one published entry is
//! deterministic. Every rule carries fire/eval counters and last-eval /
//! last-fire timestamps, exported as [`RuleTrace`]s for the server's
//! `Metrics` endpoint.
//!
//! State tracking (the per-device last-region map, occupancy and flow
//! counters) starts when the first rule is registered: counters reflect
//! movement observed **since registration**, which is the only sound
//! reading for an incremental engine bolted onto a live stream. A store
//! with no rules pays one atomic load per ingest batch.
//!
//! ## Delivery
//!
//! Each rule owns an optional [`AlertSink`]; the server installs one per
//! subscriber connection, tests use [`CollectingSink`]. Sinks are invoked
//! **after** all engine locks are released, with alerts for one batch
//! delivered in rule-priority order. A sink returns `false` to signal it
//! dropped the alert (backpressure); the engine counts both outcomes
//! ([`RuleEngine::alerts_delivered`] / [`RuleEngine::alerts_dropped`]).
//!
//! [`SemanticsStore::ingest`]: crate::SemanticsStore::ingest

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use trips_annotate::MobilitySemantics;
use trips_data::{glob_match, DeviceId};
use trips_dsm::RegionId;

/// Sentinel for "no timestamp yet" in the atomic trace fields.
const NO_TS: i64 = i64::MIN;
/// Shards of the per-device last-region map (leaf mutexes; publish holds
/// at most one at a time).
const DEVICE_SHARDS: usize = 16;
/// Default cap on registered rules (override with [`RuleEngine::set_limit`]).
pub const DEFAULT_RULE_LIMIT: usize = 1024;

/// Selects the regions a rule watches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionSel {
    /// One region by id.
    Id(u32),
    /// Every region whose display name matches this glob (`*` / `?`).
    Name(String),
    /// Every region on one floor (requires the region→floor map installed
    /// via [`RuleEngine::set_region_floors`]; unmapped regions never match).
    Floor(i16),
}

impl RegionSel {
    /// Whether `region` (with display name `name`) matches, under the
    /// engine's current region→floor knowledge.
    fn matches(&self, region: u32, name: &str, floors: &HashMap<u32, i16>) -> bool {
        match self {
            RegionSel::Id(id) => *id == region,
            RegionSel::Name(glob) => glob_match(glob, name),
            RegionSel::Floor(f) => floors.get(&region) == Some(f),
        }
    }
}

/// A comparison operator in a rule threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Gt,
    Ge,
    Lt,
    Le,
    Eq,
    Ne,
}

impl CmpOp {
    /// Applies the comparison: `lhs <op> rhs`.
    pub fn holds(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// The TQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }
}

/// A compiled standing-rule predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Fires when a device (optionally matching a glob) transitions into a
    /// matching region. **Event condition** — no hold duration.
    Enters {
        device: Option<String>,
        region: RegionSel,
    },
    /// Fires when a `"stay"` in a matching region has a duration satisfying
    /// `cmp threshold_ms`. **Event condition** — no hold duration.
    Dwells {
        device: Option<String>,
        region: RegionSel,
        cmp: CmpOp,
        threshold_ms: i64,
    },
    /// Fires (rising edge) when the number of devices currently in matching
    /// regions satisfies `cmp count`. **State condition** — may hold.
    Occupancy {
        region: RegionSel,
        cmp: CmpOp,
        count: i64,
    },
    /// Fires (rising edge) when the observed directed transition count from
    /// a matching region into a matching region satisfies `cmp count`.
    /// **State condition** — may hold.
    Flow {
        from: RegionSel,
        to: RegionSel,
        cmp: CmpOp,
        count: i64,
    },
}

impl Condition {
    /// Event conditions fire per published entry; state conditions compare
    /// maintained counters and may carry a hold duration.
    pub fn is_state(&self) -> bool {
        matches!(self, Condition::Occupancy { .. } | Condition::Flow { .. })
    }
}

/// Everything needed to register a rule: the compiled predicate plus its
/// presentation (name, message, canonical TQL source) and scheduling
/// (priority, hold).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSpec {
    /// Display name; empty → `rule-<id>` is assigned at registration.
    pub name: String,
    /// Higher evaluates (and delivers) first; ties break by registration id.
    pub priority: i32,
    pub condition: Condition,
    /// Hold duration in ms (`FOR …`): the condition must stay true this
    /// long (event time) before firing. State conditions only.
    pub hold_ms: Option<i64>,
    /// Alert message; `None` → a default is synthesized per fire.
    pub message: Option<String>,
    /// Canonical TQL source text (shown in traces).
    pub source: String,
}

/// A fired alert, as delivered to sinks and pushed over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    pub rule_id: u64,
    pub rule_name: String,
    /// The device that triggered the fire (event conditions; state
    /// conditions report the device whose movement crossed the threshold).
    pub device: Option<String>,
    /// The region involved (entered region / dwell region / the transition
    /// target for state conditions).
    pub region: Option<u32>,
    pub region_name: Option<String>,
    pub message: String,
    /// Event time of the fire (ms; the triggering semantics' end).
    pub at_ms: i64,
    /// This rule's fire ordinal (1 = first fire).
    pub seq: u64,
}

/// Per-rule execution trace (the audit trail behind `Metrics`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleTrace {
    pub id: u64,
    pub name: String,
    pub priority: i32,
    /// Canonical TQL source.
    pub source: String,
    /// Times the predicate was evaluated against a relevant event.
    pub evals: u64,
    /// Times the rule fired an alert.
    pub fires: u64,
    /// Event time (ms) of the last evaluation, if any.
    pub last_eval_ms: Option<i64>,
    /// Event time (ms) of the last fire, if any.
    pub last_fire_ms: Option<i64>,
}

/// Receives fired alerts. Implementations must be cheap and non-blocking —
/// `deliver` runs on the ingest path (after engine locks are released).
/// Return `false` to report the alert was dropped (backpressure).
pub trait AlertSink: Send + Sync {
    fn deliver(&self, alert: &Alert) -> bool;
}

/// An [`AlertSink`] that buffers alerts in memory — the test harness sink.
#[derive(Default)]
pub struct CollectingSink {
    alerts: Mutex<Vec<Alert>>,
}

impl CollectingSink {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Drains everything collected so far.
    pub fn take(&self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts.lock())
    }

    pub fn len(&self) -> usize {
        self.alerts.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.alerts.lock().is_empty()
    }
}

impl AlertSink for CollectingSink {
    fn deliver(&self, alert: &Alert) -> bool {
        self.alerts.lock().push(alert.clone());
        true
    }
}

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// The engine's rule cap is reached.
    TooManyRules { limit: usize },
    /// `FOR` (hold) on an event condition — per-event fires have no
    /// duration to hold over.
    HoldOnEventCondition,
}

impl std::fmt::Display for RuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleError::TooManyRules { limit } => {
                write!(f, "rule limit reached ({limit} registered)")
            }
            RuleError::HoldOnEventCondition => {
                write!(f, "FOR requires a state condition (occupancy/flow)")
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// One registered rule with its live counters.
struct Rule {
    id: u64,
    spec: RuleSpec,
    sink: Option<Arc<dyn AlertSink>>,
    evals: AtomicU64,
    fires: AtomicU64,
    last_eval_ms: AtomicI64,
    last_fire_ms: AtomicI64,
    /// For held state conditions: event time the condition turned true
    /// ([`NO_TS`] = not pending).
    pending_since_ms: AtomicI64,
    /// State condition currently satisfied (edge/re-arm tracking).
    active: AtomicBool,
}

impl Rule {
    fn trace(&self) -> RuleTrace {
        let ts = |a: &AtomicI64| {
            let v = a.load(Ordering::Relaxed);
            (v != NO_TS).then_some(v)
        };
        RuleTrace {
            id: self.id,
            name: self.spec.name.clone(),
            priority: self.spec.priority,
            source: self.spec.source.clone(),
            evals: self.evals.load(Ordering::Relaxed),
            fires: self.fires.load(Ordering::Relaxed),
            last_eval_ms: ts(&self.last_eval_ms),
            last_fire_ms: ts(&self.last_fire_ms),
        }
    }
}

/// A device's pre-partitioned view of the rule list: indices (into the
/// priority-ordered rules vec) of every *event* rule that can fire for
/// this device, split by trigger — ENTERS on transitions, DWELLS on
/// stays. Device globs are evaluated when this is built, once per
/// device per rule-set generation, not per published semantic. State
/// rules are device-independent and live in [`StateIndex`] instead.
struct DeviceBuckets {
    generation: u64,
    enters: Vec<u32>,
    dwells: Vec<u32>,
}

/// The device-independent predicate index over *state* rules: a region
/// transition only needs to re-evaluate occupancy rules watching a
/// touched region and flow rules ending at the moved-into region, so
/// `Id`-selector rules are bucketed by that id and only selector
/// families that need name/floor resolution (`Name` globs, `Floor`)
/// stay in a walk-every-transition list. Rebuilt lazily per rule-set
/// generation, shared by every publisher.
struct StateIndex {
    generation: u64,
    /// Occupancy rules watching one region by id, bucketed by it.
    occ_by_region: HashMap<u32, Vec<u32>>,
    /// Occupancy rules whose selector needs name/floor resolution.
    occ_other: Vec<u32>,
    /// Flow rules with an `Id` destination, bucketed by the `to` region.
    flow_by_to: HashMap<u32, Vec<u32>>,
    /// Flow rules whose destination needs name/floor resolution.
    flow_other: Vec<u32>,
}

/// The standing-rules engine (see the module docs for the evaluation
/// model). One lives inside every [`SemanticsStore`](crate::SemanticsStore);
/// all methods take `&self` and are safe under concurrent publish.
pub struct RuleEngine {
    /// Registered-rule count, mirrored out of the lock so a store with no
    /// rules pays one relaxed load per ingest batch.
    count: AtomicUsize,
    /// How many registered rules are state conditions (occupancy/flow
    /// tracking is maintained only while this is non-zero).
    state_rules: AtomicUsize,
    next_id: AtomicU64,
    limit: AtomicUsize,
    /// Priority-ordered (desc, ties by id asc).
    rules: RwLock<Vec<Arc<Rule>>>,
    /// Monotonic rule-set version, bumped under the `rules` write lock —
    /// a reader holding `rules.read()` therefore sees a value consistent
    /// with the list it is iterating.
    generation: AtomicU64,
    /// Per-device [`DeviceBuckets`], validated against `generation` and
    /// rebuilt lazily on mismatch. Sharded like `device_regions`.
    bucket_cache: Vec<Mutex<HashMap<String, Arc<DeviceBuckets>>>>,
    /// The shared [`StateIndex`], validated against `generation` and
    /// rebuilt lazily on mismatch.
    state_index: RwLock<Arc<StateIndex>>,
    /// Last known region per device, sharded by the store's device hash.
    device_regions: Vec<Mutex<HashMap<String, u32>>>,
    /// Devices currently in each region (state rules only).
    occupancy: Mutex<HashMap<u32, i64>>,
    /// Observed directed transition counts (state rules only).
    flows: Mutex<HashMap<(u32, u32), u64>>,
    /// Region id → display name, learned from the published stream (used
    /// by name selectors over maintained counters).
    region_names: RwLock<HashMap<u32, String>>,
    /// Region id → floor, installed by the embedding layer from its DSM.
    region_floors: RwLock<HashMap<u32, i16>>,
    delivered: AtomicU64,
    dropped: AtomicU64,
    /// Engine-wide evaluation count (sum over rules, kept as its own
    /// atomic so scraping doesn't walk the rule list).
    evals_total: AtomicU64,
    /// Engine-wide fire count.
    fires_total: AtomicU64,
}

impl Default for RuleEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl RuleEngine {
    pub fn new() -> Self {
        RuleEngine {
            count: AtomicUsize::new(0),
            state_rules: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            limit: AtomicUsize::new(DEFAULT_RULE_LIMIT),
            rules: RwLock::new(Vec::new()),
            generation: AtomicU64::new(0),
            bucket_cache: (0..DEVICE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            // Generation 0 never matches a publish (publishes only run
            // with ≥1 registered rule, and registering bumps to ≥1), so
            // the first one rebuilds.
            state_index: RwLock::new(Arc::new(StateIndex {
                generation: 0,
                occ_by_region: HashMap::new(),
                occ_other: Vec::new(),
                flow_by_to: HashMap::new(),
                flow_other: Vec::new(),
            })),
            device_regions: (0..DEVICE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            occupancy: Mutex::new(HashMap::new()),
            flows: Mutex::new(HashMap::new()),
            region_names: RwLock::new(HashMap::new()),
            region_floors: RwLock::new(HashMap::new()),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evals_total: AtomicU64::new(0),
            fires_total: AtomicU64::new(0),
        }
    }

    /// Caps how many rules may be registered at once.
    pub fn set_limit(&self, limit: usize) {
        self.limit.store(limit.max(1), Ordering::Relaxed);
    }

    /// Installs the region→floor map (from the embedding layer's DSM) so
    /// `floor N` selectors can resolve. Replaces any previous map.
    pub fn set_region_floors<I>(&self, map: I)
    where
        I: IntoIterator<Item = (RegionId, i16)>,
    {
        *self.region_floors.write() = map.into_iter().map(|(r, f)| (r.0, f)).collect();
    }

    /// Registers a compiled rule; returns its id. `sink` receives this
    /// rule's alerts (rules without a sink still count fires in traces).
    pub fn register(
        &self,
        mut spec: RuleSpec,
        sink: Option<Arc<dyn AlertSink>>,
    ) -> Result<u64, RuleError> {
        if spec.hold_ms.is_some() && !spec.condition.is_state() {
            return Err(RuleError::HoldOnEventCondition);
        }
        let mut rules = self.rules.write();
        let limit = self.limit.load(Ordering::Relaxed);
        if rules.len() >= limit {
            return Err(RuleError::TooManyRules { limit });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        if spec.name.is_empty() {
            spec.name = format!("rule-{id}");
        }
        if spec.condition.is_state() {
            self.state_rules.fetch_add(1, Ordering::Relaxed);
        }
        let rule = Arc::new(Rule {
            id,
            spec,
            sink,
            evals: AtomicU64::new(0),
            fires: AtomicU64::new(0),
            last_eval_ms: AtomicI64::new(NO_TS),
            last_fire_ms: AtomicI64::new(NO_TS),
            pending_since_ms: AtomicI64::new(NO_TS),
            active: AtomicBool::new(false),
        });
        let pos = rules
            .iter()
            .position(|r| {
                (r.spec.priority, std::cmp::Reverse(r.id))
                    < (rule.spec.priority, std::cmp::Reverse(rule.id))
            })
            .unwrap_or(rules.len());
        rules.insert(pos, rule);
        self.count.store(rules.len(), Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Removes a rule; returns whether it existed.
    pub fn unregister(&self, id: u64) -> bool {
        let mut rules = self.rules.write();
        let Some(pos) = rules.iter().position(|r| r.id == id) else {
            return false;
        };
        let rule = rules.remove(pos);
        if rule.spec.condition.is_state() {
            self.state_rules.fetch_sub(1, Ordering::Relaxed);
        }
        self.count.store(rules.len(), Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Registered-rule count (one relaxed load).
    pub fn rule_count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Alerts accepted by sinks so far.
    pub fn alerts_delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Alerts a sink reported dropped (backpressure).
    pub fn alerts_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total rule evaluations across all rules (including since-removed
    /// ones).
    pub fn evals_total(&self) -> u64 {
        self.evals_total.load(Ordering::Relaxed)
    }

    /// Total rule fires across all rules (including since-removed ones).
    pub fn fires_total(&self) -> u64 {
        self.fires_total.load(Ordering::Relaxed)
    }

    /// Per-rule traces, in evaluation (priority) order.
    pub fn traces(&self) -> Vec<RuleTrace> {
        self.rules.read().iter().map(|r| r.trace()).collect()
    }

    /// Forgets a device's tracked position (its occupancy contribution is
    /// released). Call when the device's session ends.
    pub fn device_gone(&self, device: &DeviceId) {
        if self.count.load(Ordering::Relaxed) == 0 {
            return;
        }
        let key = device.as_str();
        let shard = (crate::fnv1a(key.as_bytes()) as usize) % DEVICE_SHARDS;
        self.bucket_cache[shard].lock().remove(key);
        let prev = self.device_regions[shard].lock().remove(key);
        if let Some(region) = prev {
            if self.state_rules.load(Ordering::Relaxed) > 0 {
                let mut occ = self.occupancy.lock();
                if let Some(n) = occ.get_mut(&region) {
                    *n = (*n - 1).max(0);
                }
            }
        }
    }

    /// Drops all tracked state (counters, positions) but keeps registered
    /// rules. Call when the store is cleared.
    pub fn reset_state(&self) {
        for shard in &self.device_regions {
            shard.lock().clear();
        }
        for shard in &self.bucket_cache {
            shard.lock().clear();
        }
        self.occupancy.lock().clear();
        self.flows.lock().clear();
    }

    /// Evaluates every relevant rule against one published batch. Called
    /// by the store on the ingest path; per-device ordering is the
    /// caller's (translator lock) ordering. Sinks run after all engine
    /// locks are released.
    pub fn publish(&self, device: &DeviceId, batch: &[MobilitySemantics]) {
        if self.count.load(Ordering::Relaxed) == 0 {
            return;
        }
        // Attribute the whole evaluation (locks, predicate walk, sink
        // delivery) to the in-flight request's rule_eval span stage.
        let evaluating = trips_obs::enabled().then(std::time::Instant::now);
        let mut fired: Vec<(Arc<dyn AlertSink>, Alert)> = Vec::new();
        {
            let rules = self.rules.read();
            let floors = self.region_floors.read();
            let track_state = self.state_rules.load(Ordering::Relaxed) > 0;
            let key = device.as_str();
            let shard = (crate::fnv1a(key.as_bytes()) as usize) % DEVICE_SHARDS;
            // A device's view of the rule list is constant until the rule
            // set changes, so its partition is cached across publishes
            // and rebuilt only on a generation mismatch. `generation` is
            // read under `rules.read()` (writers bump it inside the write
            // lock), so it is consistent with the list being walked.
            let generation = self.generation.load(Ordering::Relaxed);
            let buckets = {
                let mut cache = self.bucket_cache[shard].lock();
                match cache.get(key) {
                    Some(b) if b.generation == generation => Arc::clone(b),
                    _ => {
                        let mut enters = Vec::new();
                        let mut dwells = Vec::new();
                        for (idx, rule) in rules.iter().enumerate() {
                            match &rule.spec.condition {
                                Condition::Enters { device: dpat, .. } => {
                                    if device_matches(dpat, key) {
                                        enters.push(idx as u32);
                                    }
                                }
                                Condition::Dwells { device: dpat, .. } => {
                                    if device_matches(dpat, key) {
                                        dwells.push(idx as u32);
                                    }
                                }
                                Condition::Occupancy { .. } | Condition::Flow { .. } => {}
                            }
                        }
                        let b = Arc::new(DeviceBuckets {
                            generation,
                            enters,
                            dwells,
                        });
                        cache.insert(key.to_string(), Arc::clone(&b));
                        b
                    }
                }
            };
            let state_index = {
                let cur = self.state_index.read();
                if cur.generation == generation {
                    Arc::clone(&cur)
                } else {
                    drop(cur);
                    let mut occ_by_region: HashMap<u32, Vec<u32>> = HashMap::new();
                    let mut occ_other = Vec::new();
                    let mut flow_by_to: HashMap<u32, Vec<u32>> = HashMap::new();
                    let mut flow_other = Vec::new();
                    for (idx, rule) in rules.iter().enumerate() {
                        match &rule.spec.condition {
                            Condition::Occupancy {
                                region: RegionSel::Id(id),
                                ..
                            } => occ_by_region.entry(*id).or_default().push(idx as u32),
                            Condition::Occupancy { .. } => occ_other.push(idx as u32),
                            Condition::Flow {
                                to: RegionSel::Id(id),
                                ..
                            } => flow_by_to.entry(*id).or_default().push(idx as u32),
                            Condition::Flow { .. } => flow_other.push(idx as u32),
                            Condition::Enters { .. } | Condition::Dwells { .. } => {}
                        }
                    }
                    let built = Arc::new(StateIndex {
                        generation,
                        occ_by_region,
                        occ_other,
                        flow_by_to,
                        flow_other,
                    });
                    *self.state_index.write() = Arc::clone(&built);
                    built
                }
            };
            // Candidate rule indices for one semantic, reused across the
            // batch. Sorted before the walk so delivery keeps the rule
            // list's priority order across condition families.
            let mut scratch: Vec<u32> = Vec::new();
            for s in batch {
                let region = s.region.0;
                let at = s.end.as_millis();
                {
                    let names = self.region_names.read();
                    let known = names.get(&region).is_some_and(|n| n == &s.region_name);
                    drop(names);
                    if !known {
                        self.region_names
                            .write()
                            .insert(region, s.region_name.clone());
                    }
                }
                let prev = {
                    // Allocation-free on the steady state: a known device
                    // updates its slot in place; only first sight inserts.
                    let mut map = self.device_regions[shard].lock();
                    match map.get_mut(key) {
                        Some(slot) => Some(std::mem::replace(slot, region)),
                        None => {
                            map.insert(key.to_string(), region);
                            None
                        }
                    }
                };
                let transition = prev != Some(region);
                let mut flow_count = 0u64;
                if transition && track_state {
                    {
                        let mut occ = self.occupancy.lock();
                        if let Some(p) = prev {
                            if let Some(n) = occ.get_mut(&p) {
                                *n = (*n - 1).max(0);
                            }
                        }
                        *occ.entry(region).or_insert(0) += 1;
                    }
                    if let Some(p) = prev {
                        let mut flows = self.flows.lock();
                        let n = flows.entry((p, region)).or_insert(0);
                        *n += 1;
                        flow_count = *n;
                    }
                }
                let is_stay = s.event == "stay";
                scratch.clear();
                if transition {
                    scratch.extend_from_slice(&buckets.enters);
                    // A transition moves occupancy in the entered region
                    // and (when leaving one) the departed region, and
                    // extends one directed flow — only rules watching
                    // those need re-evaluation.
                    if let Some(v) = state_index.occ_by_region.get(&region) {
                        scratch.extend_from_slice(v);
                    }
                    if let Some(p) = prev {
                        if let Some(v) = state_index.occ_by_region.get(&p) {
                            scratch.extend_from_slice(v);
                        }
                        if let Some(v) = state_index.flow_by_to.get(&region) {
                            scratch.extend_from_slice(v);
                        }
                        scratch.extend_from_slice(&state_index.flow_other);
                    }
                    scratch.extend_from_slice(&state_index.occ_other);
                }
                if is_stay {
                    scratch.extend_from_slice(&buckets.dwells);
                }
                if scratch.is_empty() {
                    continue;
                }
                scratch.sort_unstable();
                scratch.dedup();
                // The moved-out-of region's display name, looked up once
                // per semantic instead of once per state rule.
                let prev_name: Option<String> = match prev.filter(|_| transition) {
                    Some(p) => self.region_names.read().get(&p).cloned(),
                    None => None,
                };
                let prev_name_str = prev_name.as_deref().unwrap_or("");
                for &candidate in &scratch {
                    let rule = &rules[candidate as usize];
                    match &rule.spec.condition {
                        // Reached only on a transition; the device glob
                        // was checked when the bucket was built.
                        Condition::Enters { region: rsel, .. } => {
                            if !rsel.matches(region, &s.region_name, &floors) {
                                continue;
                            }
                            self.touch_eval(rule, at);
                            self.fire_event(rule, s, key, at, &mut fired);
                        }
                        // Reached only on a stay, device pre-checked.
                        Condition::Dwells {
                            region: rsel,
                            cmp,
                            threshold_ms,
                            ..
                        } => {
                            if !rsel.matches(region, &s.region_name, &floors) {
                                continue;
                            }
                            self.touch_eval(rule, at);
                            let dwell = (s.end - s.start).as_millis();
                            if cmp.holds(dwell, *threshold_ms) {
                                self.fire_event(rule, s, key, at, &mut fired);
                            }
                        }
                        Condition::Occupancy {
                            region: rsel,
                            cmp,
                            count,
                        } => {
                            // Only transitions move occupancy (this arm is
                            // only reached on one); re-evaluate when the
                            // moved-into or moved-out-of region is watched.
                            let touched = rsel.matches(region, &s.region_name, &floors)
                                || prev.is_some_and(|p| rsel.matches(p, prev_name_str, &floors));
                            if !touched {
                                continue;
                            }
                            self.touch_eval(rule, at);
                            let value = self.occupancy_of(rsel, &floors);
                            self.eval_state(rule, cmp.holds(value, *count), s, key, at, &mut fired);
                        }
                        Condition::Flow {
                            from,
                            to,
                            cmp,
                            count,
                        } => {
                            let Some(p) = prev else {
                                continue;
                            };
                            if !to.matches(region, &s.region_name, &floors)
                                || !from.matches(p, prev_name_str, &floors)
                            {
                                continue;
                            }
                            self.touch_eval(rule, at);
                            self.eval_state(
                                rule,
                                cmp.holds(flow_count as i64, *count),
                                s,
                                key,
                                at,
                                &mut fired,
                            );
                        }
                    }
                }
            }
        }
        for (sink, alert) in fired {
            if sink.deliver(&alert) {
                self.delivered.fetch_add(1, Ordering::Relaxed);
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(t) = evaluating {
            trips_obs::stage::add_rules_ns(t.elapsed().as_nanos() as u64);
        }
    }

    /// Current device count over every region the selector matches.
    fn occupancy_of(&self, sel: &RegionSel, floors: &HashMap<u32, i16>) -> i64 {
        let occ = self.occupancy.lock();
        match sel {
            RegionSel::Id(id) => occ.get(id).copied().unwrap_or(0),
            _ => {
                let names = self.region_names.read();
                occ.iter()
                    .filter(|(rid, _)| {
                        let name = names.get(rid).map(String::as_str).unwrap_or("");
                        sel.matches(**rid, name, floors)
                    })
                    .map(|(_, n)| *n)
                    .sum()
            }
        }
    }

    fn touch_eval(&self, rule: &Rule, at: i64) {
        rule.evals.fetch_add(1, Ordering::Relaxed);
        rule.last_eval_ms.store(at, Ordering::Relaxed);
        self.evals_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Event conditions: every satisfied evaluation fires.
    fn fire_event(
        &self,
        rule: &Arc<Rule>,
        s: &MobilitySemantics,
        device: &str,
        at: i64,
        fired: &mut Vec<(Arc<dyn AlertSink>, Alert)>,
    ) {
        self.fire(
            rule,
            Some(device),
            Some(s.region.0),
            Some(&s.region_name),
            at,
            fired,
        );
    }

    /// State conditions: rising-edge firing with optional hold, re-armed
    /// when the condition goes false. Event-time hold: the condition must
    /// stay true across `hold_ms` of published timestamps.
    fn eval_state(
        &self,
        rule: &Arc<Rule>,
        cond: bool,
        s: &MobilitySemantics,
        device: &str,
        at: i64,
        fired: &mut Vec<(Arc<dyn AlertSink>, Alert)>,
    ) {
        if !cond {
            rule.active.store(false, Ordering::Relaxed);
            rule.pending_since_ms.store(NO_TS, Ordering::Relaxed);
            return;
        }
        if rule.active.load(Ordering::Relaxed) {
            return;
        }
        match rule.spec.hold_ms {
            None => {
                rule.active.store(true, Ordering::Relaxed);
                self.fire(
                    rule,
                    Some(device),
                    Some(s.region.0),
                    Some(&s.region_name),
                    at,
                    fired,
                );
            }
            Some(hold) => {
                let since = rule.pending_since_ms.load(Ordering::Relaxed);
                if since == NO_TS {
                    rule.pending_since_ms.store(at, Ordering::Relaxed);
                } else if at - since >= hold {
                    rule.active.store(true, Ordering::Relaxed);
                    self.fire(
                        rule,
                        Some(device),
                        Some(s.region.0),
                        Some(&s.region_name),
                        at,
                        fired,
                    );
                }
            }
        }
    }

    fn fire(
        &self,
        rule: &Arc<Rule>,
        device: Option<&str>,
        region: Option<u32>,
        region_name: Option<&str>,
        at: i64,
        fired: &mut Vec<(Arc<dyn AlertSink>, Alert)>,
    ) {
        let seq = rule.fires.fetch_add(1, Ordering::Relaxed) + 1;
        rule.last_fire_ms.store(at, Ordering::Relaxed);
        self.fires_total.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &rule.sink {
            let message = rule.spec.message.clone().unwrap_or_else(|| {
                format!(
                    "rule {} fired{}{}",
                    rule.spec.name,
                    device
                        .map(|d| format!(" for device {d}"))
                        .unwrap_or_default(),
                    region_name
                        .filter(|n| !n.is_empty())
                        .map(|n| format!(" in {n}"))
                        .unwrap_or_default(),
                )
            });
            fired.push((
                sink.clone(),
                Alert {
                    rule_id: rule.id,
                    rule_name: rule.spec.name.clone(),
                    device: device.map(str::to_string),
                    region,
                    region_name: region_name.map(str::to_string),
                    message,
                    at_ms: at,
                    seq,
                },
            ));
        }
    }
}

fn device_matches(pattern: &Option<String>, device: &str) -> bool {
    match pattern {
        None => true,
        Some(glob) => glob_match(glob, device),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sem;

    fn spec(condition: Condition) -> RuleSpec {
        RuleSpec {
            name: String::new(),
            priority: 0,
            condition,
            hold_ms: None,
            message: None,
            source: String::new(),
        }
    }

    #[test]
    fn enters_fires_on_region_transitions_only() {
        let engine = RuleEngine::new();
        let sink = CollectingSink::new();
        let id = engine
            .register(
                spec(Condition::Enters {
                    device: None,
                    region: RegionSel::Name("lab-*".into()),
                }),
                Some(sink.clone()),
            )
            .unwrap();
        let d = DeviceId::new("dev-1");
        engine.publish(&d, &[sem("dev-1", 1, "lab-a", "stay", 0, 60)]);
        engine.publish(&d, &[sem("dev-1", 1, "lab-a", "stay", 60, 120)]); // same region: no edge
        engine.publish(&d, &[sem("dev-1", 2, "atrium", "pass-by", 120, 130)]);
        engine.publish(&d, &[sem("dev-1", 3, "lab-b", "stay", 130, 200)]);
        let alerts = sink.take();
        assert_eq!(alerts.len(), 2, "lab-a entry + lab-b entry: {alerts:?}");
        assert_eq!(alerts[0].rule_id, id);
        assert_eq!(alerts[0].region_name.as_deref(), Some("lab-a"));
        assert_eq!(alerts[1].region_name.as_deref(), Some("lab-b"));
        assert_eq!(alerts[1].seq, 2);
        let t = &engine.traces()[0];
        assert_eq!((t.fires, t.id), (2, id));
        assert_eq!(t.last_fire_ms, Some(200_000));
    }

    #[test]
    fn dwell_threshold_and_device_glob() {
        let engine = RuleEngine::new();
        let sink = CollectingSink::new();
        engine
            .register(
                spec(Condition::Dwells {
                    device: Some("a.*".into()),
                    region: RegionSel::Id(7),
                    cmp: CmpOp::Gt,
                    threshold_ms: 90_000,
                }),
                Some(sink.clone()),
            )
            .unwrap();
        // Short stay: evaluated, no fire.
        engine.publish(
            &DeviceId::new("a.1"),
            &[sem("a.1", 7, "vault", "stay", 0, 60)],
        );
        // Long stay, wrong device: not evaluated.
        engine.publish(
            &DeviceId::new("b.1"),
            &[sem("b.1", 7, "vault", "stay", 0, 600)],
        );
        // Long stay, matching: fires.
        engine.publish(
            &DeviceId::new("a.2"),
            &[sem("a.2", 7, "vault", "stay", 0, 600)],
        );
        // Pass-by is not a dwell.
        engine.publish(
            &DeviceId::new("a.3"),
            &[sem("a.3", 7, "vault", "pass-by", 0, 600)],
        );
        let alerts = sink.take();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].device.as_deref(), Some("a.2"));
        let t = &engine.traces()[0];
        assert_eq!((t.evals, t.fires), (2, 1));
    }

    #[test]
    fn occupancy_rising_edge_and_rearm() {
        let engine = RuleEngine::new();
        let sink = CollectingSink::new();
        engine
            .register(
                spec(Condition::Occupancy {
                    region: RegionSel::Id(5),
                    cmp: CmpOp::Ge,
                    count: 2,
                }),
                Some(sink.clone()),
            )
            .unwrap();
        let (a, b) = (DeviceId::new("a"), DeviceId::new("b"));
        engine.publish(&a, &[sem("a", 5, "hall", "stay", 0, 10)]);
        assert!(sink.is_empty(), "occupancy 1 < 2");
        engine.publish(&b, &[sem("b", 5, "hall", "stay", 0, 20)]);
        assert_eq!(sink.len(), 1, "rising edge at occupancy 2");
        // Still satisfied → no re-fire.
        engine.publish(&a, &[sem("a", 5, "hall", "stay", 20, 30)]);
        assert_eq!(sink.len(), 1);
        // b leaves (occupancy 1 → condition false → re-arm), then returns.
        engine.publish(&b, &[sem("b", 9, "exit", "pass-by", 30, 40)]);
        engine.publish(&b, &[sem("b", 5, "hall", "stay", 40, 50)]);
        assert_eq!(sink.len(), 2, "re-fires after re-arm");
    }

    #[test]
    fn occupancy_hold_is_event_time() {
        let engine = RuleEngine::new();
        let sink = CollectingSink::new();
        engine
            .register(
                RuleSpec {
                    hold_ms: Some(300_000), // FOR 5m
                    ..spec(Condition::Occupancy {
                        region: RegionSel::Id(5),
                        cmp: CmpOp::Ge,
                        count: 1,
                    })
                },
                Some(sink.clone()),
            )
            .unwrap();
        let a = DeviceId::new("a");
        engine.publish(&a, &[sem("a", 5, "hall", "stay", 0, 10)]);
        assert!(sink.is_empty(), "condition true but hold not elapsed");
        // Another device keeps touching the region with later timestamps.
        engine.publish(&DeviceId::new("b"), &[sem("b", 5, "hall", "stay", 0, 200)]);
        assert!(sink.is_empty(), "200s < 5m hold");
        engine.publish(&DeviceId::new("c"), &[sem("c", 5, "hall", "stay", 0, 400)]);
        assert_eq!(sink.len(), 1, "held >= 5m in event time");
    }

    #[test]
    fn flow_threshold_counts_directed_transitions() {
        let engine = RuleEngine::new();
        let sink = CollectingSink::new();
        engine
            .register(
                spec(Condition::Flow {
                    from: RegionSel::Id(1),
                    to: RegionSel::Id(2),
                    cmp: CmpOp::Ge,
                    count: 2,
                }),
                Some(sink.clone()),
            )
            .unwrap();
        for (i, dev) in ["a", "b", "c"].iter().enumerate() {
            let d = DeviceId::new(dev);
            let t = i as i64 * 100;
            engine.publish(&d, &[sem(dev, 1, "shop", "stay", t, t + 10)]);
            engine.publish(&d, &[sem(dev, 2, "hall", "pass-by", t + 10, t + 20)]);
        }
        // Threshold 2 crossed on the second a→b transition; >= stays true
        // afterwards so the edge fires exactly once.
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn priority_orders_delivery_and_traces() {
        let engine = RuleEngine::new();
        let sink = CollectingSink::new();
        let mk = |name: &str, priority: i32| RuleSpec {
            name: name.into(),
            priority,
            ..spec(Condition::Enters {
                device: None,
                region: RegionSel::Name("*".into()),
            })
        };
        engine.register(mk("low", 1), Some(sink.clone())).unwrap();
        engine.register(mk("high", 9), Some(sink.clone())).unwrap();
        engine.register(mk("mid", 5), Some(sink.clone())).unwrap();
        engine.publish(&DeviceId::new("d"), &[sem("d", 1, "x", "stay", 0, 1)]);
        let names: Vec<String> = sink.take().into_iter().map(|a| a.rule_name).collect();
        assert_eq!(names, ["high", "mid", "low"]);
        let trace_names: Vec<String> = engine.traces().into_iter().map(|t| t.name).collect();
        assert_eq!(trace_names, ["high", "mid", "low"]);
    }

    #[test]
    fn floor_selector_uses_installed_map() {
        let engine = RuleEngine::new();
        engine.set_region_floors([(RegionId(1), 0), (RegionId(2), 2), (RegionId(3), 2)]);
        let sink = CollectingSink::new();
        engine
            .register(
                spec(Condition::Occupancy {
                    region: RegionSel::Floor(2),
                    cmp: CmpOp::Ge,
                    count: 2,
                }),
                Some(sink.clone()),
            )
            .unwrap();
        engine.publish(&DeviceId::new("a"), &[sem("a", 2, "f2-a", "stay", 0, 1)]);
        engine.publish(&DeviceId::new("b"), &[sem("b", 1, "f0", "stay", 0, 2)]);
        assert!(sink.is_empty(), "floor-0 region must not count");
        engine.publish(&DeviceId::new("c"), &[sem("c", 3, "f2-b", "stay", 0, 3)]);
        assert_eq!(sink.len(), 1, "two devices across floor-2 regions");
    }

    #[test]
    fn unregister_and_limit_and_hold_validation() {
        let engine = RuleEngine::new();
        engine.set_limit(2);
        let enters = || {
            spec(Condition::Enters {
                device: None,
                region: RegionSel::Id(1),
            })
        };
        let a = engine.register(enters(), None).unwrap();
        let _b = engine.register(enters(), None).unwrap();
        assert_eq!(
            engine.register(enters(), None),
            Err(RuleError::TooManyRules { limit: 2 })
        );
        assert!(engine.unregister(a));
        assert!(!engine.unregister(a), "double unregister is false");
        assert_eq!(engine.rule_count(), 1);
        assert_eq!(
            engine.register(
                RuleSpec {
                    hold_ms: Some(1000),
                    ..enters()
                },
                None
            ),
            Err(RuleError::HoldOnEventCondition)
        );
    }

    #[test]
    fn device_gone_releases_occupancy() {
        let engine = RuleEngine::new();
        let sink = CollectingSink::new();
        engine
            .register(
                spec(Condition::Occupancy {
                    region: RegionSel::Id(5),
                    cmp: CmpOp::Ge,
                    count: 2,
                }),
                Some(sink.clone()),
            )
            .unwrap();
        let (a, b) = (DeviceId::new("a"), DeviceId::new("b"));
        engine.publish(&a, &[sem("a", 5, "hall", "stay", 0, 10)]);
        engine.device_gone(&a);
        engine.publish(&b, &[sem("b", 5, "hall", "stay", 10, 20)]);
        assert!(
            sink.is_empty(),
            "a left before b arrived: occupancy never 2"
        );
        engine.publish(&a, &[sem("a", 5, "hall", "stay", 20, 30)]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn zero_rules_is_a_noop_and_tracks_nothing() {
        let engine = RuleEngine::new();
        engine.publish(&DeviceId::new("a"), &[sem("a", 5, "hall", "stay", 0, 10)]);
        assert!(engine.occupancy.lock().is_empty());
        assert!(engine.device_regions.iter().all(|s| s.lock().is_empty()));
    }
}
