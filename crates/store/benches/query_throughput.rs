//! Query throughput under live ingest: concurrent readers vs a writer.
//!
//! Translates a multi-building campus (`trips-sim::generate_campus`),
//! ingests half of the devices, then fans out — via
//! `trips_engine::run_indexed` — one writer (ingesting the second half)
//! plus N reader threads hammering the `SemanticsStore` query mix
//! (popular regions, flows, dwell histograms, device summaries, filtered
//! selections). Per-query latencies are collected per reader with
//! `trips_engine::LatencyRecorder` and reduced to ops/sec + p50/p99.
//!
//! This is a custom `harness = false` binary (not criterion) because the
//! perf-smoke CI gate needs machine-readable output and an exit code:
//!
//! ```text
//! cargo bench -p trips-store --bench query_throughput -- \
//!     --quick --out BENCH_store.json --baseline crates/store/benches/baseline.json
//! ```
//!
//! * `--quick` — smaller dataset + fewer iterations (CI smoke mode)
//! * `--out PATH` — write the result JSON (default `BENCH_store.json`)
//! * `--baseline P` — compare against a committed baseline JSON; exit 1 if
//!   `ops_per_sec` falls more than `--max-regress` (default 0.20, i.e.
//!   >20% regression) below the baseline
//!
//! The committed baseline is a conservative floor (shared CI runners are an
//! order of magnitude slower and noisier than dev machines); re-derive it
//! from a CI run's `BENCH_store.json` artifact when the store's query paths
//! change deliberately.

use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use trips_annotate::MobilitySemantics;
use trips_core::{Translator, TranslatorConfig};
use trips_data::{DeviceId, Duration, Timestamp};
use trips_dsm::RegionId;
use trips_engine::{run_indexed, LatencyRecorder};
use trips_sim::ScenarioConfig;
use trips_store::{SemanticsSelector, SemanticsStore};

struct Options {
    quick: bool,
    out: String,
    baseline: Option<String>,
    max_regress: f64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        out: "BENCH_store.json".to_string(),
        baseline: None,
        max_regress: 0.20,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--baseline" => opts.baseline = Some(args.next().expect("--baseline needs a path")),
            "--max-regress" => {
                opts.max_regress = args
                    .next()
                    .expect("--max-regress needs a fraction")
                    .parse()
                    .expect("--max-regress must be a float")
            }
            // cargo itself appends `--bench` when running bench targets.
            "--bench" => {}
            other => {
                // A typo'd flag silently ignored would disable the perf
                // gate while CI stays green — refuse instead.
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: query_throughput [--quick] [--out PATH] [--baseline PATH] [--max-regress FRACTION]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Campus translation → per-device semantics, with region ids offset per
/// building (each building has its own DSM, so raw region ids collide
/// campus-wide; a shared store needs them namespaced).
fn build_workload(quick: bool) -> Vec<(DeviceId, Vec<MobilitySemantics>)> {
    let (buildings, floors, shops, devices) = if quick { (2, 1, 3, 8) } else { (3, 2, 4, 16) };
    let campus = trips_sim::scenario::generate_campus(
        buildings,
        floors,
        shops,
        &ScenarioConfig {
            devices,
            days: 1,
            seed: 0xBEC4,
            ..ScenarioConfig::default()
        },
    );
    let mut workload = Vec::new();
    for (b, building) in campus.buildings.iter().enumerate() {
        let ds = &building.dataset;
        let editor = trips_bench::editor_from_truth(ds, ds.traces.len());
        let translator =
            Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard()).unwrap();
        let result = translator.translate(&ds.sequences());
        let offset = b as u32 * 100_000;
        for d in &result.devices {
            let sems: Vec<MobilitySemantics> = d
                .semantics
                .iter()
                .map(|s| {
                    let mut s = s.clone();
                    s.region = RegionId(s.region.0 + offset);
                    s.region_name = format!("{}/{}", building.name, s.region_name);
                    s
                })
                .collect();
            workload.push((d.raw.device().clone(), sems));
        }
    }
    workload
}

enum Task {
    Writer(Vec<(DeviceId, Vec<MobilitySemantics>)>),
    Reader { iters: usize },
}

fn run_reader_iteration(store: &SemanticsStore, i: usize) {
    let all = SemanticsSelector::all();
    match i % 6 {
        0 => {
            black_box(store.popular_regions(&all));
        }
        1 => {
            black_box(store.top_flows(&all, 10));
        }
        2 => {
            black_box(store.dwell_histogram(&all, Duration::from_mins(5)));
        }
        3 => {
            black_box(store.device_summaries(&all));
        }
        4 => {
            let sel = SemanticsSelector::all().with_device_pattern("b0.*");
            black_box(store.popular_regions(&sel));
        }
        _ => {
            let sel = SemanticsSelector::all().between(
                Timestamp::from_dhms(0, 10, 0, 0),
                Timestamp::from_dhms(0, 16, 0, 0),
            );
            black_box(store.semantics(&sel));
        }
    }
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    quick: bool,
    readers: usize,
    queries: usize,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    mean_us: f64,
    wall_ms: f64,
    devices: usize,
    semantics: usize,
    shards: usize,
}

fn main() {
    let opts = parse_args();
    let (readers, iters) = if opts.quick { (4, 1500) } else { (8, 5000) };

    eprintln!(
        "query_throughput: building {} campus workload...",
        if opts.quick { "quick" } else { "full" }
    );
    let workload = build_workload(opts.quick);
    let store = SemanticsStore::new();

    // Phase A: half the devices are already resident before readers start.
    let half = workload.len() / 2;
    for (device, sems) in &workload[..half] {
        store.ingest(device, sems);
    }

    // Phase B: one writer ingests the rest while `readers` threads query.
    let mut tasks: Vec<Task> = vec![Task::Writer(workload[half..].to_vec())];
    tasks.extend((0..readers).map(|_| Task::Reader { iters }));
    let wall_start = Instant::now();
    let per_task: Vec<Option<LatencyRecorder>> =
        run_indexed(tasks.len(), &tasks, |_, task| match task {
            Task::Writer(batch) => {
                let t0 = Instant::now();
                for (device, sems) in batch {
                    store.ingest(device, sems);
                }
                eprintln!(
                    "query_throughput: writer ingested {} devices in {:?}",
                    batch.len(),
                    t0.elapsed()
                );
                None
            }
            Task::Reader { iters } => {
                let mut rec = LatencyRecorder::new();
                for i in 0..*iters {
                    let t0 = Instant::now();
                    run_reader_iteration(&store, i);
                    rec.record(t0.elapsed());
                }
                Some(rec)
            }
        });
    let wall = wall_start.elapsed();

    let mut merged = LatencyRecorder::new();
    for rec in per_task.into_iter().flatten() {
        merged.merge(rec);
    }
    let summary = merged.summary(wall);

    // Sanity: the store must hold the full campus after the run.
    assert_eq!(store.device_count(), workload.len(), "ingest incomplete");
    assert!(
        !store.popular_regions(&SemanticsSelector::all()).is_empty(),
        "store served no aggregates"
    );
    assert_eq!(summary.count, readers * iters, "reader iterations lost");

    let report = BenchReport {
        bench: "store_query_throughput".to_string(),
        quick: opts.quick,
        readers,
        queries: summary.count,
        ops_per_sec: summary.ops_per_sec,
        p50_us: summary.p50.as_secs_f64() * 1e6,
        p99_us: summary.p99.as_secs_f64() * 1e6,
        max_us: summary.max.as_secs_f64() * 1e6,
        mean_us: summary.mean.as_secs_f64() * 1e6,
        wall_ms: wall.as_secs_f64() * 1e3,
        devices: store.device_count(),
        semantics: store.semantics_count(),
        shards: store.shard_count(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, &json).expect("write report");
    println!(
        "store_query_throughput: {} queries across {} readers in {:.2?} -> {:.0} ops/sec, p50 {:.0} us, p99 {:.0} us ({} devices, {} semantics, {} shards)",
        summary.count,
        readers,
        wall,
        summary.ops_per_sec,
        report.p50_us,
        report.p99_us,
        report.devices,
        report.semantics,
        report.shards,
    );
    println!("report written to {}", opts.out);

    if let Some(baseline_path) = &opts.baseline {
        // Cargo runs bench binaries with CWD at the package root; accept
        // workspace-root-relative paths too by retrying against the
        // workspace root (the crate's grandparent directory).
        let mut path = std::path::PathBuf::from(baseline_path);
        if !path.exists() {
            let workspace = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("crate lives two levels under the workspace root");
            path = workspace.join(baseline_path);
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", path.display());
            std::process::exit(2);
        });
        let value: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline_ops = value
            .get("ops_per_sec")
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| {
                eprintln!("baseline {baseline_path} has no numeric ops_per_sec");
                std::process::exit(2);
            });
        let floor = baseline_ops * (1.0 - opts.max_regress);
        println!(
            "baseline: {baseline_ops:.0} ops/sec, floor at -{:.0}%: {floor:.0} ops/sec",
            opts.max_regress * 100.0
        );
        if summary.ops_per_sec < floor {
            eprintln!(
                "PERF REGRESSION: {:.0} ops/sec is below the floor {floor:.0} \
                 (baseline {baseline_ops:.0}, allowed regression {:.0}%)",
                summary.ops_per_sec,
                opts.max_regress * 100.0
            );
            std::process::exit(1);
        }
        println!("perf gate passed");
    }
}
