//! Concurrent ingest/query correctness: 8 writer threads publish while 8
//! reader threads query; the final aggregates must equal a serial ingest
//! of the same records — the engine's parallel-equals-serial pattern,
//! applied to the store.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use trips_annotate::MobilitySemantics;
use trips_data::{DeviceId, Duration, Timestamp};
use trips_dsm::RegionId;
use trips_store::{SemanticsSelector, SemanticsStore};

const WRITERS: usize = 8;
const READERS: usize = 8;
const DEVICES_PER_WRITER: usize = 8;
const SEMANTICS_PER_DEVICE: usize = 40;
const REGIONS: u32 = 6;

fn sem(device: &DeviceId, region: u32, event: &str, start_s: i64, end_s: i64) -> MobilitySemantics {
    MobilitySemantics {
        device: device.clone(),
        event: event.into(),
        region: RegionId(region),
        region_name: format!("Region-{region}"),
        start: Timestamp::from_millis(start_s * 1000),
        end: Timestamp::from_millis(end_s * 1000),
        inferred: false,
        display_point: None,
    }
}

/// Deterministic synthetic workload: every writer owns a disjoint device
/// set; each device's semantics mix stays and pass-bys over the regions.
fn workload() -> Vec<Vec<(DeviceId, Vec<MobilitySemantics>)>> {
    (0..WRITERS)
        .map(|w| {
            (0..DEVICES_PER_WRITER)
                .map(|d| {
                    let device = DeviceId::new(&format!("w{w}.dev.{d:02}"));
                    let sems = (0..SEMANTICS_PER_DEVICE)
                        .map(|i| {
                            let region = ((w + d * 3 + i * 7) as u32) % REGIONS;
                            let event = if (w + d + i) % 3 == 0 {
                                "pass-by"
                            } else {
                                "stay"
                            };
                            let start = (i * 120) as i64;
                            let dur = 30 + ((w * 13 + d * 7 + i) % 90) as i64;
                            sem(&device, region, event, start, start + dur)
                        })
                        .collect();
                    (device, sems)
                })
                .collect()
        })
        .collect()
}

fn assert_stores_equal(a: &SemanticsStore, b: &SemanticsStore) {
    let all = SemanticsSelector::all();
    assert_eq!(a.popular_regions(&all), b.popular_regions(&all));
    assert_eq!(a.top_flows(&all, 100), b.top_flows(&all, 100));
    assert_eq!(
        a.dwell_histogram(&all, Duration::from_mins(1)),
        b.dwell_histogram(&all, Duration::from_mins(1))
    );
    assert_eq!(a.device_summaries(&all), b.device_summaries(&all));
    assert_eq!(a.semantics(&all), b.semantics(&all));
    assert_eq!(a.device_count(), b.device_count());
    assert_eq!(a.semantics_count(), b.semantics_count());
}

#[test]
fn concurrent_ingest_with_readers_equals_serial_ingest() {
    let data = workload();

    // Serial reference: one thread, one shard, batch ingest.
    let serial = SemanticsStore::with_shards(1);
    for writer_batch in &data {
        for (device, sems) in writer_batch {
            serial.ingest(device, sems);
        }
    }

    // Concurrent run: 8 writers (each splitting every device's semantics
    // into three incremental batches) racing 8 readers.
    let concurrent = Arc::new(SemanticsStore::with_shards(16));
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for writer_batch in &data {
            let store = Arc::clone(&concurrent);
            scope.spawn(move || {
                for (device, sems) in writer_batch {
                    let third = sems.len() / 3;
                    store.ingest(device, &sems[..third]);
                    store.ingest(device, &sems[third..2 * third]);
                    store.ingest(device, &sems[2 * third..]);
                }
            });
        }
        for r in 0..READERS {
            let store = Arc::clone(&concurrent);
            let done = &done;
            scope.spawn(move || {
                let all = SemanticsSelector::all();
                let mut iterations = 0usize;
                let mut last_count = 0usize;
                while !done.load(Ordering::Acquire) || iterations == 0 {
                    // Mid-ingest reads must be internally consistent even
                    // though they observe a moving store.
                    match r % 4 {
                        0 => {
                            for p in store.popular_regions(&all) {
                                assert!(p.unique_stayers <= WRITERS * DEVICES_PER_WRITER);
                                assert!(p.region.0 < REGIONS);
                            }
                        }
                        1 => {
                            let stats = store.stats();
                            assert!(stats.devices >= last_count, "device count regressed");
                            last_count = stats.devices;
                        }
                        2 => {
                            let sel = SemanticsSelector::all().with_device_pattern("w3.*");
                            for (d, _) in store.device_summaries(&sel) {
                                assert!(d.as_str().starts_with("w3."));
                            }
                        }
                        _ => {
                            let h = store.dwell_histogram(&all, Duration::from_mins(1));
                            assert!(h.iter().all(|(_, n)| *n > 0));
                        }
                    }
                    iterations += 1;
                }
                assert!(iterations > 0);
            });
        }
        // Writers are the first WRITERS spawned threads; there is no join
        // handle bookkeeping needed — scope joins everything. The done
        // flag only needs to flip after writers finish, so spawn a watcher
        // that polls the store for completeness.
        let expected = WRITERS * DEVICES_PER_WRITER * SEMANTICS_PER_DEVICE;
        let store = Arc::clone(&concurrent);
        let done = &done;
        scope.spawn(move || {
            while store.semantics_count() < expected {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    assert_eq!(
        concurrent.device_count(),
        WRITERS * DEVICES_PER_WRITER,
        "every writer's devices landed"
    );
    assert_stores_equal(&concurrent, &serial);

    // And the shard distribution actually spread the load: with 64 devices
    // over 16 shards, at least a handful of shards must be populated.
    let populated = concurrent
        .stats()
        .devices_per_shard
        .iter()
        .filter(|n| **n > 0)
        .count();
    assert!(
        populated >= 4,
        "suspicious shard skew: {:?}",
        concurrent.stats()
    );
}

#[test]
fn concurrent_snapshot_while_writing_is_consistent() {
    // persist() under concurrent ingest must produce *some* loadable
    // prefix-consistent snapshot (each device appears with a prefix of its
    // final semantics, since per-device batches are atomic per shard lock).
    let data = workload();
    let store = Arc::new(SemanticsStore::with_shards(8));
    let snap_path = std::env::temp_dir().join(format!(
        "trips-store-concurrent-snap-{}.json",
        std::process::id()
    ));
    std::thread::scope(|scope| {
        for writer_batch in &data {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for (device, sems) in writer_batch {
                    for chunk in sems.chunks(10) {
                        store.ingest(device, chunk);
                    }
                }
            });
        }
        let store = Arc::clone(&store);
        let path = snap_path.clone();
        scope.spawn(move || {
            store.persist(&path).expect("mid-ingest snapshot persists");
        });
    });
    let snapshot = SemanticsStore::load(&snap_path).expect("mid-ingest snapshot loads");
    let _ = std::fs::remove_file(&snap_path);
    let all = SemanticsSelector::all();
    let final_sems = store.semantics(&all);
    for s in snapshot.semantics(&all) {
        assert!(final_sems.contains(&s), "snapshot held unknown semantics");
    }
    assert!(snapshot.semantics_count() <= store.semantics_count());
}
