//! Crash-recovery properties of the durable store: for any kill point
//! (simulated with torn/truncated WAL tails), recovery yields a store
//! whose query results equal a store that received exactly the acked
//! operations — no acked batch lost, no unacked batch resurrected.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use trips_annotate::MobilitySemantics;
use trips_data::{DeviceId, Duration, Timestamp};
use trips_dsm::RegionId;
use trips_store::{
    boot_store, DurabilityConfig, FsyncPolicy, SemanticsSelector, SemanticsStore,
    SemanticsStoreError,
};

static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("trips-store-dur-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn sem(device: &str, region: u32, event: &str, start_s: i64, end_s: i64) -> MobilitySemantics {
    MobilitySemantics {
        device: DeviceId::new(device),
        event: event.into(),
        region: RegionId(region),
        region_name: format!("R{region}"),
        start: Timestamp::from_millis(start_s * 1000),
        end: Timestamp::from_millis(end_s * 1000),
        inferred: false,
        display_point: None,
    }
}

/// The op script both the durable store and the in-memory control
/// execute. Returned as (device, batch) pairs plus interleaved
/// register/end-session calls driven by index.
fn run_script(store: &SemanticsStore, upto: usize) {
    let ops = script();
    for op in ops.into_iter().take(upto) {
        op.apply(store);
    }
}

enum Op {
    Ingest(&'static str, Vec<MobilitySemantics>),
    Register(&'static str),
    EndSession(&'static str),
}

impl Op {
    fn apply(&self, store: &SemanticsStore) {
        match self {
            Op::Ingest(d, batch) => store.ingest(&DeviceId::new(d), batch),
            Op::Register(d) => store.register_device(&DeviceId::new(d)),
            Op::EndSession(d) => store.end_session(&DeviceId::new(d)),
        }
    }
}

fn script() -> Vec<Op> {
    vec![
        Op::Ingest("dev-a", vec![sem("dev-a", 1, "stay", 0, 600)]),
        Op::Ingest(
            "dev-b",
            vec![
                sem("dev-b", 1, "stay", 0, 300),
                sem("dev-b", 2, "pass-by", 300, 330),
            ],
        ),
        Op::Register("silent"),
        Op::EndSession("dev-a"),
        Op::Ingest("dev-a", vec![sem("dev-a", 2, "pass-by", 700, 730)]),
        Op::Ingest("dev-b", vec![sem("dev-b", 3, "stay", 400, 900)]),
        Op::EndSession("dev-b"),
        Op::Ingest("dev-c", vec![sem("dev-c", 1, "stay", 100, 500)]),
    ]
}

/// Every query surface must agree between two stores.
fn assert_equivalent(got: &SemanticsStore, want: &SemanticsStore, ctx: &str) {
    let all = SemanticsSelector::all();
    assert_eq!(got.device_count(), want.device_count(), "{ctx}: devices");
    assert_eq!(
        got.semantics_count(),
        want.semantics_count(),
        "{ctx}: semantics"
    );
    assert_eq!(
        got.popular_regions(&all),
        want.popular_regions(&all),
        "{ctx}: popular regions"
    );
    assert_eq!(
        got.top_flows(&all, 50),
        want.top_flows(&all, 50),
        "{ctx}: flows"
    );
    assert_eq!(
        got.dwell_histogram(&all, Duration::from_mins(1)),
        want.dwell_histogram(&all, Duration::from_mins(1)),
        "{ctx}: dwell"
    );
    assert_eq!(
        got.device_summaries(&all),
        want.device_summaries(&all),
        "{ctx}: summaries"
    );
    assert_eq!(
        got.semantics(&all),
        want.semantics(&all),
        "{ctx}: semantics bodies"
    );
}

fn last_segment(dir: &std::path::Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs.last().unwrap().clone()
}

#[test]
fn recovery_without_checkpoint_equals_never_crashed_store() {
    for fsync in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(4),
        FsyncPolicy::Never,
    ] {
        let dir = TempDir::new("plain");
        let config = DurabilityConfig {
            fsync,
            ..DurabilityConfig::new(&dir.0)
        };
        {
            let (durable, report) = SemanticsStore::recover(&config, 4).unwrap();
            assert!(!report.snapshot_loaded);
            assert_eq!(report.replayed_records, 0);
            run_script(&durable, usize::MAX);
        } // drop = process exit (WAL synced best-effort on drop)

        let control = SemanticsStore::with_shards(4);
        run_script(&control, usize::MAX);

        let (recovered, report) = SemanticsStore::recover(&config, 4).unwrap();
        assert!(!report.torn_tail_truncated, "{fsync}: clean shutdown");
        assert!(report.replayed_records > 0, "{fsync}");
        assert_equivalent(&recovered, &control, &format!("fsync {fsync}"));

        // Pinned byte-equivalence: re-persisting both stores produces
        // identical snapshot documents.
        let a = dir.0.join("recovered.json");
        let b = dir.0.join("control.json");
        recovered.persist(&a).unwrap();
        control.persist(&b).unwrap();
        assert_eq!(
            fs::read(&a).unwrap(),
            fs::read(&b).unwrap(),
            "{fsync}: byte-identical persisted state"
        );
    }
}

/// Simulates a crash mid-append at every possible record boundary: a
/// tail truncated inside record k recovers to exactly the first k ops.
#[test]
fn torn_tail_recovers_to_exactly_the_acked_prefix() {
    let total_ops = script().len();
    let dir = TempDir::new("torn");
    let config = DurabilityConfig::new(&dir.0);
    {
        let (durable, _) = SemanticsStore::recover(&config, 4).unwrap();
        run_script(&durable, usize::MAX);
        durable.sync_wal().unwrap();
    }
    let seg = last_segment(&dir.0);
    let full = fs::read(&seg).unwrap();

    // Find each frame boundary by walking the log (header 16, frames are
    // 8 + len).
    let mut boundaries = vec![16usize];
    let mut off = 16usize;
    while off < full.len() {
        let len = u32::from_le_bytes(full[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        boundaries.push(off);
    }
    assert_eq!(boundaries.len() - 1, total_ops, "one frame per op");

    for k in 0..total_ops {
        // Crash inside record k+1: keep k whole frames plus a partial.
        let cut = boundaries[k + 1] - 3;
        let scratch = TempDir::new(&format!("torn-{k}"));
        let scratch_config = DurabilityConfig::new(&scratch.0);
        fs::create_dir_all(&scratch.0).unwrap();
        fs::write(scratch.0.join(seg.file_name().unwrap()), &full[..cut]).unwrap();

        let control = SemanticsStore::with_shards(4);
        run_script(&control, k);

        let (recovered, report) = SemanticsStore::recover(&scratch_config, 4).unwrap();
        assert!(report.torn_tail_truncated, "kill point {k}");
        assert_eq!(report.replayed_records, k as u64, "kill point {k}");
        assert_equivalent(&recovered, &control, &format!("kill point {k}"));
    }
}

#[test]
fn checkpoint_compacts_and_recovery_replays_only_newer_segments() {
    let dir = TempDir::new("checkpoint");
    let config = DurabilityConfig::new(&dir.0);
    let control = SemanticsStore::with_shards(4);
    {
        let (durable, _) = SemanticsStore::recover(&config, 4).unwrap();
        run_script(&durable, 5);
        run_script(&control, 5);

        assert!(durable
            .wal_stats()
            .unwrap()
            .last_checkpoint_age_ms
            .is_none());
        let report = durable.checkpoint().unwrap();
        assert_eq!(report.snapshot_path, config.snapshot_path());
        assert!(report.snapshot_path.exists());
        assert_eq!(report.retired_segments, 1, "pre-checkpoint segment gone");

        let stats = durable.wal_stats().unwrap();
        assert_eq!(stats.records_since_checkpoint, 0);
        assert!(stats.last_checkpoint_age_ms.is_some());

        // Post-checkpoint mutations land in the new segment only.
        for op in script().into_iter().skip(5) {
            op.apply(&durable);
        }
        for op in script().into_iter().skip(5) {
            op.apply(&control);
        }
    }

    let (recovered, report) = SemanticsStore::recover(&config, 4).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(
        report.replayed_records, 3,
        "only the 3 post-checkpoint ops replay"
    );
    assert!(report.checkpoint_seq >= 2);
    assert_equivalent(&recovered, &control, "checkpointed recovery");
}

#[test]
fn clear_is_journaled_and_does_not_resurrect() {
    let dir = TempDir::new("clear");
    let config = DurabilityConfig::new(&dir.0);
    {
        let (durable, _) = SemanticsStore::recover(&config, 4).unwrap();
        run_script(&durable, usize::MAX);
        durable.clear();
        durable.ingest(
            &DeviceId::new("post-clear"),
            &[sem("post-clear", 9, "stay", 0, 60)],
        );
    }
    let (recovered, _) = SemanticsStore::recover(&config, 4).unwrap();
    assert_eq!(recovered.device_count(), 1, "cleared devices stay cleared");
    assert_eq!(recovered.semantics_count(), 1);
}

#[test]
fn mid_log_corruption_is_a_typed_error() {
    let dir = TempDir::new("midlog");
    let config = DurabilityConfig {
        segment_bytes: 128, // force several segments
        ..DurabilityConfig::new(&dir.0)
    };
    {
        let (durable, _) = SemanticsStore::recover(&config, 4).unwrap();
        for i in 0..30 {
            durable.ingest(
                &DeviceId::new(&format!("d{i}")),
                &[sem(&format!("d{i}"), i, "stay", 0, 60)],
            );
        }
    }
    // Corrupt a byte in the FIRST segment (not the tail).
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segs.sort();
    assert!(segs.len() >= 3, "need a mid-log segment");
    let mut data = fs::read(&segs[0]).unwrap();
    let n = data.len();
    data[n / 2] ^= 0x40;
    fs::write(&segs[0], &data).unwrap();

    let err = SemanticsStore::recover(&config, 4).unwrap_err();
    assert!(matches!(err, SemanticsStoreError::Wal(_)), "{err}");
}

#[test]
fn boot_store_covers_every_configuration() {
    // Neither: empty store.
    let (store, report) = boot_store(None, None, 8).unwrap();
    assert!(store.is_empty() && !store.is_durable() && report.is_none());
    assert_eq!(store.shard_count(), 8);

    // Snapshot only.
    let dir = TempDir::new("bootsnap");
    fs::create_dir_all(&dir.0).unwrap();
    let seeded = SemanticsStore::with_shards(4);
    seeded.ingest(&DeviceId::new("a"), &[sem("a", 1, "stay", 0, 600)]);
    let snap = dir.0.join("boot.json");
    seeded.persist(&snap).unwrap();
    let (store, report) = boot_store(None, Some(&snap), 0).unwrap();
    assert_eq!(store.semantics_count(), 1);
    assert!(!store.is_durable() && report.is_none());

    // Durability only.
    let config = DurabilityConfig::new(dir.0.join("wal"));
    let (store, report) = boot_store(Some(&config), None, 4).unwrap();
    assert!(store.is_durable());
    assert!(report.is_some());
    drop(store);

    // Both: a configuration error.
    let err = boot_store(Some(&config), Some(&snap), 4).unwrap_err();
    assert!(matches!(err, SemanticsStoreError::Config(_)), "{err}");

    // Checkpoint on a non-durable store: typed error.
    let plain = SemanticsStore::with_shards(4);
    assert!(matches!(
        plain.checkpoint().unwrap_err(),
        SemanticsStoreError::NotDurable
    ));
    assert!(plain.wal_stats().is_none());
    plain.sync_wal().unwrap();
}

/// Concurrent durable writers: the WAL absorbs a multi-threaded ingest
/// and recovery still equals a serial control run (per-device order is
/// what matters; devices are independent).
#[test]
fn concurrent_durable_ingest_recovers_equivalent() {
    let dir = TempDir::new("concurrent");
    let config = DurabilityConfig::new(&dir.0);
    let control = SemanticsStore::with_shards(8);
    {
        let (durable, _) = SemanticsStore::recover(&config, 8).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let durable = &durable;
                s.spawn(move || {
                    for i in 0..25 {
                        let id = format!("w{t}-d{}", i % 5);
                        durable.ingest(
                            &DeviceId::new(&id),
                            &[sem(
                                &id,
                                (t * 31 + i) as u32 % 7,
                                "stay",
                                i as i64 * 10,
                                i as i64 * 10 + 5,
                            )],
                        );
                    }
                });
            }
        });
        for t in 0..4 {
            for i in 0..25 {
                let id = format!("w{t}-d{}", i % 5);
                control.ingest(
                    &DeviceId::new(&id),
                    &[sem(
                        &id,
                        (t * 31 + i) as u32 % 7,
                        "stay",
                        i as i64 * 10,
                        i as i64 * 10 + 5,
                    )],
                );
            }
        }
    }
    let (recovered, report) = SemanticsStore::recover(&config, 8).unwrap();
    assert_eq!(report.replayed_records, 100);
    assert_equivalent(&recovered, &control, "concurrent ingest");
}
