//! Ordered fan-out execution over scoped threads.
//!
//! One atomic counter hands out item indices to a fixed pool of workers
//! (work stealing: fast items don't block slow ones), and every result is
//! written back into the slot of its *input* index. Parallel output is
//! therefore bit-identical to serial output for any pure per-item function —
//! the guarantee the Translator's `parallel_equals_serial` test pins down.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item and returns the results in input order.
///
/// `threads <= 1` or fewer than two items short-circuits to a plain serial
/// map (no threads spawned, no locking). Otherwise at most
/// `min(threads, items.len())` scoped workers pull indices from a shared
/// atomic counter until the input is exhausted.
///
/// The closure receives `(index, &item)` so callers can use positional
/// context without threading it through the item type.
pub fn run_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let n_workers = threads.min(items.len());
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let slot_refs = parking_lot::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(i, &items[i]);
                slot_refs.lock()[i] = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..97).collect();
        let serial = run_indexed(1, &items, |i, x| i as u64 * 1000 + x * x);
        for threads in [2, 3, 8, 200] {
            let parallel = run_indexed(threads, &items, |i, x| i as u64 * 1000 + x * x);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = run_indexed(4, &[] as &[u32], |_, x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_stays_serial() {
        let out = run_indexed(8, &[41], |i, x| (i, x + 1));
        assert_eq!(out, vec![(0, 42)]);
    }

    #[test]
    fn index_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let out = run_indexed(2, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }
}
