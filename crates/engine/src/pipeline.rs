//! Staged pipelines with per-stage wall-clock accounting.
//!
//! A [`Pipeline`] strings together fan-out stages ([`Pipeline::map`], run
//! through [`crate::run_indexed`]) and serial barriers ([`Pipeline::stage`]),
//! timing each one. [`Pipeline::finish`] yields the [`PipelineReport`] that
//! the Translator attaches to every `TranslationResult` and the bench
//! harness renders into its timing tables.

use crate::executor::run_indexed;
use std::time::{Duration, Instant};

/// Timing record of one executed stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name as passed to [`Pipeline::map`] / [`Pipeline::stage`].
    pub name: String,
    /// Wall-clock time the stage took.
    pub wall: Duration,
    /// Items fanned out (`1` for serial barrier stages).
    pub items: usize,
}

/// Per-stage timings of one pipeline run, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// Sum of all stage wall-clock times.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// The report of the named stage, if it ran.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// A staged executor: each call runs one stage and records its timing.
pub struct Pipeline {
    threads: usize,
    stages: Vec<StageReport>,
}

impl Pipeline {
    /// Creates a pipeline that fans map stages out over `threads` workers
    /// (`0` or `1` = serial).
    pub fn new(threads: usize) -> Self {
        Pipeline {
            threads,
            stages: Vec::new(),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fan-out stage: applies `f` to every item (in parallel when configured)
    /// and returns results in input order. See [`run_indexed`] for the
    /// ordering guarantee.
    pub fn map<T, R, F>(&mut self, name: &str, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let start = Instant::now();
        let out = run_indexed(self.threads, items, f);
        self.stages.push(StageReport {
            name: name.to_string(),
            wall: start.elapsed(),
            items: items.len(),
        });
        out
    }

    /// Serial barrier stage (e.g. building global state over all fan-out
    /// results before the next fan-out).
    pub fn stage<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.stages.push(StageReport {
            name: name.to_string(),
            wall: start.elapsed(),
            items: 1,
        });
        out
    }

    /// Consumes the pipeline, yielding the collected timings.
    pub fn finish(self) -> PipelineReport {
        PipelineReport {
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_record_in_order() {
        let mut p = Pipeline::new(2);
        let doubled = p.map("double", &[1, 2, 3], |_, x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = p.stage("sum", || doubled.iter().sum());
        assert_eq!(sum, 12);
        let report = p.finish();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].name, "double");
        assert_eq!(report.stages[0].items, 3);
        assert_eq!(report.stages[1].name, "sum");
        assert_eq!(report.stages[1].items, 1);
        assert!(report.stage("double").is_some());
        assert!(report.stage("missing").is_none());
        assert!(report.total_wall() >= report.stages[0].wall);
    }

    #[test]
    fn empty_report_defaults() {
        let r = PipelineReport::default();
        assert_eq!(r.total_wall(), Duration::ZERO);
        assert!(r.stages.is_empty());
    }
}
