//! TRIPS pipeline execution engine.
//!
//! One reusable execution layer for every fan-out in the system. Before this
//! crate existed the batch Translator carried two copy-pasted scoped-thread
//! worker pools and the streaming translator re-wired the same stages a
//! third time; all of them now run through:
//!
//! * [`run_indexed`] — ordered fan-out: an atomic work-stealing counter over
//!   `std::thread::scope`, with results reassembled in **input order** so
//!   parallel output is bit-identical to serial output for any pure per-item
//!   function;
//! * [`Pipeline`] — staged execution with per-stage wall-clock timing,
//!   collected into a [`PipelineReport`] (exposed on every
//!   `TranslationResult` and rendered by the bench harness);
//! * [`LatencyRecorder`] — per-worker latency collection reduced to
//!   ops/sec + nearest-rank percentiles (the store's query-throughput
//!   bench and the perf-smoke CI gate are built on it). The
//!   implementation now lives in `trips-obs` (the unified observability
//!   layer); it is re-exported here so existing bench imports keep
//!   working.
//!
//! The crate is deliberately free of TRIPS domain types so any layer
//! (core, bench, future services) can depend on it without cycles.

mod executor;
mod pipeline;

pub use executor::run_indexed;
pub use pipeline::{Pipeline, PipelineReport, StageReport};
pub use trips_obs::{LatencyRecorder, LatencySummary};
