//! The engine's core contract: the thread count is invisible in the output.
//! `run_indexed` with 1, 2, and 8 workers must produce identical ordered
//! results on every input shape, including the empty and single-item edges.

use trips_engine::{run_indexed, Pipeline};

/// A deliberately order-sensitive per-item function: mixes the index into
/// the output so any slot misplacement under work stealing is visible.
fn work(i: usize, x: &u64) -> (usize, u64) {
    // Unequal per-item cost exercises stealing: small indices spin longer.
    let spins = if i % 7 == 0 { 2000 } else { 10 };
    let mut acc = *x;
    for _ in 0..spins {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    (i, acc)
}

#[test]
fn one_two_eight_threads_identical_output() {
    for len in [0usize, 1, 2, 3, 17, 256] {
        let items: Vec<u64> = (0..len as u64).map(|x| x * 31 + 7).collect();
        let reference = run_indexed(1, &items, work);
        assert_eq!(reference.len(), len);
        for threads in [2usize, 8] {
            let got = run_indexed(threads, &items, work);
            assert_eq!(got, reference, "len={len} threads={threads}");
        }
        // Results must sit at their input positions.
        for (pos, (i, _)) in reference.iter().enumerate() {
            assert_eq!(pos, *i);
        }
    }
}

#[test]
fn pipeline_map_is_thread_invariant() {
    let items: Vec<u64> = (0..64).collect();
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut p = Pipeline::new(threads);
        let out = p.map("work", &items, work);
        let report = p.finish();
        assert_eq!(report.stages.len(), 1);
        assert_eq!(report.stages[0].items, items.len());
        outputs.push(out);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

#[test]
fn more_threads_than_items() {
    let items = vec![5u64, 6];
    assert_eq!(run_indexed(8, &items, work), run_indexed(1, &items, work));
}
