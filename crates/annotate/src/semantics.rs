//! The mobility-semantics triplet — TRIPS's output representation.

use serde::{Deserialize, Serialize};
use std::fmt;
use trips_data::{DeviceId, Duration, Timestamp};
use trips_dsm::RegionId;
use trips_geom::IndoorPoint;

/// One mobility semantics: an event annotation, a spatial annotation and a
/// temporal annotation (paper Table 1, right column):
///
/// ```text
/// (stay, Adidas, 1:02:05-1:18:15pm)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilitySemantics {
    pub device: DeviceId,
    /// Event annotation: the matched mobility-event pattern name
    /// (user-defined in the Event Editor; `"stay"` / `"pass-by"` by default).
    pub event: String,
    /// Spatial annotation: the matched semantic region.
    pub region: RegionId,
    pub region_name: String,
    /// Temporal annotation.
    pub start: Timestamp,
    pub end: Timestamp,
    /// `true` when produced by the Complementing layer rather than observed.
    pub inferred: bool,
    /// The display point the Viewer renders this entry at (selected from the
    /// covered raw records; `None` for inferred semantics, which display at
    /// the region anchor).
    pub display_point: Option<IndoorPoint>,
}

impl MobilitySemantics {
    /// Duration of the temporal annotation.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// Whether this semantics temporally overlaps `[from, to]`.
    pub fn overlaps(&self, from: Timestamp, to: Timestamp) -> bool {
        self.start <= to && self.end >= from
    }

    /// Renders the paper's triplet form: `(event, Region, start-end)`.
    pub fn triplet(&self) -> String {
        format!(
            "({}, {}, {}-{})",
            self.event, self.region_name, self.start, self.end
        )
    }
}

impl fmt::Display for MobilitySemantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.triplet(),
            if self.inferred { " [inferred]" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sem() -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new("oi"),
            event: "stay".into(),
            region: RegionId(3),
            region_name: "Adidas".into(),
            start: Timestamp::from_dhms(0, 13, 2, 5),
            end: Timestamp::from_dhms(0, 13, 18, 15),
            inferred: false,
            display_point: None,
        }
    }

    #[test]
    fn triplet_form_matches_table1() {
        assert_eq!(sem().triplet(), "(stay, Adidas, d0 13:02:05-d0 13:18:15)");
    }

    #[test]
    fn duration_and_overlap() {
        let s = sem();
        assert_eq!(
            s.duration(),
            Duration::from_mins(16) + Duration::from_secs(10)
        );
        assert!(s.overlaps(
            Timestamp::from_dhms(0, 13, 10, 0),
            Timestamp::from_dhms(0, 14, 0, 0)
        ));
        assert!(!s.overlaps(
            Timestamp::from_dhms(0, 14, 0, 0),
            Timestamp::from_dhms(0, 15, 0, 0)
        ));
        // Boundary touch counts.
        assert!(s.overlaps(s.end, s.end + Duration::from_secs(1)));
    }

    #[test]
    fn inferred_marker_in_display() {
        let mut s = sem();
        assert!(!s.to_string().contains("[inferred]"));
        s.inferred = true;
        assert!(s.to_string().contains("[inferred]"));
    }
}
