//! Literature baselines the paper positions TRIPS against (§1).
//!
//! * [`StopMoveAnnotator`] — the two-pattern stop/move vocabulary of the
//!   semantic trajectory annotation platform (Yan et al., TIST 2013 — the
//!   paper's ref \[12\]): a device *stops* when it dwells inside one region
//!   long enough, and *moves* otherwise. No learning, no custom patterns.
//! * [`ThresholdClassifier`] — the parameter-only feature extraction of the
//!   trajectory-warehouse reconstruction manager (Marketos et al., MobiDE
//!   2008 — ref \[10\]): fixed thresholds on speed and spatial tolerance,
//!   "temporal and spatial gaps, maximum speed, maximum noise duration, and
//!   tolerance distance in a stop".
//!
//! Both map onto the snippet-classification interface so experiment F3b can
//! compare them to the learning-based identification model head-on.

use crate::features::FeatureVector;
use crate::model::Classifier;
use crate::semantics::MobilitySemantics;
use crate::spatial::region_runs;
use trips_data::{Duration, PositioningSequence};
use trips_dsm::DigitalSpaceModel;

/// SMoT-style stop/move annotation over semantic regions.
pub struct StopMoveAnnotator<'a> {
    dsm: &'a DigitalSpaceModel,
    /// Minimum dwell inside one region to count as a stop.
    pub min_stop: Duration,
}

impl<'a> StopMoveAnnotator<'a> {
    /// Creates the baseline annotator.
    pub fn new(dsm: &'a DigitalSpaceModel, min_stop: Duration) -> Self {
        StopMoveAnnotator { dsm, min_stop }
    }

    /// Produces stop/move semantics: one entry per region run, labelled
    /// `"stop"` when the run's dwell reaches `min_stop`, `"move"` otherwise.
    pub fn annotate(&self, seq: &PositioningSequence) -> Vec<MobilitySemantics> {
        let records = seq.records();
        region_runs(self.dsm, records)
            .into_iter()
            .map(|run| {
                let rr = &records[run.first..=run.last];
                let dwell = rr[rr.len() - 1].ts - rr[0].ts;
                let region = self.dsm.region(run.region).expect("region from dsm");
                MobilitySemantics {
                    device: seq.device().clone(),
                    event: if dwell >= self.min_stop {
                        "stop".to_string()
                    } else {
                        "move".to_string()
                    },
                    region: run.region,
                    region_name: region.name.clone(),
                    start: rr[0].ts,
                    end: rr[rr.len() - 1].ts,
                    inferred: false,
                    display_point: Some(rr[rr.len() / 2].location),
                }
            })
            .collect()
    }
}

/// Threshold-based snippet classifier (no training): class 0 = stay/stop
/// when mean speed and covering range fall below fixed tolerances, class 1 =
/// pass-by/move otherwise.
#[derive(Debug, Clone)]
pub struct ThresholdClassifier {
    /// Maximum mean speed of a stop, m/s.
    pub max_stop_speed: f64,
    /// Tolerance distance in a stop (covering-range bound), metres.
    pub tolerance_distance: f64,
}

impl Default for ThresholdClassifier {
    fn default() -> Self {
        ThresholdClassifier {
            max_stop_speed: 0.3,
            tolerance_distance: 8.0,
        }
    }
}

impl Classifier for ThresholdClassifier {
    fn predict(&self, x: &[f64]) -> usize {
        // Feature layout per crate::features::FEATURE_NAMES:
        // [variance, distance, mean_speed, max_leg_speed, covering_range, ...]
        let mean_speed = x[2];
        let covering = x[4];
        if mean_speed <= self.max_stop_speed && covering <= self.tolerance_distance {
            0
        } else {
            1
        }
    }

    fn name(&self) -> &'static str {
        "threshold-baseline"
    }
}

impl ThresholdClassifier {
    /// Classifies a record slice directly (extracts features internally).
    pub fn classify_records(&self, records: &[trips_data::RawRecord]) -> usize {
        self.predict(FeatureVector::extract(records).values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, RawRecord, Timestamp};
    use trips_dsm::builder::MallBuilder;

    fn rec(x: f64, y: f64, secs: i64) -> RawRecord {
        RawRecord::new(
            DeviceId::new("d"),
            x,
            y,
            0,
            Timestamp::from_millis(secs * 1000),
        )
    }

    fn mall() -> DigitalSpaceModel {
        MallBuilder::new()
            .shops_per_row(4)
            .with_cashiers(false)
            .build()
    }

    #[test]
    fn stop_move_finds_stop_in_shop() {
        let dsm = mall();
        let b = StopMoveAnnotator::new(&dsm, Duration::from_secs(90));
        // 2 min dwell in the first shop, then a quick hallway crossing.
        let mut recs: Vec<RawRecord> = (0..18).map(|i| rec(5.0, 4.0, i * 7)).collect();
        recs.push(rec(5.0, 11.0, 18 * 7));
        recs.push(rec(15.0, 11.0, 19 * 7));
        let seq = PositioningSequence::from_records(DeviceId::new("d"), recs);
        let sems = b.annotate(&seq);
        assert_eq!(sems.len(), 2, "{sems:#?}");
        assert_eq!(sems[0].event, "stop");
        assert_eq!(sems[1].event, "move");
        assert!(sems[1].region_name.starts_with("Center Hall"));
    }

    #[test]
    fn stop_move_vocabulary_is_fixed() {
        let dsm = mall();
        let b = StopMoveAnnotator::new(&dsm, Duration::from_secs(60));
        let recs: Vec<RawRecord> = (0..40).map(|i| rec(5.0 + i as f64, 11.0, i * 7)).collect();
        let seq = PositioningSequence::from_records(DeviceId::new("d"), recs);
        for s in b.annotate(&seq) {
            assert!(s.event == "stop" || s.event == "move");
        }
    }

    #[test]
    fn threshold_classifier_on_synthetic_features() {
        let c = ThresholdClassifier::default();
        // Tight dwell.
        let stay: Vec<RawRecord> = (0..20).map(|i| rec(5.0, 4.0, i * 7)).collect();
        assert_eq!(c.classify_records(&stay), 0);
        // Brisk walk.
        let walk: Vec<RawRecord> = (0..20)
            .map(|i| rec(1.4 * 7.0 * i as f64, 0.0, i * 7))
            .collect();
        assert_eq!(c.classify_records(&walk), 1);
    }

    #[test]
    fn threshold_classifier_fooled_by_slow_wander() {
        // A slow but wide wander: a human browsing a large store. Mean speed
        // is below the stop threshold but covering range exceeds tolerance —
        // the fixed-threshold method calls it a move; this is exactly the
        // kind of case the learning-based model handles better (experiment
        // F3b quantifies the gap).
        let c = ThresholdClassifier::default();
        let recs: Vec<RawRecord> = (0..40)
            .map(|i| rec((i as f64 * 0.9) % 12.0, (i as f64 * 0.35) % 9.0, i * 30))
            .collect();
        let f = FeatureVector::extract(&recs);
        assert!(f.values()[2] < 0.3, "slow: {}", f.values()[2]);
        assert_eq!(c.predict(f.values()), 1, "wide range forces 'move'");
    }

    #[test]
    fn baseline_name() {
        assert_eq!(ThresholdClassifier::default().name(), "threshold-baseline");
    }
}
