//! The Annotation layer of the three-layer translation framework (paper §3).
//!
//! A cleaned positioning sequence becomes a sequence of *mobility semantics*
//! triplets `(event, region, time range)` in two steps:
//!
//! 1. **density-based splitting** ([`split`]) clusters records by their
//!    spatio-temporal attributes into *snippets* — dense stretches (stay
//!    candidates) and the transit stretches between them;
//! 2. **semantic matching** assigns each snippet
//!    * an **event annotation** via a learning-based identification model
//!      ([`model`]) over features ([`features`]: location variance,
//!      traveling distance and speed, covering range, number of turns, …)
//!      trained on data collected through the **Event Editor** ([`editor`]);
//!    * a **spatial annotation** by matching semantic regions in the DSM
//!      ([`spatial`]);
//!    * a **temporal annotation** from the snippet's time range.
//!
//! [`baseline`] implements the two literature baselines the paper positions
//! against: SMoT-style stop/move annotation (ref \[12\]) and threshold-based
//! trajectory reconstruction (ref \[10\]).

pub mod baseline;
pub mod editor;
pub mod features;
pub mod model;
pub mod semantics;
pub mod spatial;
pub mod split;

mod annotator;

pub use annotator::{Annotator, AnnotatorConfig, DisplayPointPolicy};
pub use editor::{EventEditor, EventPattern, TrainingSet};
pub use features::{FeatureVector, FEATURE_NAMES};
pub use model::{Classifier, DecisionTree, EventModel, KNearest, RandomForest};
pub use semantics::MobilitySemantics;
pub use split::{Snippet, SnippetKind, SplitConfig};
