//! Density-based splitting: cluster positioning records "with respect to
//! their spatio-temporal attributes" into snippets (paper §3, Annotation).
//!
//! A record is *dense* when enough other records fall within a planar radius
//! **and** a time window around it — the ST-DBSCAN core-point condition
//! specialised to a single time-ordered sequence. Maximal runs of dense
//! records become [`SnippetKind::Dense`] snippets (stay candidates); the
//! stretches between them become [`SnippetKind::Transit`] snippets.

use trips_data::{Duration, PositioningSequence, RawRecord};

/// Splitting parameters.
#[derive(Debug, Clone)]
pub struct SplitConfig {
    /// Planar neighbourhood radius, metres.
    pub radius: f64,
    /// Temporal neighbourhood half-window.
    pub window: Duration,
    /// Minimum neighbours (incl. self) for a record to be dense.
    pub min_pts: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            radius: 4.0,
            window: Duration::from_secs(45),
            min_pts: 4,
        }
    }
}

/// Snippet classification by density.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnippetKind {
    /// Spatio-temporally dense — the device lingered.
    Dense,
    /// Sparse — the device was moving through.
    Transit,
}

/// A contiguous stretch of records from one sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Snippet {
    pub kind: SnippetKind,
    /// Index range `[first, last]` into the source sequence's records.
    pub first: usize,
    pub last: usize,
}

impl Snippet {
    /// Number of records covered.
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Always `false` (snippets cover at least one record).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The records of this snippet, borrowed from the source sequence.
    pub fn records<'a>(&self, seq: &'a PositioningSequence) -> &'a [RawRecord] {
        &seq.records()[self.first..=self.last]
    }
}

/// Splits a sequence into snippets. The output snippets partition
/// `0..seq.len()` exactly: concatenating their ranges reproduces the
/// sequence with no overlap and no gap.
pub fn split(seq: &PositioningSequence, config: &SplitConfig) -> Vec<Snippet> {
    let records = seq.records();
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }

    // Density pass: two-pointer window over time, planar distance check.
    let mut dense = vec![false; n];
    let radius_sq = config.radius * config.radius;
    let mut lo = 0usize;
    for i in 0..n {
        while records[i].ts - records[lo].ts > config.window {
            lo += 1;
        }
        let mut count = 0usize;
        let mut hi = lo;
        while hi < n && records[hi].ts - records[i].ts <= config.window {
            if records[hi].location.floor == records[i].location.floor
                && records[hi].location.xy.distance_sq(records[i].location.xy) <= radius_sq
            {
                count += 1;
                if count >= config.min_pts {
                    break;
                }
            }
            hi += 1;
        }
        dense[i] = count >= config.min_pts;
    }

    // Run-length pass.
    let mut snippets = Vec::new();
    let mut start = 0usize;
    for i in 1..=n {
        if i == n || dense[i] != dense[start] {
            snippets.push(Snippet {
                kind: if dense[start] {
                    SnippetKind::Dense
                } else {
                    SnippetKind::Transit
                },
                first: start,
                last: i - 1,
            });
            start = i;
        }
    }
    snippets
}

/// Fixed-window splitting (ablation A2): cut the sequence into equal time
/// windows regardless of density.
pub fn split_fixed_window(seq: &PositioningSequence, window: Duration) -> Vec<Snippet> {
    let records = seq.records();
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(window.as_millis() > 0, "window must be positive");
    let mut snippets = Vec::new();
    let mut start = 0usize;
    for i in 1..=n {
        if i == n || records[i].ts - records[start].ts > window {
            snippets.push(Snippet {
                kind: SnippetKind::Dense, // kind decided downstream by model
                first: start,
                last: i - 1,
            });
            start = i;
        }
    }
    snippets
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, Timestamp};

    fn seq(recs: Vec<(f64, f64, i64)>) -> PositioningSequence {
        PositioningSequence::from_records(
            DeviceId::new("d"),
            recs.into_iter()
                .map(|(x, y, s)| {
                    RawRecord::new(
                        DeviceId::new("d"),
                        x,
                        y,
                        0,
                        Timestamp::from_millis(s * 1000),
                    )
                })
                .collect(),
        )
    }

    /// Dwell at (0,0) for 10 records, walk away fast, dwell at (100,0).
    fn stay_walk_stay() -> PositioningSequence {
        let mut recs = Vec::new();
        for i in 0..10 {
            recs.push((0.1 * i as f64, 0.0, i * 7));
        }
        for i in 0..8 {
            recs.push((10.0 + 11.0 * i as f64, 0.0, 70 + i * 7));
        }
        for i in 0..10 {
            recs.push((100.0, 0.1 * i as f64, 126 + i * 7));
        }
        seq(recs)
    }

    #[test]
    fn partitions_exactly() {
        let s = stay_walk_stay();
        let snippets = split(&s, &SplitConfig::default());
        assert!(!snippets.is_empty());
        assert_eq!(snippets[0].first, 0);
        assert_eq!(snippets.last().unwrap().last, s.len() - 1);
        for w in snippets.windows(2) {
            assert_eq!(w[0].last + 1, w[1].first, "no gap, no overlap");
        }
        let total: usize = snippets.iter().map(|sn| sn.len()).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn detects_stay_walk_stay_structure() {
        let s = stay_walk_stay();
        let snippets = split(&s, &SplitConfig::default());
        let kinds: Vec<SnippetKind> = snippets.iter().map(|sn| sn.kind).collect();
        assert_eq!(
            kinds,
            vec![SnippetKind::Dense, SnippetKind::Transit, SnippetKind::Dense],
            "snippets: {snippets:?}"
        );
    }

    #[test]
    fn alternating_kinds() {
        let s = stay_walk_stay();
        for w in split(&s, &SplitConfig::default()).windows(2) {
            assert_ne!(w[0].kind, w[1].kind, "adjacent snippets must alternate");
        }
    }

    #[test]
    fn all_dense_when_stationary() {
        let recs: Vec<(f64, f64, i64)> = (0..30).map(|i| (5.0, 5.0, i * 7)).collect();
        let snippets = split(&seq(recs), &SplitConfig::default());
        assert_eq!(snippets.len(), 1);
        assert_eq!(snippets[0].kind, SnippetKind::Dense);
    }

    #[test]
    fn all_transit_when_sprinting() {
        let recs: Vec<(f64, f64, i64)> = (0..30).map(|i| (20.0 * i as f64, 0.0, i * 7)).collect();
        let snippets = split(&seq(recs), &SplitConfig::default());
        assert_eq!(snippets.len(), 1);
        assert_eq!(snippets[0].kind, SnippetKind::Transit);
    }

    #[test]
    fn floor_change_breaks_density() {
        // Stationary planar position but floor alternates: planar neighbours
        // are on other floors, so no record is dense.
        let recs: Vec<RawRecord> = (0..20)
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("d"),
                    5.0,
                    5.0,
                    (i % 2) as i16,
                    Timestamp::from_millis(i * 7000),
                )
            })
            .collect();
        let s = PositioningSequence::from_records(DeviceId::new("d"), recs);
        // Within the ±45 s window a record sees at most 7 same-floor
        // neighbours (itself + i±2, ±4, ±6); min_pts 8 is unreachable.
        let snippets = split(
            &s,
            &SplitConfig {
                min_pts: 8,
                ..SplitConfig::default()
            },
        );
        assert!(snippets.iter().all(|sn| sn.kind == SnippetKind::Transit));
    }

    #[test]
    fn empty_and_tiny_sequences() {
        assert!(split(&seq(vec![]), &SplitConfig::default()).is_empty());
        let one = split(&seq(vec![(0.0, 0.0, 0)]), &SplitConfig::default());
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].kind, SnippetKind::Transit, "single record is sparse");
    }

    #[test]
    fn snippet_record_access() {
        let s = stay_walk_stay();
        let snippets = split(&s, &SplitConfig::default());
        let first = &snippets[0];
        assert_eq!(first.records(&s).len(), first.len());
        assert_eq!(first.records(&s)[0], s.records()[first.first]);
    }

    #[test]
    fn fixed_window_split_partitions() {
        let s = stay_walk_stay();
        let snippets = split_fixed_window(&s, Duration::from_secs(30));
        assert_eq!(snippets[0].first, 0);
        assert_eq!(snippets.last().unwrap().last, s.len() - 1);
        let total: usize = snippets.iter().map(|sn| sn.len()).sum();
        assert_eq!(total, s.len());
        // Each window spans ≤ 30 s.
        for sn in &snippets {
            let span = s.records()[sn.last].ts - s.records()[sn.first].ts;
            assert!(span <= Duration::from_secs(30));
        }
    }

    #[test]
    fn tighter_parameters_find_fewer_dense_records() {
        let s = stay_walk_stay();
        let loose = split(&s, &SplitConfig::default());
        let strict = split(
            &s,
            &SplitConfig {
                radius: 0.05,
                min_pts: 8,
                ..SplitConfig::default()
            },
        );
        let dense_count = |sns: &[Snippet]| {
            sns.iter()
                .filter(|sn| sn.kind == SnippetKind::Dense)
                .map(|sn| sn.len())
                .sum::<usize>()
        };
        assert!(dense_count(&strict) <= dense_count(&loose));
    }
}
