//! The Event Editor (paper §2, Configurator module 3).
//!
//! "It allows users to define mobility event patterns, and designate each
//! defined pattern the corresponding positioning sequence segments on the
//! map view. The designated data segments will be used to train a
//! learning-based model for identifying the user-defined event patterns."
//!
//! [`EventEditor`] is that workflow as an API: `define_pattern` registers a
//! pattern, `designate_segment` attaches a labelled record segment, and
//! `build_training_set` extracts features ready for [`crate::model`].

use crate::features::FeatureVector;
use crate::model::{DecisionTree, EventModel, KNearest, RandomForest, TreeParams};
use trips_data::RawRecord;

/// A user-defined mobility event pattern ("a generic movement pattern of
/// some particular interest", paper §1).
#[derive(Debug, Clone, PartialEq)]
pub struct EventPattern {
    pub name: String,
    pub description: String,
}

/// Errors raised by the editor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditorError {
    DuplicatePattern(String),
    UnknownPattern(String),
    EmptySegment,
    /// Training requires at least one designation for ≥ 2 patterns.
    NotEnoughTrainingData,
}

impl std::fmt::Display for EditorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditorError::DuplicatePattern(n) => write!(f, "pattern '{n}' already defined"),
            EditorError::UnknownPattern(n) => write!(f, "pattern '{n}' not defined"),
            EditorError::EmptySegment => write!(f, "designated segment has no records"),
            EditorError::NotEnoughTrainingData => {
                write!(f, "need designations for at least two patterns")
            }
        }
    }
}

impl std::error::Error for EditorError {}

/// Labelled training data extracted from designations.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSet {
    /// Feature vectors.
    pub xs: Vec<Vec<f64>>,
    /// Label indices into `label_names`.
    pub ys: Vec<usize>,
    /// Pattern names by label index.
    pub label_names: Vec<String>,
}

impl TrainingSet {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the set has no examples.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.label_names.len()
    }

    /// Deterministic train/test split: every `k`-th example goes to test.
    pub fn split_every_kth(&self, k: usize) -> (TrainingSet, TrainingSet) {
        assert!(k >= 2, "k must be >= 2");
        let mut train = TrainingSet {
            xs: Vec::new(),
            ys: Vec::new(),
            label_names: self.label_names.clone(),
        };
        let mut test = train.clone();
        for (i, (x, y)) in self.xs.iter().zip(&self.ys).enumerate() {
            let target = if i % k == 0 { &mut test } else { &mut train };
            target.xs.push(x.clone());
            target.ys.push(*y);
        }
        (train, test)
    }

    /// The first `n` examples (training-size sweeps, experiment F3b).
    pub fn truncated(&self, n: usize) -> TrainingSet {
        TrainingSet {
            xs: self.xs.iter().take(n).cloned().collect(),
            ys: self.ys.iter().take(n).copied().collect(),
            label_names: self.label_names.clone(),
        }
    }
}

/// The Event Editor: pattern definitions plus labelled designations.
#[derive(Debug, Clone, Default)]
pub struct EventEditor {
    patterns: Vec<EventPattern>,
    examples: Vec<(Vec<f64>, usize)>,
}

impl EventEditor {
    /// Creates an empty editor.
    pub fn new() -> Self {
        Self::default()
    }

    /// An editor pre-seeded with the paper's two example patterns.
    pub fn with_default_patterns() -> Self {
        let mut e = Self::new();
        e.define_pattern("stay", "somebody stays in one or multiple shops")
            .expect("fresh editor");
        e.define_pattern("pass-by", "somebody passes through a semantic region")
            .expect("fresh editor");
        e
    }

    /// Registers a new event pattern.
    pub fn define_pattern(&mut self, name: &str, description: &str) -> Result<(), EditorError> {
        if self.patterns.iter().any(|p| p.name == name) {
            return Err(EditorError::DuplicatePattern(name.to_string()));
        }
        self.patterns.push(EventPattern {
            name: name.to_string(),
            description: description.to_string(),
        });
        Ok(())
    }

    /// The defined patterns in definition order.
    pub fn patterns(&self) -> &[EventPattern] {
        &self.patterns
    }

    /// Designates a record segment as an example of `pattern` ("designate
    /// her defined pass-by pattern a set of corresponding positioning
    /// sequence segments", paper §4).
    pub fn designate_segment(
        &mut self,
        pattern: &str,
        records: &[RawRecord],
    ) -> Result<(), EditorError> {
        let label = self
            .patterns
            .iter()
            .position(|p| p.name == pattern)
            .ok_or_else(|| EditorError::UnknownPattern(pattern.to_string()))?;
        if records.is_empty() {
            return Err(EditorError::EmptySegment);
        }
        let features = FeatureVector::extract(records);
        self.examples.push((features.values().to_vec(), label));
        Ok(())
    }

    /// Number of designated examples.
    pub fn example_count(&self) -> usize {
        self.examples.len()
    }

    /// Extracts the training set.
    pub fn build_training_set(&self) -> Result<TrainingSet, EditorError> {
        let mut used = std::collections::BTreeSet::new();
        for (_, y) in &self.examples {
            used.insert(*y);
        }
        if used.len() < 2 {
            return Err(EditorError::NotEnoughTrainingData);
        }
        Ok(TrainingSet {
            xs: self.examples.iter().map(|(x, _)| x.clone()).collect(),
            ys: self.examples.iter().map(|(_, y)| *y).collect(),
            label_names: self.patterns.iter().map(|p| p.name.clone()).collect(),
        })
    }

    /// Trains the default event model (decision tree) on the designations.
    pub fn train_default_model(&self) -> Result<(EventModel, Vec<String>), EditorError> {
        let ts = self.build_training_set()?;
        let tree = DecisionTree::train(&ts.xs, &ts.ys, ts.n_classes(), &TreeParams::default());
        Ok((EventModel::Tree(tree), ts.label_names))
    }

    /// Trains a random forest on the designations.
    pub fn train_forest(
        &self,
        n_trees: usize,
        seed: u64,
    ) -> Result<(EventModel, Vec<String>), EditorError> {
        let ts = self.build_training_set()?;
        let f = RandomForest::train(&ts.xs, &ts.ys, ts.n_classes(), n_trees, seed);
        Ok((EventModel::Forest(f), ts.label_names))
    }

    /// Trains a k-NN model on the designations.
    pub fn train_knn(&self, k: usize) -> Result<(EventModel, Vec<String>), EditorError> {
        let ts = self.build_training_set()?;
        let m = KNearest::train(&ts.xs, &ts.ys, ts.n_classes(), k);
        Ok((EventModel::Knn(m), ts.label_names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Classifier;
    use trips_data::{DeviceId, Timestamp};

    fn stay_segment(n: usize) -> Vec<RawRecord> {
        (0..n)
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("d"),
                    5.0 + 0.05 * (i % 2) as f64,
                    5.0,
                    0,
                    Timestamp::from_millis(i as i64 * 7000),
                )
            })
            .collect()
    }

    fn walk_segment(n: usize) -> Vec<RawRecord> {
        (0..n)
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("d"),
                    1.4 * i as f64,
                    0.0,
                    0,
                    Timestamp::from_millis(i as i64 * 1000),
                )
            })
            .collect()
    }

    fn trained_editor() -> EventEditor {
        let mut e = EventEditor::with_default_patterns();
        for k in 0..10 {
            e.designate_segment("stay", &stay_segment(10 + k)).unwrap();
            e.designate_segment("pass-by", &walk_segment(5 + k))
                .unwrap();
        }
        e
    }

    #[test]
    fn pattern_definition_rules() {
        let mut e = EventEditor::new();
        e.define_pattern("stay", "x").unwrap();
        assert_eq!(
            e.define_pattern("stay", "y"),
            Err(EditorError::DuplicatePattern("stay".into()))
        );
        assert_eq!(e.patterns().len(), 1);
    }

    #[test]
    fn designation_validation() {
        let mut e = EventEditor::with_default_patterns();
        assert_eq!(
            e.designate_segment("loiter", &stay_segment(5)),
            Err(EditorError::UnknownPattern("loiter".into()))
        );
        assert_eq!(
            e.designate_segment("stay", &[]),
            Err(EditorError::EmptySegment)
        );
        e.designate_segment("stay", &stay_segment(5)).unwrap();
        assert_eq!(e.example_count(), 1);
    }

    #[test]
    fn training_set_requires_two_classes() {
        let mut e = EventEditor::with_default_patterns();
        e.designate_segment("stay", &stay_segment(5)).unwrap();
        assert_eq!(
            e.build_training_set().unwrap_err(),
            EditorError::NotEnoughTrainingData
        );
        e.designate_segment("pass-by", &walk_segment(5)).unwrap();
        let ts = e.build_training_set().unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.n_classes(), 2);
        assert_eq!(ts.label_names, vec!["stay", "pass-by"]);
    }

    #[test]
    fn trained_model_identifies_patterns() {
        let e = trained_editor();
        let (model, labels) = e.train_default_model().unwrap();
        let stay_f = FeatureVector::extract(&stay_segment(12));
        let walk_f = FeatureVector::extract(&walk_segment(8));
        assert_eq!(labels[model.predict(stay_f.values())], "stay");
        assert_eq!(labels[model.predict(walk_f.values())], "pass-by");
    }

    #[test]
    fn all_three_model_kinds_train() {
        let e = trained_editor();
        let stay_f = FeatureVector::extract(&stay_segment(12));
        for (model, labels) in [
            e.train_default_model().unwrap(),
            e.train_forest(7, 3).unwrap(),
            e.train_knn(3).unwrap(),
        ] {
            assert_eq!(
                labels[model.predict(stay_f.values())],
                "stay",
                "{}",
                model.name()
            );
        }
    }

    #[test]
    fn split_every_kth() {
        let e = trained_editor();
        let ts = e.build_training_set().unwrap();
        let (train, test) = ts.split_every_kth(4);
        assert_eq!(train.len() + test.len(), ts.len());
        assert_eq!(test.len(), ts.len().div_ceil(4));
        assert_eq!(train.label_names, ts.label_names);
    }

    #[test]
    fn truncation() {
        let e = trained_editor();
        let ts = e.build_training_set().unwrap();
        let t = ts.truncated(5);
        assert_eq!(t.len(), 5);
        assert_eq!(ts.truncated(10_000).len(), ts.len());
    }

    #[test]
    fn custom_third_pattern() {
        let mut e = EventEditor::with_default_patterns();
        e.define_pattern("sprint", "running through the mall")
            .unwrap();
        // Sprint: very fast walk.
        let sprint: Vec<RawRecord> = (0..10)
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("d"),
                    6.0 * i as f64,
                    0.0,
                    0,
                    Timestamp::from_millis(i as i64 * 1000),
                )
            })
            .collect();
        for k in 0..8 {
            e.designate_segment("stay", &stay_segment(10 + k)).unwrap();
            e.designate_segment("pass-by", &walk_segment(6 + k))
                .unwrap();
            e.designate_segment("sprint", &sprint).unwrap();
        }
        let (model, labels) = e.train_default_model().unwrap();
        let f = FeatureVector::extract(&sprint);
        assert_eq!(labels[model.predict(f.values())], "sprint");
    }
}
