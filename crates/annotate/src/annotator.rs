//! The Mobility Semantics Annotator (paper §2, Translator module 2): reads a
//! cleaned sequence and "extracts a sequence of mobility semantics by
//! matching proper annotations according to the relevant contexts".

use crate::features::FeatureVector;
use crate::model::{Classifier, EventModel};
use crate::semantics::MobilitySemantics;
use crate::spatial::{dominant_region, region_runs};
use crate::split::{split, SnippetKind, SplitConfig};
use trips_data::{Duration, PositioningSequence, RawRecord};
use trips_dsm::DigitalSpaceModel;
use trips_geom::{algorithms, IndoorPoint};

/// How a semantics entry's display point is selected from its covered raw
/// records (paper footnote 1: "the temporally middle or the spatially
/// central positioning location according to the user configuration").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DisplayPointPolicy {
    /// The record at the temporal middle of the covered range.
    #[default]
    TemporalMiddle,
    /// The medoid of the covered locations.
    SpatialCenter,
}

/// Annotator configuration.
#[derive(Debug, Clone, Default)]
pub struct AnnotatorConfig {
    pub split: SplitConfig,
    pub display_point: DisplayPointPolicy,
    /// Adjacent semantics with the same event and region merge when the gap
    /// between them is at most this.
    pub merge_gap: Duration,
}

impl AnnotatorConfig {
    /// Defaults with a 15 s merge gap.
    pub fn standard() -> Self {
        AnnotatorConfig {
            split: SplitConfig::default(),
            display_point: DisplayPointPolicy::TemporalMiddle,
            merge_gap: Duration::from_secs(15),
        }
    }
}

/// The Annotator: owns the trained event model and its label vocabulary.
pub struct Annotator<'a> {
    dsm: &'a DigitalSpaceModel,
    model: EventModel,
    labels: Vec<String>,
    config: AnnotatorConfig,
}

impl<'a> Annotator<'a> {
    /// Creates an annotator.
    ///
    /// # Panics
    /// Panics if `labels` is empty (the model must map to pattern names).
    pub fn new(
        dsm: &'a DigitalSpaceModel,
        model: EventModel,
        labels: Vec<String>,
        config: AnnotatorConfig,
    ) -> Self {
        assert!(!labels.is_empty(), "label vocabulary must not be empty");
        Annotator {
            dsm,
            model,
            labels,
            config,
        }
    }

    /// The label vocabulary.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The model in use (diagnostics / benches).
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    fn event_label(&self, records: &[RawRecord]) -> String {
        let f = FeatureVector::extract(records);
        let idx = self.model.predict(f.values()).min(self.labels.len() - 1);
        self.labels[idx].clone()
    }

    fn display_point(&self, records: &[RawRecord]) -> Option<IndoorPoint> {
        if records.is_empty() {
            return None;
        }
        match self.config.display_point {
            DisplayPointPolicy::TemporalMiddle => Some(records[records.len() / 2].location),
            DisplayPointPolicy::SpatialCenter => {
                let pts: Vec<_> = records.iter().map(|r| r.location.xy).collect();
                let m = algorithms::medoid(&pts)?;
                records
                    .iter()
                    .find(|r| r.location.xy == m)
                    .map(|r| r.location)
            }
        }
    }

    /// Annotates one cleaned sequence into its original (pre-complementing)
    /// mobility semantics sequence.
    pub fn annotate(&self, seq: &PositioningSequence) -> Vec<MobilitySemantics> {
        let mut out: Vec<MobilitySemantics> = Vec::new();
        let snippets = split(seq, &self.config.split);
        for snippet in &snippets {
            let records = snippet.records(seq);
            match snippet.kind {
                SnippetKind::Dense => {
                    // One semantics for the whole dwell, in its dominant region.
                    let Some(region_id) = dominant_region(self.dsm, records) else {
                        continue;
                    };
                    let region = self.dsm.region(region_id).expect("region from dsm");
                    out.push(MobilitySemantics {
                        device: seq.device().clone(),
                        event: self.event_label(records),
                        region: region_id,
                        region_name: region.name.clone(),
                        start: records[0].ts,
                        end: records[records.len() - 1].ts,
                        inferred: false,
                        display_point: self.display_point(records),
                    });
                }
                SnippetKind::Transit => {
                    // One semantics per region traversed.
                    for run in region_runs(self.dsm, records) {
                        let run_records = &records[run.first..=run.last];
                        let region = self.dsm.region(run.region).expect("region from dsm");
                        out.push(MobilitySemantics {
                            device: seq.device().clone(),
                            event: self.event_label(run_records),
                            region: run.region,
                            region_name: region.name.clone(),
                            start: run_records[0].ts,
                            end: run_records[run_records.len() - 1].ts,
                            inferred: false,
                            display_point: self.display_point(run_records),
                        });
                    }
                }
            }
        }
        out.sort_by_key(|s| s.start);
        self.merge_adjacent(out)
    }

    /// Merges adjacent same-event same-region semantics separated by at most
    /// `merge_gap` (splitting artefacts at snippet boundaries).
    fn merge_adjacent(&self, sems: Vec<MobilitySemantics>) -> Vec<MobilitySemantics> {
        let mut out: Vec<MobilitySemantics> = Vec::new();
        for s in sems {
            match out.last_mut() {
                Some(prev)
                    if prev.region == s.region
                        && prev.event == s.event
                        && s.start - prev.end <= self.config.merge_gap =>
                {
                    prev.end = prev.end.max(s.end);
                }
                _ => out.push(s),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::editor::EventEditor;
    use trips_data::{DeviceId, Timestamp};
    use trips_dsm::builder::MallBuilder;

    fn rec(x: f64, y: f64, secs: i64) -> RawRecord {
        RawRecord::new(
            DeviceId::new("d"),
            x,
            y,
            0,
            Timestamp::from_millis(secs * 1000),
        )
    }

    fn mall() -> DigitalSpaceModel {
        MallBuilder::new()
            .shops_per_row(4)
            .with_cashiers(false)
            .build()
    }

    fn trained_editor() -> EventEditor {
        let mut e = EventEditor::with_default_patterns();
        for k in 0..10usize {
            // Stays: tight dwells, ~7 s sampling.
            let stay: Vec<RawRecord> = (0..(12 + k))
                .map(|i| rec(5.0 + 0.1 * (i % 3) as f64, 4.0, (i as i64) * 7))
                .collect();
            e.designate_segment("stay", &stay).unwrap();
            // Pass-bys: steady 1.3 m/s walks.
            let walk: Vec<RawRecord> = (0..(4 + k))
                .map(|i| rec(10.0 + 9.0 * i as f64, 11.0, (i as i64) * 7))
                .collect();
            e.designate_segment("pass-by", &walk).unwrap();
        }
        e
    }

    fn annotator(dsm: &DigitalSpaceModel) -> Annotator<'_> {
        let (model, labels) = trained_editor().train_default_model().unwrap();
        Annotator::new(dsm, model, labels, AnnotatorConfig::standard())
    }

    /// Shopper: dwell in south shop 1, walk the hallway, dwell in south
    /// shop 3.
    fn shopping_trip() -> PositioningSequence {
        let mut recs = Vec::new();
        let mut t = 0i64;
        for i in 0..20 {
            recs.push(rec(5.0 + 0.1 * (i % 3) as f64, 4.0, t));
            t += 7;
        }
        // Exit shop 1 (door at (5, 8)), walk hallway to (25, 11), enter shop 3.
        for (x, y) in [
            (5.0, 8.0),
            (5.0, 11.0),
            (12.0, 11.0),
            (19.0, 11.0),
            (25.0, 11.0),
            (25.0, 8.0),
        ] {
            recs.push(rec(x, y, t));
            t += 7;
        }
        for i in 0..20 {
            recs.push(rec(25.0 + 0.1 * (i % 3) as f64, 4.0, t));
            t += 7;
        }
        PositioningSequence::from_records(DeviceId::new("d"), recs)
    }

    #[test]
    fn annotates_stay_hall_stay() {
        let dsm = mall();
        let a = annotator(&dsm);
        let sems = a.annotate(&shopping_trip());
        assert!(sems.len() >= 3, "semantics: {sems:#?}");
        // First and last semantics are stays in shops.
        let first = &sems[0];
        assert_eq!(first.event, "stay");
        assert!(!first.region_name.starts_with("Center Hall"));
        let last = sems.last().unwrap();
        assert_eq!(last.event, "stay");
        // Some middle semantics covers the hallway.
        assert!(
            sems.iter()
                .any(|s| s.region_name.starts_with("Center Hall")),
            "hall traversal annotated: {sems:#?}"
        );
        // Chronological order.
        for w in sems.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn semantics_are_concise() {
        let dsm = mall();
        let a = annotator(&dsm);
        let seq = shopping_trip();
        let sems = a.annotate(&seq);
        assert!(
            sems.len() * 5 < seq.len(),
            "{} semantics for {} records — not concise",
            sems.len(),
            seq.len()
        );
    }

    #[test]
    fn display_points_come_from_records() {
        let dsm = mall();
        let a = annotator(&dsm);
        let seq = shopping_trip();
        let sems = a.annotate(&seq);
        for s in &sems {
            let dp = s
                .display_point
                .expect("observed semantics have display points");
            assert!(
                seq.records().iter().any(|r| r.location == dp),
                "display point must be a raw location"
            );
        }
    }

    #[test]
    fn spatial_center_policy() {
        let dsm = mall();
        let (model, labels) = trained_editor().train_default_model().unwrap();
        let a = Annotator::new(
            &dsm,
            model,
            labels,
            AnnotatorConfig {
                display_point: DisplayPointPolicy::SpatialCenter,
                ..AnnotatorConfig::standard()
            },
        );
        let sems = a.annotate(&shopping_trip());
        assert!(!sems.is_empty());
        for s in &sems {
            assert!(s.display_point.is_some());
        }
    }

    #[test]
    fn empty_sequence_no_semantics() {
        let dsm = mall();
        let a = annotator(&dsm);
        let sems = a.annotate(&PositioningSequence::new(DeviceId::new("d")));
        assert!(sems.is_empty());
    }

    #[test]
    fn outside_building_records_yield_nothing() {
        let dsm = mall();
        let a = annotator(&dsm);
        let recs: Vec<RawRecord> = (0..30).map(|i| rec(-500.0, -500.0, i * 7)).collect();
        let seq = PositioningSequence::from_records(DeviceId::new("d"), recs);
        assert!(a.annotate(&seq).is_empty());
    }

    #[test]
    fn merge_collapses_fragments() {
        let dsm = mall();
        let a = annotator(&dsm);
        // A long dwell should produce exactly one stay, not several.
        let recs: Vec<RawRecord> = (0..60)
            .map(|i| rec(5.0 + 0.1 * (i % 4) as f64, 4.0, i * 7))
            .collect();
        let seq = PositioningSequence::from_records(DeviceId::new("d"), recs);
        let sems = a.annotate(&seq);
        assert_eq!(sems.len(), 1, "single dwell: {sems:#?}");
        assert_eq!(sems[0].event, "stay");
    }

    #[test]
    fn temporal_annotations_nest_in_sequence_span() {
        let dsm = mall();
        let a = annotator(&dsm);
        let seq = shopping_trip();
        let sems = a.annotate(&seq);
        let start = seq.start().unwrap();
        let end = seq.end().unwrap();
        for s in &sems {
            assert!(s.start >= start && s.end <= end);
            assert!(s.start <= s.end);
        }
    }
}
