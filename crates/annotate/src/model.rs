//! Learning-based event identification models, from scratch.
//!
//! The paper trains "a learning-based model for identifying the user-defined
//! event patterns" on snippets designated in the Event Editor. The concrete
//! classifier is unspecified; we provide three standard supervised models on
//! the paper's feature set — a CART decision tree (default), a bagged random
//! forest, and a z-scored k-NN — behind one [`Classifier`] trait, so the
//! evaluation can compare them (experiment F3b).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A trained event classifier: feature vector in, class index out.
pub trait Classifier {
    /// Predicts the class of one feature vector.
    fn predict(&self, x: &[f64]) -> usize;

    /// Model display name.
    fn name(&self) -> &'static str;
}

/// Decision-tree hyperparameters.
#[derive(Debug, Clone)]
pub struct TreeParams {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Features considered per split; `None` = all (single trees), `Some(k)`
    /// = a random subset of k (forest mode).
    pub feature_subset: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_split: 4,
            feature_subset: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A CART decision tree with Gini impurity splits.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl DecisionTree {
    /// Trains a tree on `(xs[i], ys[i])` pairs.
    ///
    /// # Panics
    /// Panics when the training set is empty, shapes disagree, or a label is
    /// out of range.
    pub fn train(xs: &[Vec<f64>], ys: &[usize], n_classes: usize, params: &TreeParams) -> Self {
        Self::train_seeded(xs, ys, n_classes, params, 0)
    }

    /// Trains with an explicit seed for the feature-subset sampling (used by
    /// the forest; deterministic everywhere).
    pub fn train_seeded(
        xs: &[Vec<f64>],
        ys: &[usize],
        n_classes: usize,
        params: &TreeParams,
        seed: u64,
    ) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        assert_eq!(xs.len(), ys.len(), "feature/label length mismatch");
        assert!(
            ys.iter().all(|&y| y < n_classes),
            "label out of range 0..{n_classes}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let indices: Vec<usize> = (0..xs.len()).collect();
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes,
        };
        tree.build(xs, ys, &indices, params, 0, &mut rng);
        tree
    }

    fn build(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[usize],
        indices: &[usize],
        params: &TreeParams,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let mut counts = vec![0usize; self.n_classes];
        for &i in indices {
            counts[ys[i]] += 1;
        }
        let node_gini = gini(&counts, indices.len());

        // Stopping conditions.
        if depth >= params.max_depth || indices.len() < params.min_samples_split || node_gini == 0.0
        {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf {
                class: majority(&counts),
            });
            return id;
        }

        // Candidate features.
        let dim = xs[0].len();
        let features: Vec<usize> = match params.feature_subset {
            Some(k) if k < dim => {
                let mut fs: Vec<usize> = (0..dim).collect();
                // Partial Fisher–Yates: take k random features.
                for i in 0..k {
                    let j = rng.gen_range(i..dim);
                    fs.swap(i, j);
                }
                fs.truncate(k);
                fs
            }
            _ => (0..dim).collect(),
        };

        // Best split search.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
        for &f in &features {
            let mut vals: Vec<(f64, usize)> = indices.iter().map(|&i| (xs[i][f], ys[i])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let total = vals.len();
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = counts.clone();
            for k in 0..total - 1 {
                left_counts[vals[k].1] += 1;
                right_counts[vals[k].1] -= 1;
                if vals[k].0 == vals[k + 1].0 {
                    continue; // cannot split between equal values
                }
                let threshold = (vals[k].0 + vals[k + 1].0) / 2.0;
                let nl = k + 1;
                let nr = total - nl;
                let w = (nl as f64 * gini(&left_counts, nl) + nr as f64 * gini(&right_counts, nr))
                    / total as f64;
                if best.map_or(true, |(_, _, bw)| w < bw) {
                    best = Some((f, threshold, w));
                }
            }
        }

        let Some((feature, threshold, w)) = best else {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf {
                class: majority(&counts),
            });
            return id;
        };
        if w >= node_gini - 1e-12 {
            // No impurity reduction.
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf {
                class: majority(&counts),
            });
            return id;
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| xs[i][feature] <= threshold);

        // Reserve this node's slot, then build children.
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { class: 0 }); // placeholder
        let left = self.build(xs, ys, &left_idx, params, depth + 1, rng);
        let right = self.build(xs, ys, &right_idx, params, depth + 1, rng);
        self.nodes[id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        id
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, x: &[f64]) -> usize {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }
}

/// A bagged random forest of CART trees with feature subsampling.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Trains `n_trees` trees on bootstrap samples, each considering
    /// `sqrt(dim)` features per split.
    pub fn train(
        xs: &[Vec<f64>],
        ys: &[usize],
        n_classes: usize,
        n_trees: usize,
        seed: u64,
    ) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        assert!(n_trees >= 1, "need at least one tree");
        let dim = xs[0].len();
        let subset = (dim as f64).sqrt().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trees = Vec::with_capacity(n_trees);
        for t in 0..n_trees {
            // Bootstrap resample.
            let mut bx = Vec::with_capacity(xs.len());
            let mut by = Vec::with_capacity(ys.len());
            for _ in 0..xs.len() {
                let i = rng.gen_range(0..xs.len());
                bx.push(xs[i].clone());
                by.push(ys[i]);
            }
            let params = TreeParams {
                feature_subset: Some(subset),
                ..TreeParams::default()
            };
            trees.push(DecisionTree::train_seeded(
                &bx,
                &by,
                n_classes,
                &params,
                seed.wrapping_add(t as u64 + 1),
            ));
        }
        RandomForest { trees, n_classes }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Always `false` (construction requires ≥ 1 tree).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Classifier for RandomForest {
    fn predict(&self, x: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(x)] += 1;
        }
        majority(&votes)
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

/// k-nearest-neighbour classifier on z-scored features.
#[derive(Debug, Clone)]
pub struct KNearest {
    data: Vec<(Vec<f64>, usize)>,
    means: Vec<f64>,
    stds: Vec<f64>,
    k: usize,
    n_classes: usize,
}

impl KNearest {
    /// Stores the (normalised) training data.
    pub fn train(xs: &[Vec<f64>], ys: &[usize], n_classes: usize, k: usize) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        assert!(k >= 1, "k must be >= 1");
        let dim = xs[0].len();
        let n = xs.len() as f64;
        let mut means = vec![0.0; dim];
        for x in xs {
            for (m, v) in means.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for x in xs {
            for ((s, v), m) in stds.iter_mut().zip(x).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt().max(1e-9);
        }
        let data = xs
            .iter()
            .zip(ys)
            .map(|(x, &y)| {
                let z: Vec<f64> = x
                    .iter()
                    .zip(&means)
                    .zip(&stds)
                    .map(|((v, m), s)| (v - m) / s)
                    .collect();
                (z, y)
            })
            .collect();
        KNearest {
            data,
            means,
            stds,
            k,
            n_classes,
        }
    }
}

impl Classifier for KNearest {
    fn predict(&self, x: &[f64]) -> usize {
        let z: Vec<f64> = x
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect();
        let mut dists: Vec<(f64, usize)> = self
            .data
            .iter()
            .map(|(d, y)| {
                let dist: f64 = d.iter().zip(&z).map(|(a, b)| (a - b) * (a - b)).sum();
                (dist, *y)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let mut votes = vec![0usize; self.n_classes];
        for (_, y) in dists.iter().take(self.k) {
            votes[*y] += 1;
        }
        majority(&votes)
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

/// The event identification model the Annotator carries — one of the three
/// classifiers behind a single enum (object-safe without boxing).
#[derive(Debug, Clone)]
pub enum EventModel {
    Tree(DecisionTree),
    Forest(RandomForest),
    Knn(KNearest),
}

impl Classifier for EventModel {
    fn predict(&self, x: &[f64]) -> usize {
        match self {
            EventModel::Tree(m) => m.predict(x),
            EventModel::Forest(m) => m.predict(x),
            EventModel::Knn(m) => m.predict(x),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            EventModel::Tree(m) => m.name(),
            EventModel::Forest(m) => m.name(),
            EventModel::Knn(m) => m.name(),
        }
    }
}

/// Classification quality metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalMetrics {
    pub accuracy: f64,
    /// Macro-averaged F1 over classes present in the reference labels.
    pub macro_f1: f64,
    /// `confusion[truth][predicted]`.
    pub confusion: Vec<Vec<usize>>,
}

/// Evaluates a classifier on labelled data.
pub fn evaluate<C: Classifier + ?Sized>(
    model: &C,
    xs: &[Vec<f64>],
    ys: &[usize],
    n_classes: usize,
) -> EvalMetrics {
    assert_eq!(xs.len(), ys.len());
    let mut confusion = vec![vec![0usize; n_classes]; n_classes];
    let mut correct = 0usize;
    for (x, &y) in xs.iter().zip(ys) {
        let p = model.predict(x);
        confusion[y][p] += 1;
        if p == y {
            correct += 1;
        }
    }
    let accuracy = if xs.is_empty() {
        0.0
    } else {
        correct as f64 / xs.len() as f64
    };
    let mut f1s = Vec::new();
    for (c, row) in confusion.iter().enumerate() {
        let tp = row[c];
        let fn_: usize = (0..n_classes).filter(|&j| j != c).map(|j| row[j]).sum();
        let fp: usize = (0..n_classes)
            .filter(|&i| i != c)
            .map(|i| confusion[i][c])
            .sum();
        if tp + fn_ == 0 {
            continue; // class absent from reference
        }
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = tp as f64 / (tp + fn_) as f64;
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        f1s.push(f1);
    }
    let macro_f1 = if f1s.is_empty() {
        0.0
    } else {
        f1s.iter().sum::<f64>() / f1s.len() as f64
    };
    EvalMetrics {
        accuracy,
        macro_f1,
        confusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable 2-class problem: class 0 near the origin,
    /// class 1 far away, with a noise dimension.
    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let class = rng.gen_range(0..2usize);
            let base = if class == 0 { 0.0 } else { 10.0 };
            xs.push(vec![
                base + rng.gen::<f64>(),
                base * 0.5 + rng.gen::<f64>(),
                rng.gen::<f64>(), // noise
            ]);
            ys.push(class);
        }
        (xs, ys)
    }

    #[test]
    fn tree_learns_separable_data() {
        let (xs, ys) = toy_data(200, 1);
        let tree = DecisionTree::train(&xs, &ys, 2, &TreeParams::default());
        let (tx, ty) = toy_data(100, 2);
        let m = evaluate(&tree, &tx, &ty, 2);
        assert!(m.accuracy > 0.95, "accuracy {}", m.accuracy);
        assert!(m.macro_f1 > 0.95);
    }

    #[test]
    fn tree_handles_pure_node_immediately() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1, 1, 1];
        let tree = DecisionTree::train(&xs, &ys, 2, &TreeParams::default());
        assert_eq!(tree.node_count(), 1, "pure data needs a single leaf");
        assert_eq!(tree.predict(&[9.0]), 1);
    }

    #[test]
    fn tree_respects_max_depth() {
        let (xs, ys) = toy_data(200, 3);
        let stump = DecisionTree::train(
            &xs,
            &ys,
            2,
            &TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
        );
        assert!(stump.node_count() <= 3, "depth-1 tree has ≤ 3 nodes");
        let m = evaluate(&stump, &xs, &ys, 2);
        assert!(m.accuracy > 0.9, "one split separates this data");
    }

    #[test]
    fn tree_constant_features_yield_leaf() {
        let xs = vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]];
        let ys = vec![0, 1, 0, 1];
        let tree = DecisionTree::train(&xs, &ys, 2, &TreeParams::default());
        assert_eq!(tree.node_count(), 1, "unsplittable data → leaf");
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn tree_rejects_empty() {
        DecisionTree::train(&[], &[], 2, &TreeParams::default());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn tree_rejects_bad_labels() {
        DecisionTree::train(&[vec![1.0]], &[5], 2, &TreeParams::default());
    }

    #[test]
    fn forest_at_least_matches_single_tree_on_noisy_data() {
        let (xs, ys) = toy_data(300, 4);
        let forest = RandomForest::train(&xs, &ys, 2, 15, 7);
        assert_eq!(forest.len(), 15);
        let (tx, ty) = toy_data(150, 5);
        let m = evaluate(&forest, &tx, &ty, 2);
        assert!(m.accuracy > 0.95, "forest accuracy {}", m.accuracy);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let (xs, ys) = toy_data(100, 6);
        let a = RandomForest::train(&xs, &ys, 2, 5, 42);
        let b = RandomForest::train(&xs, &ys, 2, 5, 42);
        let (tx, _) = toy_data(50, 7);
        for x in &tx {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    fn knn_learns_separable_data() {
        let (xs, ys) = toy_data(200, 8);
        let knn = KNearest::train(&xs, &ys, 2, 5);
        let (tx, ty) = toy_data(100, 9);
        let m = evaluate(&knn, &tx, &ty, 2);
        assert!(m.accuracy > 0.95, "knn accuracy {}", m.accuracy);
    }

    #[test]
    fn knn_normalisation_handles_scale_imbalance() {
        // Feature 0 discriminates but is tiny; feature 1 is huge noise.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(10);
        for i in 0..200 {
            let c = i % 2;
            xs.push(vec![c as f64 * 0.001, rng.gen::<f64>() * 1000.0]);
            ys.push(c);
        }
        let knn = KNearest::train(&xs, &ys, 2, 3);
        let correct = (0..2)
            .map(|c| usize::from(knn.predict(&[c as f64 * 0.001, 500.0]) == c))
            .sum::<usize>();
        assert_eq!(correct, 2, "z-scoring must rescue the small feature");
    }

    #[test]
    fn event_model_enum_dispatches() {
        let (xs, ys) = toy_data(100, 11);
        let m1 = EventModel::Tree(DecisionTree::train(&xs, &ys, 2, &TreeParams::default()));
        let m2 = EventModel::Forest(RandomForest::train(&xs, &ys, 2, 3, 1));
        let m3 = EventModel::Knn(KNearest::train(&xs, &ys, 2, 3));
        assert_eq!(m1.name(), "decision-tree");
        assert_eq!(m2.name(), "random-forest");
        assert_eq!(m3.name(), "knn");
        for m in [&m1, &m2, &m3] {
            assert_eq!(m.predict(&[0.2, 0.1, 0.5]), 0);
            assert_eq!(m.predict(&[10.5, 5.2, 0.5]), 1);
        }
    }

    #[test]
    fn metrics_confusion_shape_and_perfect_score() {
        let (xs, ys) = toy_data(100, 12);
        let tree = DecisionTree::train(&xs, &ys, 2, &TreeParams::default());
        let m = evaluate(&tree, &xs, &ys, 2);
        assert_eq!(m.confusion.len(), 2);
        assert_eq!(m.confusion[0].len(), 2);
        assert!(m.accuracy >= 0.99, "training accuracy on separable data");
        let total: usize = m.confusion.iter().flatten().sum();
        assert_eq!(total, xs.len());
    }

    #[test]
    fn metrics_empty_input() {
        let tree = DecisionTree::train(&[vec![0.0]], &[0], 1, &TreeParams::default());
        let m = evaluate(&tree, &[], &[], 1);
        assert_eq!(m.accuracy, 0.0);
    }
}
