//! Spatial matching: attach semantic regions to record runs (paper §3:
//! "The spatial annotation is made by matching the semantic regions in the
//! DSM created by the Space Modeler").

use trips_data::RawRecord;
use trips_dsm::{DigitalSpaceModel, RegionId};

/// The dominant region of a record slice: the region containing the largest
/// number of records (majority vote; ties break to the earlier-covering
/// region). Records outside all regions don't vote. `None` when no record
/// falls into any region.
pub fn dominant_region(dsm: &DigitalSpaceModel, records: &[RawRecord]) -> Option<RegionId> {
    let mut counts: std::collections::BTreeMap<RegionId, (usize, usize)> =
        std::collections::BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if let Some(region) = dsm.region_at(&r.location) {
            let e = counts.entry(region.id).or_insert((0, i));
            e.0 += 1;
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.1 .1.cmp(&a.1 .1)))
        .map(|(id, _)| id)
}

/// A maximal run of consecutive records inside one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRun {
    pub region: RegionId,
    /// Index range `[first, last]` into the record slice.
    pub first: usize,
    pub last: usize,
}

/// Splits a record slice into maximal per-region runs, skipping records that
/// match no region. Transit snippets become one run per region traversed —
/// each then yields its own `pass-by` semantics.
pub fn region_runs(dsm: &DigitalSpaceModel, records: &[RawRecord]) -> Vec<RegionRun> {
    let mut runs: Vec<RegionRun> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let here = dsm.region_at(&r.location).map(|reg| reg.id);
        match (runs.last_mut(), here) {
            (Some(run), Some(id)) if run.region == id && run.last + 1 == i => {
                run.last = i;
            }
            (_, Some(id)) => runs.push(RegionRun {
                region: id,
                first: i,
                last: i,
            }),
            (_, None) => {}
        }
    }
    // Merge runs of the same region separated only by unmatched records.
    let mut merged: Vec<RegionRun> = Vec::new();
    for run in runs {
        match merged.last_mut() {
            Some(prev) if prev.region == run.region => prev.last = run.last,
            _ => merged.push(run),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, Timestamp};
    use trips_dsm::builder::MallBuilder;

    fn rec(x: f64, y: f64, secs: i64) -> RawRecord {
        RawRecord::new(
            DeviceId::new("d"),
            x,
            y,
            0,
            Timestamp::from_millis(secs * 1000),
        )
    }

    fn mall() -> DigitalSpaceModel {
        MallBuilder::new()
            .shops_per_row(4)
            .with_cashiers(false)
            .build()
    }

    #[test]
    fn dominant_region_majority() {
        let dsm = mall();
        // 3 records in the first south shop (x<10, y<8), 1 in the hallway.
        let records = vec![
            rec(5.0, 4.0, 0),
            rec(5.2, 4.1, 7),
            rec(5.1, 3.9, 14),
            rec(5.0, 11.0, 21),
        ];
        let dom = dominant_region(&dsm, &records).unwrap();
        let name = &dsm.region(dom).unwrap().name;
        assert!(!name.starts_with("Center Hall"), "shop must win: {name}");
    }

    #[test]
    fn dominant_region_none_when_outside() {
        let dsm = mall();
        let records = vec![rec(-50.0, -50.0, 0), rec(-51.0, -50.0, 7)];
        assert!(dominant_region(&dsm, &records).is_none());
        assert!(dominant_region(&dsm, &[]).is_none());
    }

    #[test]
    fn region_runs_walk_through_hall() {
        let dsm = mall();
        // Shop (5,4) → hallway (5,11 → 25,11) → another shop (25,4).
        let records = vec![
            rec(5.0, 4.0, 0),
            rec(5.0, 11.0, 7),
            rec(15.0, 11.0, 14),
            rec(25.0, 11.0, 21),
            rec(25.0, 4.0, 28),
        ];
        let runs = region_runs(&dsm, &records);
        assert_eq!(runs.len(), 3, "shop, hall, shop: {runs:?}");
        assert_eq!(runs[0].first, 0);
        assert_eq!(runs[0].last, 0);
        assert_eq!(runs[1].first, 1);
        assert_eq!(runs[1].last, 3);
        assert_eq!(runs[2].first, 4);
        let hall = dsm.region(runs[1].region).unwrap();
        assert!(hall.name.starts_with("Center Hall"));
    }

    #[test]
    fn region_runs_merge_across_unmatched() {
        let dsm = mall();
        // Two hallway records with an out-of-building blip between them.
        let records = vec![
            rec(15.0, 11.0, 0),
            rec(-100.0, -100.0, 7),
            rec(16.0, 11.0, 14),
        ];
        let runs = region_runs(&dsm, &records);
        assert_eq!(runs.len(), 1, "same region re-entered: merge");
        assert_eq!(runs[0].first, 0);
        assert_eq!(runs[0].last, 2);
    }

    #[test]
    fn region_runs_empty_input() {
        let dsm = mall();
        assert!(region_runs(&dsm, &[]).is_empty());
    }
}
