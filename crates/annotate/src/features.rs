//! Feature extraction for event identification.
//!
//! The paper (§3): "The feature extraction considers the information of
//! positioning location variance, traveling distance and speed, covering
//! range, number of turns, etc." — this module computes exactly that
//! vector from a record slice.

use trips_data::RawRecord;
use trips_geom::{algorithms, BoundingBox, Point, Polyline};

/// Names of the extracted features, aligned with [`FeatureVector::values`].
pub const FEATURE_NAMES: [&str; 9] = [
    "location_variance",
    "traveling_distance",
    "mean_speed",
    "max_leg_speed",
    "covering_range",
    "turn_count",
    "duration_secs",
    "record_count",
    "floor_changes",
];

/// Number of features.
pub const FEATURE_DIM: usize = FEATURE_NAMES.len();

/// Minimum direction change that counts as a turn (radians ≈ 30°).
const TURN_ANGLE: f64 = 0.52;

/// The extracted feature vector of one snippet.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    values: [f64; FEATURE_DIM],
}

impl FeatureVector {
    /// Extracts features from a record slice.
    ///
    /// Returns a zero vector for an empty slice (degenerate snippets are the
    /// caller's responsibility to filter).
    pub fn extract(records: &[RawRecord]) -> FeatureVector {
        let mut v = [0.0f64; FEATURE_DIM];
        if records.is_empty() {
            return FeatureVector { values: v };
        }
        let points: Vec<Point> = records.iter().map(|r| r.location.xy).collect();
        let duration = (records[records.len() - 1].ts - records[0].ts).as_secs_f64();

        // Location variance.
        v[0] = algorithms::location_variance(&points);
        // Traveling distance.
        let dist = algorithms::path_length(&points);
        v[1] = dist;
        // Mean speed.
        v[2] = if duration > 0.0 { dist / duration } else { 0.0 };
        // Max leg speed.
        v[3] = records
            .windows(2)
            .filter_map(|w| w[1].planar_speed_from(&w[0]))
            .fold(0.0, f64::max);
        // Covering range: bbox diagonal (hull diameter collapses for
        // near-collinear transits; the diagonal is stable).
        v[4] = BoundingBox::from_points(points.iter().copied()).diagonal();
        // Turns.
        v[5] = if points.len() >= 3 {
            Polyline::new(points.clone()).count_turns(TURN_ANGLE) as f64
        } else {
            0.0
        };
        // Duration.
        v[6] = duration;
        // Record count.
        v[7] = records.len() as f64;
        // Floor changes.
        v[8] = records
            .windows(2)
            .filter(|w| w[0].location.floor != w[1].location.floor)
            .count() as f64;

        FeatureVector { values: v }
    }

    /// The raw feature values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Feature by name (test/diagnostic convenience).
    pub fn get(&self, name: &str) -> Option<f64> {
        FEATURE_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| self.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, Timestamp};

    fn rec(x: f64, y: f64, floor: i16, secs: i64) -> RawRecord {
        RawRecord::new(
            DeviceId::new("d"),
            x,
            y,
            floor,
            Timestamp::from_millis(secs * 1000),
        )
    }

    #[test]
    fn stay_features_are_small() {
        // Tight dwell: low variance, short distance, low speed.
        let recs: Vec<RawRecord> = (0..20)
            .map(|i| rec(5.0 + 0.05 * (i % 3) as f64, 5.0, 0, i * 7))
            .collect();
        let f = FeatureVector::extract(&recs);
        assert!(f.get("location_variance").unwrap() < 0.1);
        assert!(f.get("mean_speed").unwrap() < 0.1);
        assert!(f.get("covering_range").unwrap() < 0.5);
        assert_eq!(f.get("floor_changes").unwrap(), 0.0);
        assert_eq!(f.get("record_count").unwrap(), 20.0);
    }

    #[test]
    fn walk_features_are_large() {
        let recs: Vec<RawRecord> = (0..20).map(|i| rec(1.3 * i as f64, 0.0, 0, i)).collect();
        let f = FeatureVector::extract(&recs);
        assert!(f.get("traveling_distance").unwrap() > 20.0);
        assert!((f.get("mean_speed").unwrap() - 1.3).abs() < 0.01);
        assert!(f.get("covering_range").unwrap() > 20.0);
    }

    #[test]
    fn turn_counting_in_zigzag() {
        let recs = vec![
            rec(0.0, 0.0, 0, 0),
            rec(5.0, 0.0, 0, 5),
            rec(5.0, 5.0, 0, 10),
            rec(10.0, 5.0, 0, 15),
        ];
        let f = FeatureVector::extract(&recs);
        assert_eq!(f.get("turn_count").unwrap(), 2.0);
    }

    #[test]
    fn floor_changes_counted() {
        let recs = vec![
            rec(0.0, 0.0, 0, 0),
            rec(0.0, 0.0, 1, 30),
            rec(0.0, 0.0, 1, 60),
            rec(0.0, 0.0, 2, 90),
        ];
        let f = FeatureVector::extract(&recs);
        assert_eq!(f.get("floor_changes").unwrap(), 2.0);
    }

    #[test]
    fn max_leg_speed_exceeds_mean() {
        // Slow-slow-fast pattern.
        let recs = vec![
            rec(0.0, 0.0, 0, 0),
            rec(1.0, 0.0, 0, 10),
            rec(20.0, 0.0, 0, 12),
        ];
        let f = FeatureVector::extract(&recs);
        assert!(f.get("max_leg_speed").unwrap() > f.get("mean_speed").unwrap());
        assert!((f.get("max_leg_speed").unwrap() - 9.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = FeatureVector::extract(&[]);
        assert!(empty.values().iter().all(|&x| x == 0.0));
        let single = FeatureVector::extract(&[rec(3.0, 3.0, 0, 0)]);
        assert_eq!(single.get("record_count").unwrap(), 1.0);
        assert_eq!(single.get("traveling_distance").unwrap(), 0.0);
        assert_eq!(single.get("mean_speed").unwrap(), 0.0);
    }

    #[test]
    fn names_align_with_dim() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
        let f = FeatureVector::extract(&[rec(0.0, 0.0, 0, 0)]);
        assert_eq!(f.values().len(), FEATURE_DIM);
        assert!(f.get("not_a_feature").is_none());
    }
}
