//! Property-based tests for the Annotation layer: splitting partitions,
//! feature invariances, and classifier sanity on arbitrary data.

use proptest::prelude::*;
use trips_annotate::features::FeatureVector;
use trips_annotate::model::{Classifier, DecisionTree, KNearest, TreeParams};
use trips_annotate::{split, SplitConfig};
use trips_data::{DeviceId, Duration, PositioningSequence, RawRecord, Timestamp};

fn arb_records() -> impl Strategy<Value = Vec<RawRecord>> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, 0i16..3, 1i64..20), 1..80).prop_map(
        |steps| {
            let d = DeviceId::new("p");
            let mut t = 0i64;
            steps
                .into_iter()
                .map(|(x, y, f, dt)| {
                    t += dt * 1000;
                    RawRecord::new(d.clone(), x, y, f, Timestamp::from_millis(t))
                })
                .collect()
        },
    )
}

fn arb_split_config() -> impl Strategy<Value = SplitConfig> {
    (0.5f64..10.0, 5i64..120, 2usize..10).prop_map(|(radius, win, min_pts)| SplitConfig {
        radius,
        window: Duration::from_secs(win),
        min_pts,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_partitions_exactly(records in arb_records(), config in arb_split_config()) {
        let seq = PositioningSequence::from_records(DeviceId::new("p"), records);
        let snippets = split::split(&seq, &config);
        if seq.is_empty() {
            prop_assert!(snippets.is_empty());
        } else {
            prop_assert_eq!(snippets[0].first, 0);
            prop_assert_eq!(snippets.last().unwrap().last, seq.len() - 1);
            for w in snippets.windows(2) {
                prop_assert_eq!(w[0].last + 1, w[1].first);
                prop_assert_ne!(w[0].kind, w[1].kind, "adjacent snippets alternate");
            }
            let covered: usize = snippets.iter().map(|s| s.len()).sum();
            prop_assert_eq!(covered, seq.len());
        }
    }

    #[test]
    fn fixed_window_respects_bound(records in arb_records(), win_s in 5i64..300) {
        let seq = PositioningSequence::from_records(DeviceId::new("p"), records);
        let snippets = split::split_fixed_window(&seq, Duration::from_secs(win_s));
        for s in &snippets {
            let span = seq.records()[s.last].ts - seq.records()[s.first].ts;
            prop_assert!(span <= Duration::from_secs(win_s));
        }
        let covered: usize = snippets.iter().map(|s| s.len()).sum();
        prop_assert_eq!(covered, seq.len());
    }

    #[test]
    fn features_are_finite_and_nonnegative(records in arb_records()) {
        let f = FeatureVector::extract(&records);
        for (i, v) in f.values().iter().enumerate() {
            prop_assert!(v.is_finite(), "feature {i} not finite");
            prop_assert!(*v >= 0.0, "feature {i} negative: {v}");
        }
    }

    #[test]
    fn features_invariant_to_time_translation(records in arb_records(), shift_s in 0i64..100000) {
        let f1 = FeatureVector::extract(&records);
        let shifted: Vec<RawRecord> = records
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.ts = r.ts + Duration::from_secs(shift_s);
                r
            })
            .collect();
        let f2 = FeatureVector::extract(&shifted);
        for (a, b) in f1.values().iter().zip(f2.values()) {
            prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
        }
    }

    #[test]
    fn features_variance_invariant_to_space_translation(records in arb_records(),
                                                        dx in -100.0f64..100.0,
                                                        dy in -100.0f64..100.0) {
        let f1 = FeatureVector::extract(&records);
        let moved: Vec<RawRecord> = records
            .iter()
            .map(|r| {
                RawRecord::new(
                    r.device.clone(),
                    r.location.xy.x + dx,
                    r.location.xy.y + dy,
                    r.location.floor,
                    r.ts,
                )
            })
            .collect();
        let f2 = FeatureVector::extract(&moved);
        // Variance, distance, speeds, range, turns are translation-invariant.
        for name in ["location_variance", "traveling_distance", "mean_speed", "covering_range", "turn_count"] {
            let a = f1.get(name).unwrap();
            let b = f2.get(name).unwrap();
            prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "{name}: {a} vs {b}");
        }
    }

    #[test]
    fn tree_training_always_terminates_and_predicts_valid_class(
        data in prop::collection::vec((prop::collection::vec(-10.0f64..10.0, 4), 0usize..3), 4..60)
    ) {
        let xs: Vec<Vec<f64>> = data.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<usize> = data.iter().map(|(_, y)| *y).collect();
        let tree = DecisionTree::train(&xs, &ys, 3, &TreeParams::default());
        for x in &xs {
            prop_assert!(tree.predict(x) < 3);
        }
    }

    #[test]
    fn tree_perfectly_fits_separable_data(n in 4usize..40) {
        // One feature perfectly separates the classes.
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
        let tree = DecisionTree::train(&xs, &ys, 2, &TreeParams { max_depth: 16, min_samples_split: 2, feature_subset: None });
        for (x, &y) in xs.iter().zip(&ys) {
            prop_assert_eq!(tree.predict(x), y);
        }
    }

    #[test]
    fn knn_predicts_training_label_for_k1(
        data in prop::collection::vec((prop::collection::vec(-10.0f64..10.0, 3), 0usize..2), 2..40)
    ) {
        // Deduplicate identical feature vectors with conflicting labels.
        let mut seen = std::collections::BTreeMap::new();
        for (x, y) in &data {
            let key: Vec<i64> = x.iter().map(|v| (v * 1000.0) as i64).collect();
            seen.entry(key).or_insert((x.clone(), *y));
        }
        let xs: Vec<Vec<f64>> = seen.values().map(|(x, _)| x.clone()).collect();
        let ys: Vec<usize> = seen.values().map(|(_, y)| *y).collect();
        let knn = KNearest::train(&xs, &ys, 2, 1);
        for (x, &y) in xs.iter().zip(&ys) {
            prop_assert_eq!(knn.predict(x), y, "1-NN must memorise training data");
        }
    }
}
