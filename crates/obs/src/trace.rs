//! Request-path tracing: span records, per-shard rings, and the slow-log.
//!
//! A [`SpanRecord`] is one request's walk through the serving pipeline,
//! with a monotonic-clock duration per [`STAGES`] stage. The serving
//! layer stamps stages as the request moves (loop shard → queue → worker
//! → loop shard) and submits the finished span to its loop shard's
//! [`TraceRing`] — a fixed-size overwrite-oldest buffer, so tracing
//! memory is constant no matter the request rate. Spans whose total
//! meets the [`SlowLog`] threshold are additionally promoted (cloned)
//! into the slow-log, the retrievable evidence trail for "why was that
//! request slow" (`TraceDump` / `SlowLog` admin endpoints).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pipeline stage names, in request order. `stages_us` in a
/// [`SpanRecord`] is parallel to this array.
///
/// * `accept` — connection accepted → adopted by its loop shard
///   (amortized: non-zero only on a connection's first request).
/// * `loop_ready` — readiness wakeup → request parsed off the socket
///   (read + frame decode on the loop shard).
/// * `queue_wait` — parsed → dequeued by a worker.
/// * `decode` — worker-side execution outside the lock/store/rule
///   sections (batch grouping, translation, response encoding).
/// * `translator_lock` — waiting on the device-shard translator lock.
/// * `store_publish` — inside the store: shard-lock wait + apply + WAL
///   append.
/// * `rule_eval` — standing-rule evaluation + alert sink delivery.
/// * `reply_write` — completion adopted by the loop shard → response
///   bytes written to the socket.
pub const STAGES: [&str; 8] = [
    "accept",
    "loop_ready",
    "queue_wait",
    "decode",
    "translator_lock",
    "store_publish",
    "rule_eval",
    "reply_write",
];

/// Number of pipeline stages (the length of [`STAGES`]).
pub const STAGE_COUNT: usize = STAGES.len();

/// One traced request: identity, stage timings, total.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Server-wide request ordinal.
    pub id: u64,
    /// Connection token the request arrived on.
    pub conn: u64,
    /// Loop shard that served the connection.
    pub shard: usize,
    /// Endpoint family (`ingest` / `query` / `admin`).
    pub endpoint: String,
    /// Request kind (`Ingest`, `Query`, …).
    pub kind: String,
    /// Wall-clock ms when the span completed (for correlating with logs;
    /// stage math uses the monotonic clock only).
    pub unix_ms: i64,
    /// Total latency, parse → reply written, in microseconds.
    pub total_us: u64,
    /// Per-stage microseconds, parallel to [`STAGES`]. Always
    /// [`STAGE_COUNT`] entries — stages a request skips read 0, so every
    /// span tree shows the full pipeline.
    pub stages_us: Vec<u64>,
}

impl SpanRecord {
    /// The duration of a stage by name, if the name is known.
    pub fn stage_us(&self, name: &str) -> Option<u64> {
        STAGES
            .iter()
            .position(|s| *s == name)
            .and_then(|i| self.stages_us.get(i).copied())
    }

    /// `(stage, µs)` pairs in pipeline order.
    pub fn stage_pairs(&self) -> Vec<(&'static str, u64)> {
        STAGES
            .iter()
            .copied()
            .zip(self.stages_us.iter().copied())
            .collect()
    }
}

/// A fixed-capacity overwrite-oldest span buffer. One per loop shard:
/// the owning shard pushes every completed span; `TraceDump` snapshots
/// across all shards. The mutex is per-shard (push and snapshot touch
/// one shard's ring), never global.
pub struct TraceRing {
    slots: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

impl TraceRing {
    /// `capacity` is clamped to at least 1.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            slots: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a span, evicting the oldest when full.
    pub fn push(&self, span: SpanRecord) {
        let mut slots = self.slots.lock();
        if slots.len() == self.capacity {
            slots.pop_front();
        }
        slots.push_back(span);
    }

    /// Spans currently held, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.slots.lock().iter().cloned().collect()
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }
}

/// The promoted-span log: spans whose total meets the threshold are
/// cloned here, newest kept, capped. Threshold 0 promotes everything
/// (the "trace one request end-to-end" switch).
pub struct SlowLog {
    entries: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    threshold_us: AtomicU64,
    /// Spans evicted to make room — how much history the cap cost.
    evicted: AtomicU64,
}

impl SlowLog {
    pub fn new(capacity: usize, threshold_us: u64) -> Self {
        SlowLog {
            entries: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            threshold_us: AtomicU64::new(threshold_us),
            evicted: AtomicU64::new(0),
        }
    }

    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Promotes `span` if it meets the threshold; returns whether it was
    /// promoted.
    pub fn offer(&self, span: &SpanRecord) -> bool {
        if span.total_us < self.threshold_us() {
            return false;
        }
        let mut entries = self.entries.lock();
        if entries.len() == self.capacity {
            entries.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(span.clone());
        true
    }

    /// Up to `limit` most recent promoted spans, oldest of those first
    /// (`limit` 0 = all).
    pub fn snapshot(&self, limit: usize) -> Vec<SpanRecord> {
        let entries = self.entries.lock();
        let take = if limit == 0 {
            entries.len()
        } else {
            limit.min(entries.len())
        };
        entries.iter().skip(entries.len() - take).cloned().collect()
    }

    /// Promoted spans evicted by the cap so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drops every promoted span (the eviction counter survives).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, total_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            conn: 1,
            shard: 0,
            endpoint: "ingest".into(),
            kind: "Ingest".into(),
            unix_ms: 0,
            total_us,
            stages_us: vec![0; STAGE_COUNT],
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(span(i, 10));
        }
        let ids: Vec<u64> = ring.snapshot().iter().map(|s| s.id).collect();
        assert_eq!(ids, [2, 3, 4]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn slow_log_threshold_and_cap() {
        let log = SlowLog::new(2, 100);
        assert!(!log.offer(&span(1, 99)), "under threshold");
        assert!(log.offer(&span(2, 100)), "at threshold");
        assert!(log.offer(&span(3, 500)));
        assert!(log.offer(&span(4, 500)));
        assert_eq!(log.evicted(), 1, "cap evicted one");
        let ids: Vec<u64> = log.snapshot(0).iter().map(|s| s.id).collect();
        assert_eq!(ids, [3, 4]);
        let ids: Vec<u64> = log.snapshot(1).iter().map(|s| s.id).collect();
        assert_eq!(ids, [4], "limit keeps the most recent");
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn threshold_zero_promotes_everything() {
        let log = SlowLog::new(8, 0);
        assert!(log.offer(&span(1, 0)));
    }

    #[test]
    fn span_stage_lookup_and_serde_roundtrip() {
        let mut s = span(7, 1234);
        s.stages_us[2] = 55; // queue_wait
        assert_eq!(s.stage_us("queue_wait"), Some(55));
        assert_eq!(s.stage_us("nonsense"), None);
        assert_eq!(s.stage_pairs().len(), STAGE_COUNT);
        let json = serde_json::to_string(&s).unwrap();
        let back: SpanRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
