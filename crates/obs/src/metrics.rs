//! The metrics registry: counters, gauges, and log-bucketed histograms
//! with label sets, rendered in the Prometheus text exposition format.
//!
//! ## Lock discipline
//!
//! The registry's mutex guards only the *family table* — it is taken at
//! registration (boot) and at scrape. Every instrument handed out is an
//! `Arc` of plain atomics, so recording on the hot path is one or two
//! relaxed `fetch_add`s. Histograms additionally **stripe** their buckets
//! across [`STRIPES`] independent atomic arrays indexed by a per-thread
//! id, so concurrent workers rarely touch the same cache line; stripes
//! are merged into one [`HistogramSnapshot`] at scrape time.
//!
//! ## Buckets
//!
//! Histogram buckets are powers of two in microseconds: bucket `i` counts
//! observations `≤ 2^i µs` (the last bucket is `+Inf`). Log bucketing
//! bounds memory at [`HIST_BUCKETS`] words per stripe while keeping
//! relative quantile error under ~2× across nine orders of magnitude —
//! the right trade for latency distributions. Quantiles interpolate
//! linearly inside the winning bucket and clamp to the tracked maximum.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of histogram buckets (last bucket is `+Inf`).
pub const HIST_BUCKETS: usize = 28;
/// Stripe count — a small power of two: enough to spread a worker pool,
/// small enough that scrape-time merging stays trivial.
const STRIPES: usize = 8;

/// A monotonically increasing counter. Clone-cheap (`Arc` of an atomic).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for mirroring an already-monotonic source
    /// (an existing atomic, a WAL counter) into the registry at scrape
    /// time. The caller owns monotonicity.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Clone-cheap.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One stripe of histogram state. `#[repr(align(128))]` keeps two stripes
/// off the same cache-line pair under false sharing.
#[repr(align(128))]
struct Stripe {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

struct HistogramCore {
    stripes: Vec<Stripe>,
    max_us: AtomicU64,
}

/// A log-bucketed latency histogram (microsecond domain). Clone-cheap;
/// recording is 3 relaxed `fetch_add`s on a per-thread stripe plus one
/// `fetch_max`.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a microsecond value: smallest `i` with `v ≤ 2^i`
/// (0 and 1 both land in bucket 0), clamped into the `+Inf` bucket.
#[inline]
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        ((u64::BITS - (us - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Upper bound (µs) of bucket `i`; `None` for the `+Inf` bucket.
#[inline]
fn bucket_le(i: usize) -> Option<u64> {
    (i < HIST_BUCKETS - 1).then(|| 1u64 << i)
}

thread_local! {
    static STRIPE_ID: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES
    };
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
                max_us: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation in microseconds.
    #[inline]
    pub fn observe_us(&self, us: u64) {
        let stripe = &self.core.stripes[STRIPE_ID.with(|id| *id)];
        stripe.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        stripe.sum_us.fetch_add(us, Ordering::Relaxed);
        stripe.count.fetch_add(1, Ordering::Relaxed);
        self.core.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one observation as a [`Duration`].
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_us(d.as_micros() as u64);
    }

    /// Merges every stripe into one point-in-time view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut sum_us = 0u64;
        let mut count = 0u64;
        for stripe in &self.core.stripes {
            for (acc, b) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum_us = sum_us.saturating_add(stripe.sum_us.load(Ordering::Relaxed));
            count += stripe.count.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_us,
            count,
            max_us: self.core.max_us.load(Ordering::Relaxed),
        }
    }
}

/// A merged, immutable view of a [`Histogram`] (see
/// [`Histogram::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-cumulative per-bucket counts (`buckets[i]` = observations in
    /// `(2^(i-1), 2^i]`, first bucket `[0, 1]`, last `+Inf`).
    pub buckets: [u64; HIST_BUCKETS],
    pub sum_us: u64,
    pub count: u64,
    /// Largest single observation — exact, so tail quantiles never report
    /// above reality.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Estimated quantile (`q` in `[0, 1]`) in microseconds: nearest-rank
    /// bucket walk with linear interpolation inside the winning bucket,
    /// clamped to the exact tracked maximum. Zero when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev_cum = cum;
            cum += n;
            if cum >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = bucket_le(i).unwrap_or(self.max_us).min(self.max_us.max(lo));
                let frac = (rank - prev_cum) as f64 / n as f64;
                let est = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                return (est as u64).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Arithmetic mean in microseconds; zero when empty.
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// One metric family: a name + help + type, and its series keyed by
/// rendered label set.
struct Family {
    help: String,
    /// `label-string → instrument`; the label string is pre-rendered
    /// (`key="value",…`, sorted by key) so scrape is a straight dump.
    series: BTreeMap<String, Instrument>,
}

/// The metric family table. Create one per process (or per server),
/// register instruments at boot, render at scrape.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_unstable_by_key(|(k, _)| *k);
    pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",")
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        let mut families = self.families.lock();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        let key = render_labels(labels);
        let entry = family.series.entry(key).or_insert_with(make);
        entry.clone()
    }

    /// Registers (or fetches) a counter series. Same name + labels always
    /// returns a handle to the same underlying value.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, || Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Registers (or fetches) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, || Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Registers (or fetches) a histogram series (microsecond domain —
    /// by convention the name ends in `_us`).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.instrument(name, help, labels, || {
            Instrument::Histogram(Histogram::new())
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (version 0.0.4): families sorted by name, series sorted by
    /// label set, histograms as cumulative `_bucket{le=…}` + `_sum` +
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock();
        let mut out = String::with_capacity(4096);
        for (name, family) in families.iter() {
            let kind = match family.series.values().next() {
                Some(i) => i.kind(),
                None => continue,
            };
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, instrument) in &family.series {
                match instrument {
                    Instrument::Counter(c) => {
                        out.push_str(&sample_line(name, labels, &c.get().to_string()));
                    }
                    Instrument::Gauge(g) => {
                        out.push_str(&sample_line(name, labels, &g.get().to_string()));
                    }
                    Instrument::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, n) in snap.buckets.iter().enumerate() {
                            cum += n;
                            let le = match bucket_le(i) {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            let with_le = if labels.is_empty() {
                                format!("le=\"{le}\"")
                            } else {
                                format!("{labels},le=\"{le}\"")
                            };
                            out.push_str(&sample_line(
                                &format!("{name}_bucket"),
                                &with_le,
                                &cum.to_string(),
                            ));
                        }
                        out.push_str(&sample_line(
                            &format!("{name}_sum"),
                            labels,
                            &snap.sum_us.to_string(),
                        ));
                        out.push_str(&sample_line(
                            &format!("{name}_count"),
                            labels,
                            &snap.count.to_string(),
                        ));
                    }
                }
            }
        }
        out
    }
}

fn sample_line(name: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{labels}}} {value}\n")
    }
}

/// Parses a Prometheus text exposition, returning `series → value` (the
/// series key includes its label set). Errors on malformed sample lines,
/// invalid metric names, or unparseable values — the checker behind the
/// scrape-under-load test and the CI smoke gate.
pub fn validate_exposition(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return Err(format!("line {}: unknown comment form: {line}", lineno + 1));
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line}", lineno + 1))?;
        let name = match series.split_once('{') {
            Some((n, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {}: unterminated label set", lineno + 1));
                }
                n
            }
            None => series,
        };
        if !valid_metric_name(name) {
            return Err(format!("line {}: invalid metric name `{name}`", lineno + 1));
        }
        let value: f64 = value
            .parse()
            .map_err(|e| format!("line {}: bad value `{value}`: {e}", lineno + 1))?;
        out.insert(series.to_string(), value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_smallest_power_of_two_cover() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_track_known_distribution() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.observe_us(us);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum_us, 500_500);
        assert_eq!(snap.max_us, 1000);
        let p50 = snap.quantile_us(0.50);
        // Log buckets: the true p50 (500) lives in bucket (256, 512];
        // interpolation keeps the estimate inside that bucket.
        assert!((257..=512).contains(&p50), "p50 estimate {p50}");
        assert_eq!(snap.quantile_us(1.0), 1000, "p100 clamps to exact max");
        assert!(snap.quantile_us(0.99) <= 1000);
        assert_eq!(snap.mean_us(), 500);
    }

    #[test]
    fn histogram_merges_across_threads() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        h.observe_us(10);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 400);
        assert_eq!(snap.sum_us, 4000);
    }

    #[test]
    fn registry_returns_same_handle_for_same_series() {
        let reg = Registry::new();
        let a = reg.counter(
            "trips_requests_total",
            "requests",
            &[("endpoint", "ingest")],
        );
        let b = reg.counter(
            "trips_requests_total",
            "requests",
            &[("endpoint", "ingest")],
        );
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "one underlying series");
        let other = reg.counter("trips_requests_total", "requests", &[("endpoint", "query")]);
        assert_eq!(other.get(), 0, "distinct label set is a distinct series");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let reg = Registry::new();
        let _ = reg.counter("trips_x", "x", &[]);
        let _ = reg.gauge("trips_x", "x", &[]);
    }

    #[test]
    fn render_is_valid_exposition_with_histogram_shape() {
        let reg = Registry::new();
        reg.counter(
            "trips_requests_total",
            "total requests",
            &[("endpoint", "ingest")],
        )
        .add(5);
        reg.gauge("trips_connections_active", "open connections", &[])
            .set(3);
        let h = reg.histogram(
            "trips_latency_us",
            "request latency",
            &[("endpoint", "query")],
        );
        h.observe_us(3);
        h.observe_us(100);
        let text = reg.render_prometheus();
        let parsed = validate_exposition(&text).expect("valid exposition");
        assert_eq!(
            parsed.get("trips_requests_total{endpoint=\"ingest\"}"),
            Some(&5.0)
        );
        assert_eq!(parsed.get("trips_connections_active"), Some(&3.0));
        assert_eq!(
            parsed.get("trips_latency_us_count{endpoint=\"query\"}"),
            Some(&2.0)
        );
        assert_eq!(
            parsed.get("trips_latency_us_sum{endpoint=\"query\"}"),
            Some(&103.0)
        );
        assert_eq!(
            parsed.get("trips_latency_us_bucket{endpoint=\"query\",le=\"+Inf\"}"),
            Some(&2.0)
        );
        // Cumulative buckets never decrease.
        let mut last = 0.0;
        for i in 0..HIST_BUCKETS - 1 {
            if let Some(v) = parsed.get(&format!(
                "trips_latency_us_bucket{{endpoint=\"query\",le=\"{}\"}}",
                1u64 << i
            )) {
                assert!(*v >= last, "bucket {i} decreased");
                last = *v;
            }
        }
        assert!(text.contains("# TYPE trips_latency_us histogram"));
        assert!(text.contains("# HELP trips_requests_total total requests"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("trips_weird_total", "weird", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = reg.render_prometheus();
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "{text}");
        validate_exposition(&text).expect("escaped output still parses");
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_exposition("not a metric line at all{").is_err());
        assert!(validate_exposition("name_only_no_value").is_err());
        assert!(validate_exposition("9starts_with_digit 1").is_err());
        assert!(validate_exposition("ok_metric nanvalue_x").is_err());
    }
}
