//! The global observability switch and the cross-crate stage
//! accumulators.
//!
//! A worker thread executing one request calls down through crates that
//! know nothing about spans: `SemanticsStore::ingest` takes a shard lock
//! and applies the batch, `RuleEngine::publish` evaluates standing rules.
//! Threading a span context through those signatures would couple every
//! layer to the server; instead the instrumented callees add their
//! elapsed nanoseconds to **thread-local cells** here, and the server
//! worker reads-and-resets them around the call ([`take`]). The
//! attribution is exact because the whole call chain runs on the worker's
//! thread.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Whether the observability layer is on. Instrumented hot paths check
/// this before reading clocks; handles still exist (and render zeros)
/// when off, so scrape endpoints keep working.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns the observability layer on or off process-wide
/// (`trips-serve --no-obs` → off). Cheap to call at any time.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// One relaxed load — the guard instrumented hot paths take before
/// reading clocks or recording spans.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Same-thread stage nanoseconds accumulated below the server layer for
/// the request currently executing (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Inside `SemanticsStore` mutators: shard-locked apply + WAL append
    /// (lock wait excluded — it is reported separately).
    pub store_ns: u64,
    /// Waiting for the store shard write lock.
    pub store_lock_wait_ns: u64,
    /// Inside `RuleEngine::publish` (evaluation + sink delivery).
    pub rules_ns: u64,
    /// Waiting for a translator-shard lock (server layer; accumulated
    /// here so the coalescing and multi-shard paths attribute alike).
    pub translator_lock_ns: u64,
}

thread_local! {
    static STORE_NS: Cell<u64> = const { Cell::new(0) };
    static STORE_LOCK_WAIT_NS: Cell<u64> = const { Cell::new(0) };
    static RULES_NS: Cell<u64> = const { Cell::new(0) };
    static TRANSLATOR_LOCK_NS: Cell<u64> = const { Cell::new(0) };
}

/// Adds store-apply time (shard-locked section) for the current thread's
/// in-flight request.
#[inline]
pub fn add_store_ns(ns: u64) {
    STORE_NS.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Adds store shard-lock wait time for the current thread's in-flight
/// request.
#[inline]
pub fn add_store_lock_wait_ns(ns: u64) {
    STORE_LOCK_WAIT_NS.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Adds rule-evaluation time for the current thread's in-flight request.
#[inline]
pub fn add_rules_ns(ns: u64) {
    RULES_NS.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Adds translator-shard lock wait time for the current thread's
/// in-flight request.
#[inline]
pub fn add_translator_lock_ns(ns: u64) {
    TRANSLATOR_LOCK_NS.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Reads and resets this thread's accumulators. The server worker calls
/// this after executing a request; anything accumulated since the last
/// `take` belongs to that request.
pub fn take() -> StageNanos {
    StageNanos {
        store_ns: STORE_NS.with(|c| c.replace(0)),
        store_lock_wait_ns: STORE_LOCK_WAIT_NS.with(|c| c.replace(0)),
        rules_ns: RULES_NS.with(|c| c.replace(0)),
        translator_lock_ns: TRANSLATOR_LOCK_NS.with(|c| c.replace(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulators_are_per_thread_and_reset_on_take() {
        let _ = take();
        add_store_ns(10);
        add_store_ns(5);
        add_rules_ns(7);
        add_store_lock_wait_ns(3);
        add_translator_lock_ns(2);
        let t = std::thread::spawn(|| {
            add_store_ns(1000);
            take()
        })
        .join()
        .unwrap();
        assert_eq!(t.store_ns, 1000, "other thread sees only its own adds");
        let here = take();
        assert_eq!(
            here,
            StageNanos {
                store_ns: 15,
                store_lock_wait_ns: 3,
                rules_ns: 7,
                translator_lock_ns: 2
            }
        );
        assert_eq!(take(), StageNanos::default(), "take resets");
    }

    #[test]
    fn enabled_toggles() {
        assert!(enabled(), "on by default");
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
    }
}
