//! # trips-obs — the unified observability layer
//!
//! Every serving layer in TRIPS (event loops, workers, translator shards,
//! store, WAL, rules engine) reports through this crate, so one scrape
//! shows the whole pipeline. Three pieces:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]) —
//!   lock-light instruments with label sets. Handles are `Arc`'d atomics:
//!   the hot path is relaxed `fetch_add`s, never a global lock. Histograms
//!   are log-bucketed (powers of two, microseconds) with **striped**
//!   per-thread-group accumulation merged at scrape time. The registry
//!   mutex is touched only at registration and scrape.
//! * **Exposition** ([`Registry::render_prometheus`]) — the Prometheus
//!   text format (`# HELP` / `# TYPE` / samples, histograms as
//!   `_bucket{le=…}` + `_sum` + `_count`), servable over a plain HTTP/1.0
//!   listener or embedded in a wire-protocol response.
//!   [`validate_exposition`] is the parser the tests and CI gates use.
//! * **Tracing** ([`SpanRecord`], [`TraceRing`], [`SlowLog`], [`stage`]) —
//!   cheap monotonic-clock spans over the request pipeline (accept →
//!   loop-shard readiness → queue wait → decode → translator lock → store
//!   publish → rule eval → reply write), kept in fixed-size per-shard
//!   rings, with a threshold that promotes slow span trees into a
//!   retrievable slow-log. The [`stage`] thread-locals let the store and
//!   rules engine attribute their exact same-thread nanoseconds to the
//!   request being executed without any cross-crate plumbing.
//!
//! The exact-sample [`LatencyRecorder`] / [`LatencySummary`] (previously
//! in `trips-engine`, still re-exported there) also live here, so every
//! bench and endpoint percentile in the workspace reduces through one
//! implementation.
//!
//! A single global switch ([`set_enabled`] / [`enabled`]) turns the whole
//! layer off (`trips-serve --no-obs`): disabled, instrumented code pays
//! one relaxed atomic load and skips its clock reads — the delta is
//! CI-gated under 5% of ingest throughput.

mod latency;
mod metrics;
pub mod stage;
mod trace;

pub use latency::{LatencyRecorder, LatencySummary};
pub use metrics::{
    validate_exposition, Counter, Gauge, Histogram, HistogramSnapshot, Registry, HIST_BUCKETS,
};
pub use stage::{enabled, set_enabled};
pub use trace::{SlowLog, SpanRecord, TraceRing, STAGES, STAGE_COUNT};
