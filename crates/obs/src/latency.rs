//! Exact-sample latency measurement for bench workloads.
//!
//! The bench harnesses need per-operation latencies collected across
//! worker threads and reduced to ops/sec + **exact** nearest-rank
//! percentiles (BENCH_*.json baselines are compared run-over-run, so
//! approximation error would masquerade as regression). Each worker
//! records into its own [`LatencyRecorder`]; recorders are merged after
//! the fan-out joins and summarized into a [`LatencySummary`].
//!
//! This is the *offline* sibling of [`crate::Histogram`]: the histogram
//! is constant-memory and lock-free for serving hot paths, the recorder
//! keeps every sample for exact reduction. (Moved here from
//! `trips-engine`, which still re-exports both names.)

use std::time::Duration;

/// Accumulates per-operation latencies (one recorder per worker thread).
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
}

/// Reduced view of a recorder: count, throughput, percentiles, extremes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    pub count: usize,
    /// Operations per second over the wall-clock the caller measured.
    pub ops_per_sec: f64,
    pub p50: Duration,
    pub p99: Duration,
    /// Worst single operation (the tail beyond any percentile).
    pub max: Duration,
    /// Arithmetic mean latency.
    pub mean: Duration,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one operation's latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples_ns.push(latency.as_nanos() as u64);
    }

    /// Absorbs another recorder (e.g. a joined worker's).
    pub fn merge(&mut self, other: LatencyRecorder) {
        self.samples_ns.extend(other.samples_ns);
    }

    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`); zero when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.samples_ns.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let rank =
            ((p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Duration::from_nanos(sorted[rank - 1])
    }

    /// Throughput given the wall-clock the operations ran within.
    pub fn ops_per_sec(&self, wall: Duration) -> f64 {
        if wall.is_zero() {
            return 0.0;
        }
        self.samples_ns.len() as f64 / wall.as_secs_f64()
    }

    /// Worst single latency; zero when empty.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.samples_ns.iter().copied().max().unwrap_or(0))
    }

    /// Arithmetic mean latency; zero when empty.
    pub fn mean(&self) -> Duration {
        if self.samples_ns.is_empty() {
            return Duration::ZERO;
        }
        let total: u128 = self.samples_ns.iter().map(|&n| u128::from(n)).sum();
        Duration::from_nanos((total / self.samples_ns.len() as u128) as u64)
    }

    /// Reduces to `{count, ops/sec, p50, p99, max, mean}`.
    pub fn summary(&self, wall: Duration) -> LatencySummary {
        LatencySummary {
            count: self.len(),
            ops_per_sec: self.ops_per_sec(wall),
            p50: self.percentile(0.50),
            p99: self.percentile(0.99),
            max: self.max(),
            mean: self.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_with(ms: &[u64]) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &m in ms {
            r.record(Duration::from_millis(m));
        }
        r
    }

    #[test]
    fn percentiles_nearest_rank() {
        let r = recorder_with(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(r.percentile(0.5), Duration::from_millis(50));
        assert_eq!(r.percentile(0.99), Duration::from_millis(100));
        assert_eq!(r.percentile(0.0), Duration::from_millis(10));
        assert_eq!(r.percentile(1.0), Duration::from_millis(100));
    }

    #[test]
    fn empty_recorder_is_zeroes() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.percentile(0.5), Duration::ZERO);
        assert_eq!(r.ops_per_sec(Duration::from_secs(1)), 0.0);
        let s = r.summary(Duration::ZERO);
        assert_eq!((s.count, s.ops_per_sec), (0, 0.0));
        assert_eq!((s.max, s.mean), (Duration::ZERO, Duration::ZERO));
    }

    #[test]
    fn merge_and_throughput() {
        let mut a = recorder_with(&[10, 20]);
        let b = recorder_with(&[30, 40]);
        a.merge(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.ops_per_sec(Duration::from_secs(2)), 2.0);
        let s = a.summary(Duration::from_secs(1));
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, Duration::from_millis(20));
        assert_eq!(s.p99, Duration::from_millis(40));
        assert_eq!(s.max, Duration::from_millis(40));
        assert_eq!(s.mean, Duration::from_millis(25));
    }

    #[test]
    fn unsorted_input_sorted_for_percentiles() {
        let r = recorder_with(&[90, 10, 50]);
        assert_eq!(r.percentile(0.5), Duration::from_millis(50));
    }
}
