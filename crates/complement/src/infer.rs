//! Maximum-a-posteriori path inference over the region graph.
//!
//! Given two observed semantics endpoints `a` (left of the gap) and `b`
//! (right of the gap), find the region path `a → r₁ → … → rₘ → b` that
//! maximises the product of transition probabilities under the mobility
//! knowledge — a Viterbi pass over bounded path lengths.

use crate::knowledge::MobilityKnowledge;
use trips_dsm::RegionId;

/// The most likely intermediate region path between `a` and `b` (both
/// exclusive), allowing at most `max_hops` transitions overall.
///
/// Returns `None` when no positive-probability path of length ≥ 2 exists —
/// including the case where `a → b` directly is the most likely explanation
/// (no intermediate regions to infer).
///
/// Ties on probability break toward fewer hops: the gap should be filled by
/// the *simplest* likely explanation.
pub fn map_path(
    knowledge: &MobilityKnowledge,
    a: RegionId,
    b: RegionId,
    max_hops: usize,
) -> Option<Vec<RegionId>> {
    let ia = knowledge.index_of(a)?;
    let ib = knowledge.index_of(b)?;
    let n = knowledge.regions().len();
    if max_hops < 2 {
        return None;
    }

    // viterbi[k][r] = best log-prob of reaching r from a in exactly k hops.
    // Use log to avoid underflow on long paths.
    let neg_inf = f64::NEG_INFINITY;
    let mut prev_layer = vec![neg_inf; n];
    prev_layer[ia] = 0.0;
    let mut back: Vec<Vec<Option<usize>>> = Vec::with_capacity(max_hops);
    let mut layers: Vec<Vec<f64>> = Vec::with_capacity(max_hops);

    for _k in 1..=max_hops {
        let mut layer = vec![neg_inf; n];
        let mut back_k = vec![None; n];
        for (u, &prev) in prev_layer.iter().enumerate().take(n) {
            if prev == neg_inf {
                continue;
            }
            let row = knowledge.row(u);
            for (v, &p) in row.iter().enumerate() {
                if p <= 0.0 {
                    continue;
                }
                let cand = prev + p.ln();
                if cand > layer[v] {
                    layer[v] = cand;
                    back_k[v] = Some(u);
                }
            }
        }
        layers.push(layer.clone());
        back.push(back_k);
        prev_layer = layer;
    }

    // The direct a→b probability (1 hop) is the null hypothesis: infer
    // intermediates only when some k ≥ 2 path beats it.
    let direct = layers[0][ib];

    let mut best: Option<(usize, f64)> = None; // (k, log-prob) with k >= 2
    for (k_idx, layer) in layers.iter().enumerate().skip(1) {
        let lp = layer[ib];
        if lp == neg_inf {
            continue;
        }
        if best.map_or(true, |(_, b_lp)| lp > b_lp + 1e-12) {
            best = Some((k_idx, lp));
        }
    }
    let (k_idx, lp) = best?;
    if direct != neg_inf && direct >= lp {
        return None; // walking straight through is at least as likely
    }

    // Backtrack: path has k_idx+1 hops, i.e. k_idx intermediate regions.
    let mut path_idx = vec![ib];
    let mut cur = ib;
    for k in (0..=k_idx).rev() {
        let p = back[k][cur]?;
        path_idx.push(p);
        cur = p;
    }
    path_idx.reverse();
    debug_assert_eq!(path_idx[0], ia);
    debug_assert_eq!(*path_idx.last().expect("non-empty"), ib);

    let regions = knowledge.regions();
    Some(
        path_idx[1..path_idx.len() - 1]
            .iter()
            .map(|&i| regions[i])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_annotate::MobilitySemantics;
    use trips_data::{DeviceId, Timestamp};
    use trips_dsm::builder::MallBuilder;
    use trips_dsm::DigitalSpaceModel;

    fn mall() -> DigitalSpaceModel {
        MallBuilder::new()
            .shops_per_row(3)
            .with_cashiers(false)
            .build()
    }

    fn sem(region: RegionId, start_s: i64, end_s: i64) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new("d"),
            event: "stay".into(),
            region,
            region_name: String::new(),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            inferred: false,
            display_point: None,
        }
    }

    /// In the mall, two shops are never adjacent: the only route between
    /// them runs through the hall. MAP inference must recover the hall.
    #[test]
    fn shop_to_shop_infers_hall() {
        let dsm = mall();
        let k = MobilityKnowledge::uniform(&dsm);
        let shops: Vec<RegionId> = dsm
            .regions()
            .filter(|r| r.tag.category == "shop")
            .map(|r| r.id)
            .collect();
        let hall = dsm
            .regions()
            .find(|r| r.name.starts_with("Center Hall"))
            .unwrap()
            .id;
        let path = map_path(&k, shops[0], shops[1], 4).expect("path exists");
        assert_eq!(path, vec![hall]);
    }

    #[test]
    fn adjacent_regions_need_no_inference() {
        let dsm = mall();
        let k = MobilityKnowledge::uniform(&dsm);
        let hall = dsm
            .regions()
            .find(|r| r.name.starts_with("Center Hall"))
            .unwrap()
            .id;
        let shop = dsm.regions().find(|r| r.tag.category == "shop").unwrap().id;
        // hall → shop is direct and maximally likely: nothing to infer.
        assert_eq!(map_path(&k, hall, shop, 4), None);
    }

    #[test]
    fn data_biases_the_chosen_path() {
        let dsm = mall();
        let regions: Vec<RegionId> = dsm
            .regions()
            .filter(|r| r.tag.category == "shop")
            .map(|r| r.id)
            .collect();
        let hall = dsm
            .regions()
            .find(|r| r.name.starts_with("Center Hall"))
            .unwrap()
            .id;
        let (s0, s1, s2) = (regions[0], regions[1], regions[2]);
        // Observed habit: s0 → s2 → s1 ... but s0→s2 requires the hall in
        // between (not adjacent). Construct instead: s0 → hall → s2 → hall →
        // s1 as separate observed transitions so that from s0 the hall is
        // overwhelmingly likely, and from the hall, s2 beats s1.
        let mut seqs = Vec::new();
        for i in 0..50i64 {
            seqs.push(vec![
                sem(s0, i * 1000, i * 1000 + 10),
                sem(hall, i * 1000 + 20, i * 1000 + 30),
                sem(s2, i * 1000 + 40, i * 1000 + 50),
            ]);
        }
        let k = MobilityKnowledge::build(&dsm, &seqs, 0.1);
        // Gap s0 → s1: best 2-hop path is s0 → hall → s1 (only route), so
        // hall is inferred regardless; but check 3-hop isn't preferred.
        let path = map_path(&k, s0, s1, 5).expect("path");
        assert!(path.contains(&hall), "path {path:?} must include the hall");
    }

    #[test]
    fn unknown_regions_yield_none() {
        let dsm = mall();
        let k = MobilityKnowledge::uniform(&dsm);
        let r = dsm.regions().next().unwrap().id;
        assert_eq!(map_path(&k, RegionId(999), r, 4), None);
        assert_eq!(map_path(&k, r, RegionId(999), 4), None);
    }

    #[test]
    fn hop_budget_respected() {
        let dsm = mall();
        let k = MobilityKnowledge::uniform(&dsm);
        let shops: Vec<RegionId> = dsm
            .regions()
            .filter(|r| r.tag.category == "shop")
            .map(|r| r.id)
            .collect();
        // Shop→shop needs 2 hops; max_hops 1 can't express it.
        assert_eq!(map_path(&k, shops[0], shops[1], 1), None);
        assert!(map_path(&k, shops[0], shops[1], 2).is_some());
    }

    #[test]
    fn same_region_endpoints() {
        let dsm = mall();
        let k = MobilityKnowledge::uniform(&dsm);
        let shop = dsm.regions().find(|r| r.tag.category == "shop").unwrap().id;
        // Leaving and returning: the 2-hop path shop → hall → shop exists.
        let path = map_path(&k, shop, shop, 4).expect("round trip");
        assert_eq!(path.len(), 1, "one intermediate (the hall): {path:?}");
    }
}
