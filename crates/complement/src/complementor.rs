//! The Mobility Semantics Complementor (paper §2, Translator module 3):
//! "handles the discontinuity of the original mobility semantics sequence…
//! It infers the missing mobility semantics of the sequence by referring to
//! other generated mobility semantics sequences and the spatial information
//! captured by the DSM."

use crate::infer::map_path;
use crate::knowledge::MobilityKnowledge;
use trips_annotate::MobilitySemantics;
use trips_data::{Duration, Timestamp};
use trips_dsm::DigitalSpaceModel;

/// Complementor configuration.
#[derive(Debug, Clone)]
pub struct ComplementorConfig {
    /// Gaps shorter than this are considered continuous (walking through a
    /// door takes a few seconds — nothing is missing).
    pub min_gap: Duration,
    /// Gaps longer than this are not filled: the device most likely left
    /// the building (overnight between sessions).
    pub max_gap: Duration,
    /// Maximum transitions the inferred path may take.
    pub max_hops: usize,
    /// Inferred intervals at least this long are labelled `stay`, shorter
    /// ones `pass-by` (matches the simulator's ground-truth threshold).
    pub stay_threshold: Duration,
}

impl Default for ComplementorConfig {
    fn default() -> Self {
        ComplementorConfig {
            min_gap: Duration::from_secs(60),
            max_gap: Duration::from_mins(60),
            max_hops: 4,
            stay_threshold: Duration::from_secs(90),
        }
    }
}

/// The Complementor: fills gaps in annotated semantics sequences.
pub struct Complementor<'a> {
    dsm: &'a DigitalSpaceModel,
    knowledge: MobilityKnowledge,
    config: ComplementorConfig,
}

impl<'a> Complementor<'a> {
    /// Creates a complementor around pre-built knowledge.
    pub fn new(
        dsm: &'a DigitalSpaceModel,
        knowledge: MobilityKnowledge,
        config: ComplementorConfig,
    ) -> Self {
        Complementor {
            dsm,
            knowledge,
            config,
        }
    }

    /// Builds knowledge from the given sequences and wraps it (the standard
    /// Translator flow: knowledge construction → inference).
    pub fn from_sequences(
        dsm: &'a DigitalSpaceModel,
        sequences: &[Vec<MobilitySemantics>],
        config: ComplementorConfig,
    ) -> Self {
        let knowledge = MobilityKnowledge::build(dsm, sequences, 0.5);
        Complementor {
            dsm,
            knowledge,
            config,
        }
    }

    /// The knowledge in use.
    pub fn knowledge(&self) -> &MobilityKnowledge {
        &self.knowledge
    }

    /// Complements one semantics sequence: each qualifying gap is filled
    /// with inferred semantics. Returns the complete, time-sorted sequence.
    pub fn complement(&self, sems: &[MobilitySemantics]) -> Vec<MobilitySemantics> {
        let mut out: Vec<MobilitySemantics> = Vec::with_capacity(sems.len());
        for (i, s) in sems.iter().enumerate() {
            if i > 0 {
                let prev = &sems[i - 1];
                let gap = s.start - prev.end;
                if gap >= self.config.min_gap && gap <= self.config.max_gap {
                    out.extend(self.fill_gap(prev, s));
                }
            }
            out.push(s.clone());
        }
        out
    }

    /// Number of inferred entries `complement` would add (diagnostics).
    pub fn count_gaps(&self, sems: &[MobilitySemantics]) -> usize {
        sems.windows(2)
            .filter(|w| {
                let gap = w[1].start - w[0].end;
                gap >= self.config.min_gap && gap <= self.config.max_gap
            })
            .count()
    }

    fn fill_gap(
        &self,
        prev: &MobilitySemantics,
        next: &MobilitySemantics,
    ) -> Vec<MobilitySemantics> {
        // Same region on both sides: the device most likely never left.
        if prev.region == next.region {
            return vec![self.inferred_sem(prev, prev.region, prev.end, next.start)];
        }

        let Some(path) = map_path(
            &self.knowledge,
            prev.region,
            next.region,
            self.config.max_hops,
        ) else {
            return Vec::new(); // direct transition is the best explanation
        };
        if path.is_empty() {
            return Vec::new();
        }

        // Distribute the gap time over the intermediate regions weighted by
        // their mean observed dwell.
        let gap_ms = (next.start - prev.end).as_millis();
        let weights: Vec<f64> = path
            .iter()
            .map(|&r| self.knowledge.mean_dwell(r).as_millis().max(1) as f64)
            .collect();
        let total: f64 = weights.iter().sum();

        let mut out = Vec::with_capacity(path.len());
        let mut cursor = prev.end;
        for (i, (&region, w)) in path.iter().zip(&weights).enumerate() {
            let share = if i + 1 == path.len() {
                // Last interval absorbs rounding.
                next.start - cursor
            } else {
                Duration((gap_ms as f64 * w / total) as i64)
            };
            let end = cursor + share;
            out.push(self.inferred_sem(prev, region, cursor, end));
            cursor = end;
        }
        out
    }

    fn inferred_sem(
        &self,
        template: &MobilitySemantics,
        region: trips_dsm::RegionId,
        start: Timestamp,
        end: Timestamp,
    ) -> MobilitySemantics {
        let region_name = self
            .dsm
            .region(region)
            .map(|r| r.name.clone())
            .unwrap_or_else(|_| region.to_string());
        let event = if end - start >= self.config.stay_threshold {
            "stay".to_string()
        } else {
            "pass-by".to_string()
        };
        MobilitySemantics {
            device: template.device.clone(),
            event,
            region,
            region_name,
            start,
            end,
            inferred: true,
            display_point: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::DeviceId;
    use trips_dsm::builder::MallBuilder;
    use trips_dsm::RegionId;

    fn mall() -> DigitalSpaceModel {
        MallBuilder::new()
            .shops_per_row(3)
            .with_cashiers(false)
            .build()
    }

    fn sem(region: RegionId, name: &str, start_s: i64, end_s: i64) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new("d"),
            event: "stay".into(),
            region,
            region_name: name.into(),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            inferred: false,
            display_point: None,
        }
    }

    fn shops(dsm: &DigitalSpaceModel) -> Vec<RegionId> {
        dsm.regions()
            .filter(|r| r.tag.category == "shop")
            .map(|r| r.id)
            .collect()
    }

    fn hall(dsm: &DigitalSpaceModel) -> RegionId {
        dsm.regions()
            .find(|r| r.name.starts_with("Center Hall"))
            .unwrap()
            .id
    }

    #[test]
    fn fills_shop_to_shop_gap_with_hall() {
        let dsm = mall();
        let c = Complementor::new(
            &dsm,
            MobilityKnowledge::uniform(&dsm),
            ComplementorConfig::default(),
        );
        let s = shops(&dsm);
        let input = vec![sem(s[0], "Shop0", 0, 100), sem(s[1], "Shop1", 400, 500)];
        let out = c.complement(&input);
        assert_eq!(out.len(), 3, "{out:#?}");
        assert!(out[1].inferred);
        assert_eq!(out[1].region, hall(&dsm));
        // The fill covers the gap exactly.
        assert_eq!(out[1].start, input[0].end);
        assert_eq!(out[1].end, input[1].start);
        // 300 s ≥ stay threshold → labelled stay.
        assert_eq!(out[1].event, "stay");
    }

    #[test]
    fn overnight_gap_not_filled() {
        let dsm = mall();
        let c = Complementor::new(
            &dsm,
            MobilityKnowledge::uniform(&dsm),
            ComplementorConfig::default(),
        );
        let s = shops(&dsm);
        // 20-hour gap: the shopper went home, not into the hallway.
        let input = vec![
            sem(s[0], "Shop0", 0, 100),
            sem(s[1], "Shop1", 72_000, 72_100),
        ];
        let out = c.complement(&input);
        assert_eq!(out.len(), 2, "no overnight inference: {out:#?}");
        assert_eq!(c.count_gaps(&input), 0);
    }

    #[test]
    fn short_gap_not_filled() {
        let dsm = mall();
        let c = Complementor::new(
            &dsm,
            MobilityKnowledge::uniform(&dsm),
            ComplementorConfig::default(),
        );
        let s = shops(&dsm);
        let input = vec![sem(s[0], "Shop0", 0, 100), sem(s[1], "Shop1", 130, 200)];
        assert_eq!(c.complement(&input).len(), 2, "30 s gap is continuity");
        assert_eq!(c.count_gaps(&input), 0);
    }

    #[test]
    fn adjacent_regions_direct_transition_not_filled() {
        let dsm = mall();
        let c = Complementor::new(
            &dsm,
            MobilityKnowledge::uniform(&dsm),
            ComplementorConfig::default(),
        );
        let s = shops(&dsm);
        let h = hall(&dsm);
        // Shop → hall: adjacent; a gap doesn't imply intermediates.
        let input = vec![sem(s[0], "Shop0", 0, 100), sem(h, "Hall", 400, 500)];
        let out = c.complement(&input);
        assert_eq!(out.len(), 2, "direct transition wins: {out:#?}");
    }

    #[test]
    fn same_region_gap_bridged_in_place() {
        let dsm = mall();
        let c = Complementor::new(
            &dsm,
            MobilityKnowledge::uniform(&dsm),
            ComplementorConfig::default(),
        );
        let s = shops(&dsm);
        let input = vec![sem(s[0], "Shop0", 0, 100), sem(s[0], "Shop0", 500, 600)];
        let out = c.complement(&input);
        assert_eq!(out.len(), 3);
        assert!(out[1].inferred);
        assert_eq!(out[1].region, s[0], "stayed in place");
        assert_eq!(out[1].event, "stay", "400 s fill");
    }

    #[test]
    fn short_inferred_interval_is_pass_by() {
        let dsm = mall();
        let c = Complementor::new(
            &dsm,
            MobilityKnowledge::uniform(&dsm),
            ComplementorConfig {
                min_gap: Duration::from_secs(30),
                ..ComplementorConfig::default()
            },
        );
        let s = shops(&dsm);
        let input = vec![sem(s[0], "Shop0", 0, 100), sem(s[1], "Shop1", 140, 200)];
        let out = c.complement(&input);
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].event, "pass-by", "40 s fill: {out:#?}");
    }

    #[test]
    fn output_is_time_sorted_and_non_overlapping() {
        let dsm = mall();
        let c = Complementor::new(
            &dsm,
            MobilityKnowledge::uniform(&dsm),
            ComplementorConfig::default(),
        );
        let s = shops(&dsm);
        let input = vec![
            sem(s[0], "Shop0", 0, 100),
            sem(s[1], "Shop1", 500, 600),
            sem(s[2], "Shop2", 1000, 1100),
        ];
        let out = c.complement(&input);
        assert!(out.len() >= 5);
        for w in out.windows(2) {
            assert!(w[0].start <= w[1].start, "sorted");
            assert!(w[0].end <= w[1].start, "non-overlapping");
        }
    }

    #[test]
    fn empty_and_single_input() {
        let dsm = mall();
        let c = Complementor::new(
            &dsm,
            MobilityKnowledge::uniform(&dsm),
            ComplementorConfig::default(),
        );
        assert!(c.complement(&[]).is_empty());
        let s = shops(&dsm);
        let single = vec![sem(s[0], "Shop0", 0, 100)];
        assert_eq!(c.complement(&single).len(), 1);
    }

    #[test]
    fn from_sequences_builds_usable_knowledge() {
        let dsm = mall();
        let s = shops(&dsm);
        let h = hall(&dsm);
        let history: Vec<Vec<MobilitySemantics>> = (0..5)
            .map(|i| {
                vec![
                    sem(s[0], "Shop0", i * 1000, i * 1000 + 100),
                    sem(h, "Hall", i * 1000 + 110, i * 1000 + 150),
                    sem(s[1], "Shop1", i * 1000 + 160, i * 1000 + 300),
                ]
            })
            .collect();
        let c = Complementor::from_sequences(&dsm, &history, ComplementorConfig::default());
        assert_eq!(c.knowledge().observed_transitions, 10);
        let gap_seq = vec![sem(s[0], "Shop0", 0, 100), sem(s[1], "Shop1", 400, 500)];
        let out = c.complement(&gap_seq);
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].region, h);
    }
}
