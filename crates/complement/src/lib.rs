//! The Complementing layer of the three-layer translation framework
//! (paper §3).
//!
//! Dropouts leave holes in the annotated semantics sequence: two consecutive
//! mobility semantics can be "temporally far apart" with nothing in between.
//! The Complementing layer recovers the missing semantics in two stages:
//!
//! 1. **knowledge construction** ([`knowledge`]) — aggregate the semantics
//!    already annotated (across *all* devices) into prior mobility knowledge:
//!    transition probabilities between semantic regions, plus per-region
//!    dwell statistics;
//! 2. **mobility semantics inference** ([`infer`]) — for each gap, a maximum
//!    a posteriori estimation over the region graph finds the most likely
//!    region path between the two observed endpoints, and the gap's time
//!    range is distributed over it.
//!
//! [`Complementor`] packages both stages behind the Translator-facing API.

pub mod infer;
pub mod knowledge;

mod complementor;

pub use complementor::{Complementor, ComplementorConfig};
pub use knowledge::MobilityKnowledge;
