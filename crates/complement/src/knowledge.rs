//! Prior mobility knowledge: region transition probabilities and dwell
//! statistics aggregated from annotated semantics sequences.

use std::collections::BTreeMap;
use trips_annotate::MobilitySemantics;
use trips_data::Duration;
use trips_dsm::{DigitalSpaceModel, PathQuery, RegionId};

/// First-order Markov knowledge over semantic regions.
///
/// `P(next = b | current = a)` is estimated from observed consecutive
/// semantics pairs, Laplace-smoothed over the DSM's region adjacency so that
/// every *topologically possible* transition keeps non-zero mass even when
/// unobserved.
#[derive(Debug, Clone)]
pub struct MobilityKnowledge {
    regions: Vec<RegionId>,
    index: BTreeMap<RegionId, usize>,
    /// Row-stochastic transition matrix aligned with `regions`.
    probs: Vec<Vec<f64>>,
    /// Mean dwell milliseconds per region (fallback when unobserved).
    mean_dwell_ms: Vec<f64>,
    /// Number of observed transitions that produced `probs`.
    pub observed_transitions: usize,
}

/// Default dwell assumed for regions never observed (60 s).
const DEFAULT_DWELL_MS: f64 = 60_000.0;

impl MobilityKnowledge {
    /// Builds knowledge from annotated sequences.
    ///
    /// Accepts any slice of semantics sequences — owned (`&[Vec<_>]`) or
    /// borrowed (`&[&Vec<_>]`), so callers holding the data elsewhere don't
    /// have to copy it here.
    ///
    /// `smoothing` is the Laplace pseudo-count spread over adjacent region
    /// pairs (0.5 is a good default; 0 disables smoothing).
    pub fn build<S: AsRef<[MobilitySemantics]>>(
        dsm: &DigitalSpaceModel,
        sequences: &[S],
        smoothing: f64,
    ) -> Self {
        let mut k = Self::skeleton(dsm);
        let n = k.regions.len();

        let mut counts = vec![vec![0.0f64; n]; n];
        let mut dwell_sum = vec![0.0f64; n];
        let mut dwell_n = vec![0usize; n];
        let mut observed = 0usize;

        for seq in sequences {
            let seq = seq.as_ref();
            for s in seq {
                if let Some(&i) = k.index.get(&s.region) {
                    dwell_sum[i] += s.duration().as_millis() as f64;
                    dwell_n[i] += 1;
                }
            }
            for w in seq.windows(2) {
                let (Some(&a), Some(&b)) = (k.index.get(&w[0].region), k.index.get(&w[1].region))
                else {
                    continue;
                };
                if a != b {
                    counts[a][b] += 1.0;
                    observed += 1;
                }
            }
        }

        k.observed_transitions = observed;
        k.finish(dsm, counts, smoothing);
        for i in 0..n {
            if dwell_n[i] > 0 {
                k.mean_dwell_ms[i] = dwell_sum[i] / dwell_n[i] as f64;
            }
        }
        k
    }

    /// A3 ablation: uniform prior over adjacent region pairs, no data.
    pub fn uniform(dsm: &DigitalSpaceModel) -> Self {
        let mut k = Self::skeleton(dsm);
        let n = k.regions.len();
        k.finish(dsm, vec![vec![0.0; n]; n], 1.0);
        k
    }

    /// A3 ablation: distance-decay prior — transition probability to an
    /// adjacent region decays with the walking distance between anchors.
    pub fn distance_decay(dsm: &DigitalSpaceModel) -> Self {
        let mut k = Self::skeleton(dsm);
        let n = k.regions.len();
        let pq = PathQuery::new(dsm).expect("frozen DSM");
        let mut counts = vec![vec![0.0f64; n]; n];
        let topo = dsm.topology().expect("frozen DSM");
        for (i, &a) in k.regions.iter().enumerate() {
            let ra = dsm.region(a).expect("region");
            let pa = trips_geom::IndoorPoint {
                xy: ra.anchor(),
                floor: ra.floor,
            };
            for &b in topo.neighbours(a) {
                let Some(&j) = k.index.get(&b) else { continue };
                let rb = dsm.region(b).expect("region");
                let pb = trips_geom::IndoorPoint {
                    xy: rb.anchor(),
                    floor: rb.floor,
                };
                let d = pq.distance(&pa, &pb).unwrap_or(f64::INFINITY);
                counts[i][j] = 1.0 / (1.0 + d);
            }
        }
        k.finish(dsm, counts, 0.0);
        k
    }

    fn skeleton(dsm: &DigitalSpaceModel) -> Self {
        let regions: Vec<RegionId> = dsm.regions().map(|r| r.id).collect();
        let index: BTreeMap<RegionId, usize> =
            regions.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let n = regions.len();
        MobilityKnowledge {
            regions,
            index,
            probs: vec![vec![0.0; n]; n],
            mean_dwell_ms: vec![DEFAULT_DWELL_MS; n],
            observed_transitions: 0,
        }
    }

    /// Normalises counts (+ smoothing over adjacency) into `probs`.
    fn finish(&mut self, dsm: &DigitalSpaceModel, counts: Vec<Vec<f64>>, smoothing: f64) {
        let topo = dsm.topology().expect("frozen DSM");
        let n = self.regions.len();
        for (i, count_row) in counts.iter().enumerate().take(n) {
            let mut row = count_row.clone();
            if smoothing > 0.0 {
                for &b in topo.neighbours(self.regions[i]) {
                    if let Some(&j) = self.index.get(&b) {
                        row[j] += smoothing;
                    }
                }
            }
            let total: f64 = row.iter().sum();
            if total > 0.0 {
                for v in &mut row {
                    *v /= total;
                }
            }
            self.probs[i] = row;
        }
    }

    /// All regions in matrix order.
    pub fn regions(&self) -> &[RegionId] {
        &self.regions
    }

    /// `P(next = b | current = a)`; 0 for unknown regions.
    pub fn transition_prob(&self, a: RegionId, b: RegionId) -> f64 {
        match (self.index.get(&a), self.index.get(&b)) {
            (Some(&i), Some(&j)) => self.probs[i][j],
            _ => 0.0,
        }
    }

    /// Mean observed dwell in a region (default 60 s when unobserved).
    pub fn mean_dwell(&self, r: RegionId) -> Duration {
        match self.index.get(&r) {
            Some(&i) => Duration(self.mean_dwell_ms[i] as i64),
            None => Duration(DEFAULT_DWELL_MS as i64),
        }
    }

    /// Internal index of a region.
    pub(crate) fn index_of(&self, r: RegionId) -> Option<usize> {
        self.index.get(&r).copied()
    }

    /// Row of the transition matrix (internal use by inference).
    pub(crate) fn row(&self, i: usize) -> &[f64] {
        &self.probs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, Timestamp};
    use trips_dsm::builder::MallBuilder;

    fn sem(region: RegionId, name: &str, start_s: i64, end_s: i64) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new("d"),
            event: "stay".into(),
            region,
            region_name: name.into(),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            inferred: false,
            display_point: None,
        }
    }

    fn mall() -> DigitalSpaceModel {
        MallBuilder::new()
            .shops_per_row(3)
            .with_cashiers(false)
            .build()
    }

    #[test]
    fn rows_are_stochastic() {
        let dsm = mall();
        let k = MobilityKnowledge::uniform(&dsm);
        for (i, _) in k.regions().iter().enumerate() {
            let sum: f64 = k.row(i).iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9 || sum == 0.0,
                "row {i} sums to {sum}"
            );
        }
    }

    #[test]
    fn observed_transitions_dominate() {
        let dsm = mall();
        let regions: Vec<RegionId> = dsm.regions().map(|r| r.id).collect();
        let (a, b, c) = (regions[0], regions[1], regions[2]);
        // Many a→b transitions, none a→c.
        let seqs: Vec<Vec<MobilitySemantics>> = (0..10)
            .map(|i| {
                vec![
                    sem(a, "A", i * 100, i * 100 + 10),
                    sem(b, "B", i * 100 + 20, i * 100 + 30),
                ]
            })
            .collect();
        let k = MobilityKnowledge::build(&dsm, &seqs, 0.5);
        assert_eq!(k.observed_transitions, 10);
        assert!(
            k.transition_prob(a, b) > k.transition_prob(a, c),
            "observed {} vs unobserved {}",
            k.transition_prob(a, b),
            k.transition_prob(a, c)
        );
    }

    #[test]
    fn smoothing_keeps_adjacent_transitions_alive() {
        let dsm = mall();
        let hall = dsm
            .regions()
            .find(|r| r.name.starts_with("Center Hall"))
            .unwrap()
            .id;
        let shop = dsm.regions().find(|r| r.tag.category == "shop").unwrap().id;
        // No data at all, smoothing only.
        let k = MobilityKnowledge::build::<Vec<MobilitySemantics>>(&dsm, &[], 0.5);
        assert!(
            k.transition_prob(hall, shop) > 0.0,
            "adjacent pair smoothed"
        );
    }

    #[test]
    fn no_smoothing_means_zero_without_data() {
        let dsm = mall();
        let hall = dsm
            .regions()
            .find(|r| r.name.starts_with("Center Hall"))
            .unwrap()
            .id;
        let shop = dsm.regions().find(|r| r.tag.category == "shop").unwrap().id;
        let k = MobilityKnowledge::build::<Vec<MobilitySemantics>>(&dsm, &[], 0.0);
        assert_eq!(k.transition_prob(hall, shop), 0.0);
    }

    #[test]
    fn dwell_statistics() {
        let dsm = mall();
        let r = dsm.regions().next().unwrap().id;
        let seqs = vec![vec![sem(r, "X", 0, 120)], vec![sem(r, "X", 0, 240)]];
        let k = MobilityKnowledge::build(&dsm, &seqs, 0.5);
        assert_eq!(k.mean_dwell(r), Duration::from_secs(180));
        // Unobserved region falls back to the 60 s default.
        let other = dsm.regions().nth(3).unwrap().id;
        assert_eq!(k.mean_dwell(other), Duration::from_secs(60));
        // Unknown region id likewise.
        assert_eq!(k.mean_dwell(RegionId(9999)), Duration::from_secs(60));
    }

    #[test]
    fn unknown_regions_probability_zero() {
        let dsm = mall();
        let k = MobilityKnowledge::uniform(&dsm);
        let r = dsm.regions().next().unwrap().id;
        assert_eq!(k.transition_prob(r, RegionId(9999)), 0.0);
        assert_eq!(k.transition_prob(RegionId(9999), r), 0.0);
    }

    #[test]
    fn distance_decay_prefers_near_neighbours() {
        let dsm = mall();
        let k = MobilityKnowledge::distance_decay(&dsm);
        let hall = dsm
            .regions()
            .find(|r| r.name.starts_with("Center Hall"))
            .unwrap();
        let topo = dsm.topology().unwrap();
        let neigh = topo.neighbours(hall.id);
        assert!(neigh.len() >= 2);
        // All adjacent probabilities positive; rows stochastic.
        for &b in neigh {
            assert!(k.transition_prob(hall.id, b) > 0.0);
        }
        let i = k.index_of(hall.id).unwrap();
        let sum: f64 = k.row(i).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn self_transitions_never_counted() {
        let dsm = mall();
        let r = dsm.regions().next().unwrap().id;
        let seqs = vec![vec![sem(r, "X", 0, 10), sem(r, "X", 20, 30)]];
        let k = MobilityKnowledge::build(&dsm, &seqs, 0.0);
        assert_eq!(k.observed_transitions, 0);
        assert_eq!(k.transition_prob(r, r), 0.0);
    }
}
