//! Property-based tests for the Complementing layer: knowledge matrices are
//! stochastic, complementing preserves observed semantics and never creates
//! overlaps.

use proptest::prelude::*;
use trips_annotate::MobilitySemantics;
use trips_complement::{Complementor, ComplementorConfig, MobilityKnowledge};
use trips_data::{DeviceId, Duration, Timestamp};
use trips_dsm::builder::MallBuilder;
use trips_dsm::{DigitalSpaceModel, RegionId};

fn mall() -> DigitalSpaceModel {
    MallBuilder::new().floors(2).shops_per_row(3).build()
}

/// Arbitrary non-overlapping semantics sequences over the mall's regions.
fn arb_semantics(dsm: &DigitalSpaceModel) -> impl Strategy<Value = Vec<MobilitySemantics>> {
    let regions: Vec<(RegionId, String)> = dsm.regions().map(|r| (r.id, r.name.clone())).collect();
    prop::collection::vec((0usize..regions.len(), 10i64..600, 0i64..900), 0..15).prop_map(
        move |items| {
            let mut out = Vec::new();
            let mut cursor = 0i64;
            for (ri, dur, gap) in items {
                let (region, name) = regions[ri].clone();
                let start = cursor + gap;
                let end = start + dur;
                cursor = end;
                out.push(MobilitySemantics {
                    device: DeviceId::new("p"),
                    event: if dur >= 90 { "stay" } else { "pass-by" }.to_string(),
                    region,
                    region_name: name,
                    start: Timestamp::from_millis(start * 1000),
                    end: Timestamp::from_millis(end * 1000),
                    inferred: false,
                    display_point: None,
                });
            }
            out
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn knowledge_rows_are_stochastic_or_zero(seqs in prop::collection::vec(arb_semantics(&mall()), 0..6),
                                             smoothing in 0.0f64..2.0) {
        let dsm = mall();
        let k = MobilityKnowledge::build(&dsm, &seqs, smoothing);
        for &a in k.regions() {
            let total: f64 = k.regions().iter().map(|&b| k.transition_prob(a, b)).sum();
            prop_assert!(
                (total - 1.0).abs() < 1e-9 || total.abs() < 1e-12,
                "row for {a} sums to {total}"
            );
        }
    }

    #[test]
    fn complement_preserves_observed(sems in arb_semantics(&mall())) {
        let dsm = mall();
        let c = Complementor::new(&dsm, MobilityKnowledge::uniform(&dsm), ComplementorConfig::default());
        let out = c.complement(&sems);
        let observed: Vec<&MobilitySemantics> = out.iter().filter(|s| !s.inferred).collect();
        prop_assert_eq!(observed.len(), sems.len());
        for (a, b) in observed.iter().zip(&sems) {
            prop_assert_eq!(*a, b, "observed entry mutated");
        }
    }

    #[test]
    fn complement_output_sorted_non_overlapping(sems in arb_semantics(&mall())) {
        let dsm = mall();
        let c = Complementor::new(&dsm, MobilityKnowledge::uniform(&dsm), ComplementorConfig::default());
        let out = c.complement(&sems);
        for w in out.windows(2) {
            prop_assert!(w[0].start <= w[1].start);
            prop_assert!(w[0].end <= w[1].start + Duration(1),
                "overlap: {} vs {}", w[0].end, w[1].start);
        }
        for s in &out {
            prop_assert!(s.start <= s.end);
        }
    }

    #[test]
    fn inferred_entries_fill_only_qualifying_gaps(sems in arb_semantics(&mall())) {
        let dsm = mall();
        let config = ComplementorConfig::default();
        let (min_gap, max_gap) = (config.min_gap, config.max_gap);
        let c = Complementor::new(&dsm, MobilityKnowledge::uniform(&dsm), config);
        let out = c.complement(&sems);
        // Every inferred entry lies inside some original qualifying gap.
        for inf in out.iter().filter(|s| s.inferred) {
            let inside_gap = sems.windows(2).any(|w| {
                let gap = w[1].start - w[0].end;
                gap >= min_gap
                    && gap <= max_gap
                    && inf.start >= w[0].end
                    && inf.end <= w[1].start
            });
            prop_assert!(inside_gap, "inferred entry outside any gap: {inf}");
        }
    }

    #[test]
    fn count_gaps_matches_windows(sems in arb_semantics(&mall())) {
        let dsm = mall();
        let config = ComplementorConfig::default();
        let (min_gap, max_gap) = (config.min_gap, config.max_gap);
        let c = Complementor::new(&dsm, MobilityKnowledge::uniform(&dsm), config);
        let expected = sems
            .windows(2)
            .filter(|w| {
                let gap = w[1].start - w[0].end;
                gap >= min_gap && gap <= max_gap
            })
            .count();
        prop_assert_eq!(c.count_gaps(&sems), expected);
    }
}
