//! Integration coverage for the Data Selector: `SelectionRule`/`Selector`
//! JSON round-trips (rules are exactly what a UI or config file persists)
//! and boundary-timestamp filtering semantics — `TemporalRange` is
//! inclusive at `from`, exclusive at `to`.

use trips_data::{
    DeviceId, Duration, PositioningSequence, Quantifier, RawRecord, RuleExpr, SelectionRule,
    Selector, Timestamp,
};
use trips_geom::{BoundingBox, Point};

fn seq_at(device: &str, times_ms: &[i64]) -> PositioningSequence {
    PositioningSequence::from_records(
        DeviceId::new(device),
        times_ms
            .iter()
            .map(|&t| {
                RawRecord::new(
                    DeviceId::new(device),
                    1.0,
                    1.0,
                    0,
                    Timestamp::from_millis(t),
                )
            })
            .collect(),
    )
}

fn roundtrip<T: serde::Serialize + serde::Deserialize>(value: &T) -> T {
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn every_rule_variant_roundtrips_through_json() {
    let rules = vec![
        SelectionRule::DevicePattern("3a.*.14".into()),
        SelectionRule::SpatialRange {
            bbox: BoundingBox::new(Point::new(-5.0, 0.0), Point::new(42.5, 17.25)),
            floor: Some(3),
            quantifier: Quantifier::Any,
        },
        SelectionRule::SpatialRange {
            bbox: BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            floor: None,
            quantifier: Quantifier::All,
        },
        SelectionRule::TemporalRange {
            from: Timestamp::from_millis(1_000),
            to: Timestamp::from_millis(86_400_000),
            quantifier: Quantifier::All,
        },
        SelectionRule::TimeOfDayWindow {
            from: Duration::from_hours(10),
            to: Duration::from_hours(22),
            quantifier: Quantifier::Any,
        },
        SelectionRule::MinDuration(Duration::from_mins(5)),
        SelectionRule::FrequencyPerMin {
            min: 0.5,
            max: 12.0,
        },
        SelectionRule::MinRecords(10),
        SelectionRule::FloorVisited(-1),
        SelectionRule::PeriodicPattern {
            period: Duration::from_days(1),
            min_repeats: 3,
            tolerance: Duration::from_mins(30),
        },
    ];
    for rule in &rules {
        assert_eq!(&roundtrip(rule), rule, "variant must survive JSON");
    }
}

#[test]
fn selector_expression_tree_roundtrips_and_keeps_semantics() {
    let selector = Selector::new(
        SelectionRule::DevicePattern("emp-*".into())
            .and(SelectionRule::MinRecords(2))
            .or(SelectionRule::FloorVisited(2).negate()),
    );
    let back = roundtrip(&selector);
    assert_eq!(back, selector);

    // Semantics, not just structure: both accept/reject the same sequences.
    let matching = seq_at("emp-7", &[0, 1_000]);
    let rejected = PositioningSequence::from_records(
        DeviceId::new("guest"),
        vec![RawRecord::new(
            DeviceId::new("guest"),
            0.0,
            0.0,
            2,
            Timestamp::from_millis(0),
        )],
    );
    for s in [&matching, &rejected] {
        assert_eq!(back.matches(s), selector.matches(s));
    }
    assert!(selector.matches(&matching));
    assert!(!selector.matches(&rejected));
}

#[test]
fn nested_not_roundtrips_as_boxed_expr() {
    // Not(Not(x)) collapses via negate(), so build the raw expression to
    // cover Box<RuleExpr> serialization explicitly.
    let expr = RuleExpr::Not(Box::new(RuleExpr::Not(Box::new(RuleExpr::Rule(
        SelectionRule::MinRecords(1),
    )))));
    assert_eq!(roundtrip(&expr), expr);
}

#[test]
fn temporal_range_is_inclusive_start_exclusive_end() {
    let from = Timestamp::from_millis(10_000);
    let to = Timestamp::from_millis(20_000);
    let rule = |q| SelectionRule::TemporalRange {
        from,
        to,
        quantifier: q,
    };

    // A record exactly at `from` is inside.
    assert!(rule(Quantifier::All).matches(&seq_at("d", &[10_000])));
    // A record exactly at `to` is outside.
    assert!(!rule(Quantifier::Any).matches(&seq_at("d", &[20_000])));
    // One millisecond before `to` is inside.
    assert!(rule(Quantifier::All).matches(&seq_at("d", &[19_999])));
    // One millisecond before `from` is outside.
    assert!(!rule(Quantifier::Any).matches(&seq_at("d", &[9_999])));

    // All vs Any on a straddling sequence: [from] in, [to] out.
    let straddling = seq_at("d", &[10_000, 20_000]);
    assert!(rule(Quantifier::Any).matches(&straddling));
    assert!(!rule(Quantifier::All).matches(&straddling));

    // Back-to-back ranges partition: every record lands in exactly one.
    let mid = Timestamp::from_millis(15_000);
    let first_half = SelectionRule::TemporalRange {
        from,
        to: mid,
        quantifier: Quantifier::Any,
    };
    let second_half = SelectionRule::TemporalRange {
        from: mid,
        to,
        quantifier: Quantifier::Any,
    };
    let boundary = seq_at("d", &[15_000]);
    assert!(!first_half.matches(&boundary));
    assert!(second_half.matches(&boundary));
}

#[test]
fn selector_select_preserves_order_and_filters() {
    let selector = Selector::new(SelectionRule::TemporalRange {
        from: Timestamp::from_millis(0),
        to: Timestamp::from_millis(5_000),
        quantifier: Quantifier::All,
    });
    let seqs = vec![
        seq_at("a", &[0, 4_999]),
        seq_at("b", &[0, 5_000]),
        seq_at("c", &[1_000]),
    ];
    let kept = selector.select(seqs);
    let names: Vec<&str> = kept.iter().map(|s| s.device().as_str()).collect();
    assert_eq!(
        names,
        ["a", "c"],
        "b's 5000 ms record is at the exclusive end"
    );
}

#[test]
fn time_of_day_window_is_inclusive_start_exclusive_end() {
    let day = |d: i64, ms: i64| d * 86_400_000 + ms;
    let rule = |from_h: i64, to_h: i64| SelectionRule::TimeOfDayWindow {
        from: Duration::from_hours(from_h),
        to: Duration::from_hours(to_h),
        quantifier: Quantifier::All,
    };
    // Exactly 10:00 on day 3 is inside [10h, 14h); exactly 14:00 is not.
    assert!(rule(10, 14).matches(&seq_at("d", &[day(3, 10 * 3_600_000)])));
    assert!(!rule(10, 14).matches(&seq_at("d", &[day(3, 14 * 3_600_000)])));
    // Adjacent windows partition the day: 14:00 lands only in the later one.
    assert!(rule(14, 22).matches(&seq_at("d", &[day(3, 14 * 3_600_000)])));
}
