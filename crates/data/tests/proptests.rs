//! Property-based tests for the data layer: sequence ordering invariants,
//! CSV round-trips, and boolean-algebra laws of the selector.

use proptest::prelude::*;
use trips_data::io::{CsvSource, RecordSource};
use trips_data::selector::Quantifier;
use trips_data::{
    DeviceId, Duration, PositioningSequence, RawRecord, RuleExpr, SelectionRule, Selector,
    Timestamp,
};
use trips_geom::BoundingBox;
use trips_geom::Point;

fn arb_record() -> impl Strategy<Value = RawRecord> {
    (
        0usize..4,
        -100.0f64..100.0,
        -100.0f64..100.0,
        0i16..7,
        0i64..1_000_000,
    )
        .prop_map(|(d, x, y, f, ts)| {
            RawRecord::new(
                DeviceId::new(&format!("3a.7f.{d:02}.01")),
                x,
                y,
                f,
                Timestamp::from_millis(ts),
            )
        })
}

fn arb_sequence() -> impl Strategy<Value = PositioningSequence> {
    prop::collection::vec(arb_record(), 0..60).prop_map(|records| {
        let device = DeviceId::new("3a.7f.00.01");
        let records = records
            .into_iter()
            .map(|mut r| {
                r.device = device.clone();
                r
            })
            .collect();
        PositioningSequence::from_records(device, records)
    })
}

fn arb_rule() -> impl Strategy<Value = SelectionRule> {
    prop_oneof![
        Just(SelectionRule::MinRecords(10)),
        Just(SelectionRule::MinDuration(Duration::from_secs(300))),
        Just(SelectionRule::FloorVisited(3)),
        Just(SelectionRule::DevicePattern("3a.*".into())),
        Just(SelectionRule::SpatialRange {
            bbox: BoundingBox::new(Point::new(-50.0, -50.0), Point::new(50.0, 50.0)),
            floor: None,
            quantifier: Quantifier::Any,
        }),
        Just(SelectionRule::FrequencyPerMin {
            min: 0.1,
            max: 1000.0
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sequences_always_time_sorted(seq in arb_sequence()) {
        for w in seq.records().windows(2) {
            prop_assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn push_maintains_order(seq in arb_sequence(), extra in arb_record()) {
        let mut seq = seq;
        let mut r = extra;
        r.device = seq.device().clone();
        seq.push(r);
        for w in seq.records().windows(2) {
            prop_assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn gap_splitting_partitions(seq in arb_sequence(), gap_s in 1i64..600) {
        let parts = seq.split_on_gaps(Duration::from_secs(gap_s));
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, seq.len());
        for p in &parts {
            prop_assert!(!p.is_empty());
            // Within a part, no gap exceeds the threshold.
            for w in p.records().windows(2) {
                prop_assert!(w[1].ts - w[0].ts <= Duration::from_secs(gap_s));
            }
        }
    }

    #[test]
    fn csv_roundtrip(records in prop::collection::vec(arb_record(), 0..40)) {
        let csv = trips_data::io::to_csv_string(&records);
        let mut src = CsvSource::from_string(&csv);
        let back = src.read_all().unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn selector_negation_is_complement(seq in arb_sequence(), rule in arb_rule()) {
        let pos = rule.clone().matches(&seq);
        let neg = RuleExpr::from(rule).negate().matches(&seq);
        prop_assert_eq!(pos, !neg);
    }

    #[test]
    fn selector_de_morgan(seq in arb_sequence(), p in arb_rule(), q in arb_rule()) {
        let lhs = p.clone().and(q.clone()).negate().matches(&seq);
        let rhs = p.clone().negate().or(q.clone().negate()).matches(&seq);
        prop_assert_eq!(lhs, rhs);
        let lhs = p.clone().or(q.clone()).negate().matches(&seq);
        let rhs = p.negate().and(q.negate()).matches(&seq);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn selector_and_is_intersection(seqs in prop::collection::vec(arb_sequence(), 0..8),
                                    p in arb_rule(), q in arb_rule()) {
        let both = Selector::new(p.clone().and(q.clone()));
        let sp = Selector::new(RuleExpr::from(p));
        let sq = Selector::new(RuleExpr::from(q));
        for s in &seqs {
            prop_assert_eq!(both.matches(s), sp.matches(s) && sq.matches(s));
        }
    }

    #[test]
    fn anonymization_never_reveals_middle_octets(d in 0usize..200) {
        let id = DeviceId::new(&format!("3a.{d:02x}.be.14"));
        let masked = id.anonymized();
        prop_assert!(masked.starts_with("3a."));
        prop_assert!(masked.ends_with(".14"));
        prop_assert!(!masked.contains("be"), "middle octet leaked: {masked}");
    }
}
