//! Indoor positioning data model and the Data Selector.
//!
//! This crate owns the *raw* side of TRIPS: positioning records as emitted by
//! an indoor positioning system (`object, (x, y, floor), timestamp` — Table 1
//! of the paper), per-device sequences, readers/writers for the multi-source
//! ingestion the Configurator supports (text files, tables, stream APIs), and
//! the rule-based [`selector`] that picks the sequences of interest.

pub mod io;
pub mod selector;

mod record;
mod sequence;
mod timestamp;

pub use record::{DeviceId, RawRecord};
pub use selector::{glob_match, Quantifier, RuleExpr, SelectionRule, Selector};
pub use sequence::{PositioningSequence, SequenceStats};
pub use timestamp::{Duration, Timestamp};
