//! Per-device positioning sequences.

use crate::record::{DeviceId, RawRecord};
use crate::timestamp::{Duration, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use trips_geom::{BoundingBox, FloorId};

/// A time-ordered sequence of positioning records for one device —
/// the unit the Translator processes ("takes each individual positioning
/// sequence as input", paper §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PositioningSequence {
    device: DeviceId,
    records: Vec<RawRecord>,
}

/// Summary statistics of a sequence (drive the selector's frequency rule and
/// the Viewer's tooltips).
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceStats {
    pub record_count: usize,
    pub start: Timestamp,
    pub end: Timestamp,
    pub duration: Duration,
    /// Mean records per minute.
    pub frequency_per_min: f64,
    /// Floors visited, ascending.
    pub floors: Vec<FloorId>,
    /// Planar bounding box over all records.
    pub bbox: BoundingBox,
    /// Largest inter-record time gap.
    pub max_gap: Duration,
}

impl PositioningSequence {
    /// Creates an empty sequence for `device`.
    pub fn new(device: DeviceId) -> Self {
        PositioningSequence {
            device,
            records: Vec::new(),
        }
    }

    /// Creates a sequence from records, sorting by timestamp and dropping
    /// records whose device does not match or whose coordinates are not
    /// finite.
    pub fn from_records(device: DeviceId, mut records: Vec<RawRecord>) -> Self {
        records.retain(|r| r.device == device && r.is_well_formed());
        records.sort_by_key(|r| r.ts);
        PositioningSequence { device, records }
    }

    /// The device this sequence belongs to.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }

    /// Appends a record, keeping time order (inserts out-of-order arrivals
    /// at the right position — stream sources deliver near-ordered data).
    pub fn push(&mut self, record: RawRecord) {
        debug_assert_eq!(record.device, self.device, "record for a different device");
        if !record.is_well_formed() {
            return;
        }
        match self.records.last() {
            Some(last) if last.ts > record.ts => {
                let idx = self.records.partition_point(|r| r.ts <= record.ts);
                self.records.insert(idx, record);
            }
            _ => self.records.push(record),
        }
    }

    /// The records in time order.
    pub fn records(&self) -> &[RawRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the sequence has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// First record timestamp, if any.
    pub fn start(&self) -> Option<Timestamp> {
        self.records.first().map(|r| r.ts)
    }

    /// Last record timestamp, if any.
    pub fn end(&self) -> Option<Timestamp> {
        self.records.last().map(|r| r.ts)
    }

    /// Total covered duration (zero for < 2 records).
    pub fn duration(&self) -> Duration {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e - s,
            _ => Duration::ZERO,
        }
    }

    /// Summary statistics; `None` for an empty sequence.
    pub fn stats(&self) -> Option<SequenceStats> {
        let first = self.records.first()?;
        let last = self.records.last()?;
        let duration = last.ts - first.ts;
        let mins = duration.as_secs_f64() / 60.0;
        let mut floors: Vec<FloorId> = self.records.iter().map(|r| r.location.floor).collect();
        floors.sort_unstable();
        floors.dedup();
        let bbox = BoundingBox::from_points(self.records.iter().map(|r| r.location.xy));
        let max_gap = self
            .records
            .windows(2)
            .map(|w| w[1].ts - w[0].ts)
            .max()
            .unwrap_or(Duration::ZERO);
        Some(SequenceStats {
            record_count: self.records.len(),
            start: first.ts,
            end: last.ts,
            duration,
            frequency_per_min: if mins > 0.0 {
                self.records.len() as f64 / mins
            } else {
                self.records.len() as f64
            },
            floors,
            bbox,
            max_gap,
        })
    }

    /// Splits the sequence wherever consecutive records are more than
    /// `max_gap` apart — session segmentation for multi-day devices.
    pub fn split_on_gaps(&self, max_gap: Duration) -> Vec<PositioningSequence> {
        if self.records.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut current = Vec::new();
        for r in &self.records {
            if let Some(last) = current.last() {
                let last: &RawRecord = last;
                if r.ts - last.ts > max_gap {
                    out.push(PositioningSequence {
                        device: self.device.clone(),
                        records: std::mem::take(&mut current),
                    });
                }
            }
            current.push(r.clone());
        }
        if !current.is_empty() {
            out.push(PositioningSequence {
                device: self.device.clone(),
                records: current,
            });
        }
        out
    }

    /// The sub-sequence within `[from, to]` (closed interval).
    pub fn slice_time(&self, from: Timestamp, to: Timestamp) -> PositioningSequence {
        PositioningSequence {
            device: self.device.clone(),
            records: self
                .records
                .iter()
                .filter(|r| r.ts >= from && r.ts <= to)
                .cloned()
                .collect(),
        }
    }
}

/// Groups a flat record stream into per-device sequences (time-sorted).
pub fn group_by_device(records: Vec<RawRecord>) -> Vec<PositioningSequence> {
    let mut map: BTreeMap<DeviceId, Vec<RawRecord>> = BTreeMap::new();
    for r in records {
        map.entry(r.device.clone()).or_default().push(r);
    }
    map.into_iter()
        .map(|(device, recs)| PositioningSequence::from_records(device, recs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceId {
        DeviceId::new("3a.7f.99.14")
    }

    fn rec(x: f64, y: f64, floor: FloorId, secs: i64) -> RawRecord {
        RawRecord::new(dev(), x, y, floor, Timestamp::from_millis(secs * 1000))
    }

    #[test]
    fn from_records_sorts_and_filters() {
        let mut records = vec![rec(0.0, 0.0, 0, 10), rec(1.0, 0.0, 0, 5)];
        records.push(RawRecord::new(dev(), f64::NAN, 0.0, 0, Timestamp(0)));
        records.push(RawRecord::new(
            DeviceId::new("other"),
            1.0,
            1.0,
            0,
            Timestamp(0),
        ));
        let seq = PositioningSequence::from_records(dev(), records);
        assert_eq!(seq.len(), 2);
        assert!(seq.records()[0].ts < seq.records()[1].ts);
    }

    #[test]
    fn push_keeps_order() {
        let mut seq = PositioningSequence::new(dev());
        seq.push(rec(0.0, 0.0, 0, 10));
        seq.push(rec(1.0, 0.0, 0, 30));
        seq.push(rec(2.0, 0.0, 0, 20)); // out of order
        let ts: Vec<i64> = seq.records().iter().map(|r| r.ts.as_millis()).collect();
        assert_eq!(ts, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn push_drops_malformed() {
        let mut seq = PositioningSequence::new(dev());
        seq.push(RawRecord::new(dev(), f64::INFINITY, 0.0, 0, Timestamp(0)));
        assert!(seq.is_empty());
    }

    #[test]
    fn stats_summary() {
        let seq = PositioningSequence::from_records(
            dev(),
            vec![
                rec(0.0, 0.0, 0, 0),
                rec(10.0, 5.0, 0, 60),
                rec(20.0, 10.0, 1, 120),
            ],
        );
        let s = seq.stats().unwrap();
        assert_eq!(s.record_count, 3);
        assert_eq!(s.duration, Duration::from_secs(120));
        assert_eq!(s.floors, vec![0, 1]);
        assert!((s.frequency_per_min - 1.5).abs() < 1e-12);
        assert_eq!(s.max_gap, Duration::from_secs(60));
        assert!(s.bbox.contains(trips_geom::Point::new(20.0, 10.0)));
        assert!(PositioningSequence::new(dev()).stats().is_none());
    }

    #[test]
    fn gap_splitting() {
        let seq = PositioningSequence::from_records(
            dev(),
            vec![
                rec(0.0, 0.0, 0, 0),
                rec(1.0, 0.0, 0, 10),
                rec(2.0, 0.0, 0, 1000), // 990 s gap
                rec(3.0, 0.0, 0, 1010),
            ],
        );
        let parts = seq.split_on_gaps(Duration::from_secs(60));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 2);
        // No split when gaps are small.
        assert_eq!(seq.split_on_gaps(Duration::from_secs(10_000)).len(), 1);
        // Empty sequence yields nothing.
        assert!(PositioningSequence::new(dev())
            .split_on_gaps(Duration::from_secs(1))
            .is_empty());
    }

    #[test]
    fn time_slice() {
        let seq = PositioningSequence::from_records(
            dev(),
            (0..10).map(|i| rec(i as f64, 0.0, 0, i * 10)).collect(),
        );
        let sub = seq.slice_time(
            Timestamp::from_millis(20_000),
            Timestamp::from_millis(50_000),
        );
        assert_eq!(sub.len(), 4); // t = 20, 30, 40, 50
    }

    #[test]
    fn group_by_device_partitions() {
        let a = DeviceId::new("a");
        let b = DeviceId::new("b");
        let records = vec![
            RawRecord::new(a.clone(), 0.0, 0.0, 0, Timestamp(2)),
            RawRecord::new(b.clone(), 0.0, 0.0, 0, Timestamp(0)),
            RawRecord::new(a.clone(), 1.0, 0.0, 0, Timestamp(1)),
        ];
        let seqs = group_by_device(records);
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].device(), &a);
        assert_eq!(seqs[0].len(), 2);
        assert!(seqs[0].records()[0].ts < seqs[0].records()[1].ts);
        assert_eq!(seqs[1].device(), &b);
    }
}
