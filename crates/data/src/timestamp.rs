//! Millisecond-resolution timestamps.
//!
//! Positioning systems emit wall-clock timestamps; TRIPS only ever needs
//! ordering, differences, and day/time-of-day arithmetic (operating-hours
//! selection, periodic patterns), so a thin integer newtype beats a calendar
//! dependency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A span of time in milliseconds (may be negative as a difference).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Duration(pub i64);

impl Duration {
    pub const ZERO: Duration = Duration(0);

    /// From whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        Duration(s * 1000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: i64) -> Self {
        Duration(m * 60_000)
    }

    /// From whole hours.
    pub const fn from_hours(h: i64) -> Self {
        Duration(h * 3_600_000)
    }

    /// From whole days.
    pub const fn from_days(d: i64) -> Self {
        Duration(d * 86_400_000)
    }

    /// Fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Whole milliseconds.
    pub const fn as_millis(&self) -> i64 {
        self.0
    }

    /// Absolute value.
    pub fn abs(&self) -> Duration {
        Duration(self.0.abs())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_s = self.0 / 1000;
        let (h, m, s) = (total_s / 3600, (total_s % 3600) / 60, total_s % 60);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A point in time: milliseconds since the dataset epoch (day 0, 00:00:00).
///
/// The paper's demo dataset spans 2017-01-01 .. 2017-01-07; we address it as
/// days 0..7 relative to the dataset start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Dataset epoch.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Builds a timestamp from day number and time of day.
    pub const fn from_dhms(day: i64, hour: i64, min: i64, sec: i64) -> Self {
        Timestamp(((day * 24 + hour) * 60 + min) * 60_000 + sec * 1000)
    }

    /// From raw milliseconds since epoch.
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// Milliseconds since epoch.
    pub const fn as_millis(&self) -> i64 {
        self.0
    }

    /// The day number (0-based) this instant falls in.
    pub const fn day(&self) -> i64 {
        self.0.div_euclid(86_400_000)
    }

    /// Time of day as a duration since that day's midnight.
    pub const fn time_of_day(&self) -> Duration {
        Duration(self.0.rem_euclid(86_400_000))
    }

    /// Offset of this instant within a repeating period (for the periodic
    /// pattern selector rule).
    pub const fn offset_in_period(&self, period: Duration) -> Duration {
        Duration(self.0.rem_euclid(period.0))
    }

    /// Bucket index of this instant for a repeating period.
    pub const fn period_index(&self, period: Duration) -> i64 {
        self.0.div_euclid(period.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tod = self.time_of_day();
        write!(f, "d{} {}", self.day(), tod)
    }
}

impl Sub for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Timestamp::from_dhms(2, 13, 2, 5);
        assert_eq!(t.day(), 2);
        assert_eq!(
            t.time_of_day(),
            Duration::from_hours(13) + Duration::from_mins(2) + Duration::from_secs(5)
        );
    }

    #[test]
    fn arithmetic() {
        let a = Timestamp::from_dhms(0, 10, 0, 0);
        let b = Timestamp::from_dhms(0, 10, 0, 7);
        assert_eq!(b - a, Duration::from_secs(7));
        assert_eq!(a + Duration::from_secs(7), b);
        assert_eq!(b - Duration::from_secs(7), a);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_mins(2).as_millis(), 120_000);
        assert_eq!(Duration::from_days(1), Duration::from_hours(24));
        assert!((Duration(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Duration(-500).abs(), Duration(500));
    }

    #[test]
    fn display_formats() {
        let t = Timestamp::from_dhms(3, 13, 2, 5);
        assert_eq!(t.to_string(), "d3 13:02:05");
        assert_eq!(Duration::from_secs(3661).to_string(), "01:01:01");
    }

    #[test]
    fn periodic_helpers() {
        let day = Duration::from_days(1);
        let t1 = Timestamp::from_dhms(0, 9, 30, 0);
        let t2 = Timestamp::from_dhms(4, 9, 30, 0);
        assert_eq!(t1.offset_in_period(day), t2.offset_in_period(day));
        assert_eq!(t1.period_index(day), 0);
        assert_eq!(t2.period_index(day), 4);
    }

    #[test]
    fn negative_time_is_well_defined() {
        let t = Timestamp(-1);
        assert_eq!(t.day(), -1);
        assert_eq!(t.time_of_day(), Duration(86_400_000 - 1));
    }

    #[test]
    fn ordering() {
        assert!(Timestamp::from_dhms(0, 1, 0, 0) < Timestamp::from_dhms(0, 2, 0, 0));
        assert!(Timestamp::from_dhms(1, 0, 0, 0) > Timestamp::from_dhms(0, 23, 59, 59));
    }
}
