//! The Data Selector's rule engine.
//!
//! The paper (§2): "offers users a set of configurable and combinable rules
//! to select the (device) positioning sequences of particular interest.
//! Typical rules include device ID pattern, spatial range, temporal range,
//! positioning frequency, and periodic pattern." Rules combine with
//! AND/OR/NOT into a [`RuleExpr`] evaluated per sequence.
//!
//! # Example
//!
//! Select sequences that last over an hour *and* appear on the ground floor:
//!
//! ```
//! use trips_data::{Duration, SelectionRule, Selector};
//!
//! let selector = Selector::new(
//!     SelectionRule::MinDuration(Duration::from_hours(1)).and(
//!         SelectionRule::FloorVisited(0),
//!     ),
//! );
//! # let _ = selector;
//! ```

use crate::sequence::PositioningSequence;
use crate::timestamp::{Duration, Timestamp};
use serde::{Deserialize, Serialize};
use trips_geom::{BoundingBox, FloorId};

/// Whether a range rule requires *any* record inside the range or *all* of
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantifier {
    Any,
    All,
}

/// One atomic selection rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectionRule {
    /// Device id matches a glob pattern (`*` any run, `?` one char).
    DevicePattern(String),
    /// Records fall inside a planar bounding box (optionally on a floor).
    SpatialRange {
        bbox: BoundingBox,
        floor: Option<FloorId>,
        quantifier: Quantifier,
    },
    /// Records fall inside the half-open range `[from, to)` (inclusive
    /// start, exclusive end — so back-to-back ranges partition a day with
    /// no double-counted record).
    TemporalRange {
        from: Timestamp,
        to: Timestamp,
        quantifier: Quantifier,
    },
    /// Records fall inside a half-open time-of-day window `[from, to)` on
    /// every day (operating hours, e.g. 10:00–22:00 in the walkthrough).
    /// Exclusive end, like [`SelectionRule::TemporalRange`], so adjacent
    /// windows partition the day.
    TimeOfDayWindow {
        from: Duration,
        to: Duration,
        quantifier: Quantifier,
    },
    /// The sequence spans at least this duration.
    MinDuration(Duration),
    /// Mean positioning frequency in records/minute lies in `[min, max]`.
    FrequencyPerMin { min: f64, max: f64 },
    /// The sequence has at least this many records.
    MinRecords(usize),
    /// The device appears on the given floor at least once.
    FloorVisited(FloorId),
    /// The device recurs periodically: it appears in at least `min_repeats`
    /// distinct periods, always around the same offset (within `tolerance`)
    /// — e.g. a shop employee arriving every morning.
    PeriodicPattern {
        period: Duration,
        min_repeats: usize,
        tolerance: Duration,
    },
}

impl SelectionRule {
    /// Evaluates the rule against one sequence.
    pub fn matches(&self, seq: &PositioningSequence) -> bool {
        match self {
            SelectionRule::DevicePattern(pat) => glob_match(pat, seq.device().as_str()),
            SelectionRule::SpatialRange {
                bbox,
                floor,
                quantifier,
            } => {
                let pred = |r: &crate::record::RawRecord| {
                    bbox.contains(r.location.xy) && floor.map_or(true, |f| r.location.floor == f)
                };
                quantify(seq, *quantifier, pred)
            }
            SelectionRule::TemporalRange {
                from,
                to,
                quantifier,
            } => quantify(seq, *quantifier, |r| r.ts >= *from && r.ts < *to),
            SelectionRule::TimeOfDayWindow {
                from,
                to,
                quantifier,
            } => quantify(seq, *quantifier, |r| {
                let tod = r.ts.time_of_day();
                tod >= *from && tod < *to
            }),
            SelectionRule::MinDuration(d) => seq.duration() >= *d,
            SelectionRule::FrequencyPerMin { min, max } => seq
                .stats()
                .is_some_and(|s| s.frequency_per_min >= *min && s.frequency_per_min <= *max),
            SelectionRule::MinRecords(n) => seq.len() >= *n,
            SelectionRule::FloorVisited(f) => seq.records().iter().any(|r| r.location.floor == *f),
            SelectionRule::PeriodicPattern {
                period,
                min_repeats,
                tolerance,
            } => periodic_match(seq, *period, *min_repeats, *tolerance),
        }
    }

    /// Combines with another rule/expression by AND.
    pub fn and(self, other: impl Into<RuleExpr>) -> RuleExpr {
        RuleExpr::from(self).and(other)
    }

    /// Combines with another rule/expression by OR.
    pub fn or(self, other: impl Into<RuleExpr>) -> RuleExpr {
        RuleExpr::from(self).or(other)
    }

    /// Negates the rule.
    pub fn negate(self) -> RuleExpr {
        RuleExpr::from(self).negate()
    }
}

fn quantify(
    seq: &PositioningSequence,
    q: Quantifier,
    pred: impl Fn(&crate::record::RawRecord) -> bool,
) -> bool {
    match q {
        Quantifier::Any => seq.records().iter().any(pred),
        Quantifier::All => !seq.is_empty() && seq.records().iter().all(pred),
    }
}

/// Glob matching with `*` (any run) and `?` (one char), the matcher behind
/// [`SelectionRule::DevicePattern`] — public so other layers (e.g. the
/// semantics store's query selectors and the standing-rules engine)
/// filter device ids with identical semantics. Non-recursive two-pointer
/// algorithm over string slices — allocation-free, because the rules
/// engine calls this per published semantic per rule.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    if pattern == "*" {
        return true;
    }
    let (mut p, mut t) = (pattern, text);
    // Backtrack state: pattern after the last `*`, and the text position
    // that `*` has consumed up to.
    let mut star: Option<(&str, &str)> = None;
    while let Some(tc) = t.chars().next() {
        match p.chars().next() {
            Some('*') => {
                p = &p[1..];
                star = Some((p, t));
            }
            Some(pc) if pc == '?' || pc == tc => {
                p = &p[pc.len_utf8()..];
                t = &t[tc.len_utf8()..];
            }
            _ => match star {
                Some((sp, st)) => {
                    // Let the `*` swallow one more text char and retry.
                    let sc = st.chars().next().expect("star text within t");
                    let st = &st[sc.len_utf8()..];
                    star = Some((sp, st));
                    p = sp;
                    t = st;
                }
                None => return false,
            },
        }
    }
    p.chars().all(|c| c == '*')
}

fn periodic_match(
    seq: &PositioningSequence,
    period: Duration,
    min_repeats: usize,
    tolerance: Duration,
) -> bool {
    if period.as_millis() <= 0 || seq.is_empty() {
        return false;
    }
    // Mean offset within each period bucket.
    let mut buckets: std::collections::BTreeMap<i64, (i64, i64)> =
        std::collections::BTreeMap::new();
    for r in seq.records() {
        let idx = r.ts.period_index(period);
        let off = r.ts.offset_in_period(period).as_millis();
        let e = buckets.entry(idx).or_insert((0, 0));
        e.0 += off;
        e.1 += 1;
    }
    if buckets.len() < min_repeats {
        return false;
    }
    let means: Vec<f64> = buckets
        .values()
        .map(|(sum, n)| *sum as f64 / *n as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / means.len() as f64;
    means
        .iter()
        .all(|m| (m - grand).abs() <= tolerance.as_millis() as f64)
}

/// A boolean combination of rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuleExpr {
    Rule(SelectionRule),
    And(Vec<RuleExpr>),
    Or(Vec<RuleExpr>),
    Not(Box<RuleExpr>),
}

impl From<SelectionRule> for RuleExpr {
    fn from(r: SelectionRule) -> Self {
        RuleExpr::Rule(r)
    }
}

impl RuleExpr {
    /// Evaluates the expression against one sequence.
    pub fn matches(&self, seq: &PositioningSequence) -> bool {
        match self {
            RuleExpr::Rule(r) => r.matches(seq),
            RuleExpr::And(xs) => xs.iter().all(|x| x.matches(seq)),
            RuleExpr::Or(xs) => xs.iter().any(|x| x.matches(seq)),
            RuleExpr::Not(x) => !x.matches(seq),
        }
    }

    /// AND-combines, flattening nested ANDs.
    pub fn and(self, other: impl Into<RuleExpr>) -> RuleExpr {
        match self {
            RuleExpr::And(mut xs) => {
                xs.push(other.into());
                RuleExpr::And(xs)
            }
            x => RuleExpr::And(vec![x, other.into()]),
        }
    }

    /// OR-combines, flattening nested ORs.
    pub fn or(self, other: impl Into<RuleExpr>) -> RuleExpr {
        match self {
            RuleExpr::Or(mut xs) => {
                xs.push(other.into());
                RuleExpr::Or(xs)
            }
            x => RuleExpr::Or(vec![x, other.into()]),
        }
    }

    /// Negates (double negation collapses).
    pub fn negate(self) -> RuleExpr {
        match self {
            RuleExpr::Not(inner) => *inner,
            x => RuleExpr::Not(Box::new(x)),
        }
    }
}

/// The Data Selector: applies a rule expression to a sequence collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selector {
    pub expr: RuleExpr,
}

impl Selector {
    /// Creates a selector from a rule or expression.
    pub fn new(expr: impl Into<RuleExpr>) -> Self {
        Selector { expr: expr.into() }
    }

    /// A selector matching everything (empty AND).
    pub fn all() -> Self {
        Selector {
            expr: RuleExpr::And(Vec::new()),
        }
    }

    /// Whether one sequence matches.
    pub fn matches(&self, seq: &PositioningSequence) -> bool {
        self.expr.matches(seq)
    }

    /// Filters a collection, preserving order.
    pub fn select(&self, seqs: Vec<PositioningSequence>) -> Vec<PositioningSequence> {
        seqs.into_iter().filter(|s| self.matches(s)).collect()
    }

    /// Filters by reference.
    pub fn select_refs<'a>(&self, seqs: &'a [PositioningSequence]) -> Vec<&'a PositioningSequence> {
        seqs.iter().filter(|s| self.matches(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DeviceId, RawRecord};
    use trips_geom::Point;

    fn seq(device: &str, recs: &[(f64, f64, i16, i64)]) -> PositioningSequence {
        PositioningSequence::from_records(
            DeviceId::new(device),
            recs.iter()
                .map(|&(x, y, f, s)| {
                    RawRecord::new(
                        DeviceId::new(device),
                        x,
                        y,
                        f,
                        Timestamp::from_millis(s * 1000),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn glob_patterns() {
        assert!(glob_match("3a.*", "3a.7f.99.14"));
        assert!(glob_match("*.14", "3a.7f.99.14"));
        assert!(glob_match("3a.*.14", "3a.7f.99.14"));
        assert!(glob_match("??.7f.*", "3a.7f.99.14"));
        assert!(!glob_match("3b.*", "3a.7f.99.14"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b*c", "aXXbYY"));
        // Backtracking: the first `b` the star tries is not the right one.
        assert!(glob_match("*abc", "ababc"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "abbc"));
        assert!(glob_match("**", "x"));
        assert!(glob_match("*", ""));
        // `?` is one *character*, not one byte.
        assert!(glob_match("?x", "λx"));
        assert!(glob_match("λ*", "λx"));
    }

    #[test]
    fn device_pattern_rule() {
        let s = seq("3a.7f.99.14", &[(0.0, 0.0, 0, 0)]);
        assert!(SelectionRule::DevicePattern("3a.*".into()).matches(&s));
        assert!(!SelectionRule::DevicePattern("ff.*".into()).matches(&s));
    }

    #[test]
    fn spatial_range_any_vs_all() {
        let s = seq("d", &[(1.0, 1.0, 0, 0), (100.0, 100.0, 0, 10)]);
        let bbox = BoundingBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let any = SelectionRule::SpatialRange {
            bbox,
            floor: None,
            quantifier: Quantifier::Any,
        };
        let all = SelectionRule::SpatialRange {
            bbox,
            floor: None,
            quantifier: Quantifier::All,
        };
        assert!(any.matches(&s));
        assert!(!all.matches(&s));
    }

    #[test]
    fn spatial_range_floor_filter() {
        let s = seq("d", &[(1.0, 1.0, 3, 0)]);
        let bbox = BoundingBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let on3 = SelectionRule::SpatialRange {
            bbox,
            floor: Some(3),
            quantifier: Quantifier::Any,
        };
        let on0 = SelectionRule::SpatialRange {
            bbox,
            floor: Some(0),
            quantifier: Quantifier::Any,
        };
        assert!(on3.matches(&s));
        assert!(!on0.matches(&s));
    }

    #[test]
    fn temporal_rules() {
        let s = seq(
            "d",
            &[(0.0, 0.0, 0, 0), (0.0, 0.0, 0, 3600), (0.0, 0.0, 0, 7200)],
        );
        assert!(SelectionRule::MinDuration(Duration::from_hours(2)).matches(&s));
        assert!(!SelectionRule::MinDuration(Duration::from_hours(3)).matches(&s));
        let range = SelectionRule::TemporalRange {
            from: Timestamp::from_millis(0),
            to: Timestamp::from_millis(3_600_000),
            quantifier: Quantifier::All,
        };
        assert!(!range.matches(&s), "record at 7200 s is outside");
    }

    #[test]
    fn time_of_day_window() {
        // Records at 09:00 and 11:00 on day 2.
        let s = PositioningSequence::from_records(
            DeviceId::new("d"),
            vec![
                RawRecord::new(
                    DeviceId::new("d"),
                    0.0,
                    0.0,
                    0,
                    Timestamp::from_dhms(2, 9, 0, 0),
                ),
                RawRecord::new(
                    DeviceId::new("d"),
                    0.0,
                    0.0,
                    0,
                    Timestamp::from_dhms(2, 11, 0, 0),
                ),
            ],
        );
        let operating = SelectionRule::TimeOfDayWindow {
            from: Duration::from_hours(10),
            to: Duration::from_hours(22),
            quantifier: Quantifier::All,
        };
        assert!(!operating.matches(&s), "9 AM record violates All");
        let any = SelectionRule::TimeOfDayWindow {
            from: Duration::from_hours(10),
            to: Duration::from_hours(22),
            quantifier: Quantifier::Any,
        };
        assert!(any.matches(&s));
    }

    #[test]
    fn frequency_rule() {
        // 3 records over 2 minutes → 1.5/min.
        let s = seq(
            "d",
            &[(0.0, 0.0, 0, 0), (0.0, 0.0, 0, 60), (0.0, 0.0, 0, 120)],
        );
        assert!(SelectionRule::FrequencyPerMin { min: 1.0, max: 2.0 }.matches(&s));
        assert!(!SelectionRule::FrequencyPerMin { min: 2.0, max: 9.0 }.matches(&s));
        assert!(!SelectionRule::FrequencyPerMin { min: 0.0, max: 1.0 }.matches(&s));
    }

    #[test]
    fn floor_and_count_rules() {
        let s = seq("d", &[(0.0, 0.0, 0, 0), (0.0, 0.0, 2, 10)]);
        assert!(SelectionRule::FloorVisited(2).matches(&s));
        assert!(!SelectionRule::FloorVisited(5).matches(&s));
        assert!(SelectionRule::MinRecords(2).matches(&s));
        assert!(!SelectionRule::MinRecords(3).matches(&s));
    }

    #[test]
    fn periodic_pattern_detects_daily_visitor() {
        // Same 9:30 AM appearance on 4 days.
        let daily: Vec<(f64, f64, i16, i64)> = (0..4)
            .map(|d| (0.0, 0.0, 0, d * 86_400 + 9 * 3600 + 30 * 60))
            .collect();
        let s = seq("worker", &daily);
        let rule = SelectionRule::PeriodicPattern {
            period: Duration::from_days(1),
            min_repeats: 3,
            tolerance: Duration::from_mins(30),
        };
        assert!(rule.matches(&s));

        // A one-off visitor fails min_repeats.
        let s2 = seq("visitor", &[(0.0, 0.0, 0, 9 * 3600)]);
        assert!(!rule.matches(&s2));

        // Erratic times fail the tolerance.
        let erratic: Vec<(f64, f64, i16, i64)> = vec![
            (0.0, 0.0, 0, 9 * 3600),
            (0.0, 0.0, 0, 86_400 + 15 * 3600),
            (0.0, 0.0, 0, 2 * 86_400 + 20 * 3600),
        ];
        assert!(!rule.matches(&seq("erratic", &erratic)));
    }

    #[test]
    fn combinators() {
        let s = seq("3a.1", &[(0.0, 0.0, 0, 0), (0.0, 0.0, 0, 7200)]);
        let expr = SelectionRule::DevicePattern("3a.*".into())
            .and(SelectionRule::MinDuration(Duration::from_hours(1)));
        assert!(expr.matches(&s));
        let expr2 = SelectionRule::DevicePattern("ff.*".into()).or(SelectionRule::MinRecords(1));
        assert!(expr2.matches(&s));
        let expr3 = SelectionRule::MinRecords(10).negate();
        assert!(expr3.matches(&s));
    }

    #[test]
    fn de_morgan_equivalence() {
        let seqs = vec![
            seq("a", &[(0.0, 0.0, 0, 0)]),
            seq("b", &[(0.0, 0.0, 1, 0), (0.0, 0.0, 1, 7200)]),
            seq("c", &[(5.0, 5.0, 0, 0), (5.0, 5.0, 0, 100)]),
        ];
        let p = SelectionRule::FloorVisited(0);
        let q = SelectionRule::MinRecords(2);
        // ¬(p ∧ q) == ¬p ∨ ¬q
        let lhs = p.clone().and(q.clone()).negate();
        let rhs = p.clone().negate().or(q.clone().negate());
        for s in &seqs {
            assert_eq!(lhs.matches(s), rhs.matches(s));
        }
        // ¬(p ∨ q) == ¬p ∧ ¬q
        let lhs = p.clone().or(q.clone()).negate();
        let rhs = p.negate().and(q.negate());
        for s in &seqs {
            assert_eq!(lhs.matches(s), rhs.matches(s));
        }
    }

    #[test]
    fn selector_filters_collections() {
        let seqs = vec![
            seq("3a.1", &[(0.0, 0.0, 0, 0), (0.0, 0.0, 0, 4000)]),
            seq("3a.2", &[(0.0, 0.0, 0, 0)]),
            seq("zz.9", &[(0.0, 0.0, 0, 0), (0.0, 0.0, 0, 9000)]),
        ];
        let selector = Selector::new(
            SelectionRule::DevicePattern("3a.*".into())
                .and(SelectionRule::MinDuration(Duration::from_hours(1))),
        );
        let picked = selector.select_refs(&seqs);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].device().as_str(), "3a.1");
        assert_eq!(selector.select(seqs).len(), 1);
    }

    #[test]
    fn select_all_and_empty() {
        let seqs = vec![seq("a", &[(0.0, 0.0, 0, 0)])];
        assert_eq!(Selector::all().select_refs(&seqs).len(), 1);
        // An empty sequence never matches `All` quantified or frequency rules.
        let empty = PositioningSequence::new(DeviceId::new("e"));
        assert!(!SelectionRule::SpatialRange {
            bbox: BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            floor: None,
            quantifier: Quantifier::All
        }
        .matches(&empty));
        assert!(!SelectionRule::FrequencyPerMin {
            min: 0.0,
            max: 100.0
        }
        .matches(&empty));
    }

    #[test]
    fn double_negation_collapses() {
        let e = RuleExpr::from(SelectionRule::MinRecords(1))
            .negate()
            .negate();
        assert!(matches!(e, RuleExpr::Rule(_)));
    }
}
