//! Raw positioning records and device identities.

use crate::timestamp::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use trips_geom::{FloorId, IndoorPoint};

/// Identity of a positioned object (a device MAC in Wi-Fi systems).
///
/// The paper's dataset anonymizes MACs for privacy; [`DeviceId::anonymized`]
/// reproduces the `3a.*.14`-style masking seen in Figure 5(4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(Arc<str>);

impl DeviceId {
    /// Creates a device id from its raw string form.
    pub fn new(id: &str) -> Self {
        DeviceId(Arc::from(id))
    }

    /// The raw identifier.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Privacy mask: keep the first and last dot-separated groups, replace
    /// the middle with `*` (e.g. `3a.7f.99.14` → `3a.*.14`). Ids without
    /// separators are masked to their first two and last two characters.
    pub fn anonymized(&self) -> String {
        let parts: Vec<&str> = self.0.split('.').collect();
        if parts.len() >= 3 {
            format!("{}.*.{}", parts[0], parts[parts.len() - 1])
        } else if self.0.len() > 4 {
            format!("{}*{}", &self.0[..2], &self.0[self.0.len() - 2..])
        } else {
            self.0.to_string()
        }
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One raw positioning record: *what* (device), *where* (point + floor),
/// *when* (timestamp) — the left side of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawRecord {
    pub device: DeviceId,
    pub location: IndoorPoint,
    pub ts: Timestamp,
}

impl RawRecord {
    /// Creates a record.
    pub fn new(device: DeviceId, x: f64, y: f64, floor: FloorId, ts: Timestamp) -> Self {
        RawRecord {
            device,
            location: IndoorPoint::new(x, y, floor),
            ts,
        }
    }

    /// Whether the record's coordinates are finite (corrupt-input guard).
    pub fn is_well_formed(&self) -> bool {
        self.location.xy.is_finite()
    }

    /// Implied average speed (m/s, planar) from `prev` to `self`; `None` if
    /// timestamps coincide or regress.
    pub fn planar_speed_from(&self, prev: &RawRecord) -> Option<f64> {
        let dt = (self.ts - prev.ts).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        Some(self.location.planar_distance(&prev.location) / dt)
    }
}

impl fmt::Display for RawRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {}, {}", self.device, self.location, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymization_mac_style() {
        assert_eq!(DeviceId::new("3a.7f.99.14").anonymized(), "3a.*.14");
        assert_eq!(DeviceId::new("ab.cd.ef").anonymized(), "ab.*.ef");
    }

    #[test]
    fn anonymization_plain_ids() {
        assert_eq!(DeviceId::new("device001").anonymized(), "de*01");
        assert_eq!(DeviceId::new("x1").anonymized(), "x1");
    }

    #[test]
    fn device_id_cheap_clone_equality() {
        let a = DeviceId::new("3a.7f.99.14");
        let b = a.clone();
        let c = DeviceId::new("3a.7f.99.14");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, DeviceId::new("other"));
    }

    #[test]
    fn record_display_matches_paper_shape() {
        let r = RawRecord::new(
            DeviceId::new("oi"),
            5.1,
            12.7,
            3,
            Timestamp::from_dhms(0, 13, 2, 5),
        );
        assert_eq!(r.to_string(), "oi, (5.10, 12.70, 3F), d0 13:02:05");
    }

    #[test]
    fn speed_between_records() {
        let d = DeviceId::new("d");
        let a = RawRecord::new(d.clone(), 0.0, 0.0, 0, Timestamp::from_millis(0));
        let b = RawRecord::new(d.clone(), 3.0, 4.0, 0, Timestamp::from_millis(1000));
        assert!((b.planar_speed_from(&a).unwrap() - 5.0).abs() < 1e-12);
        // Zero or negative dt → None.
        let c = RawRecord::new(d, 1.0, 1.0, 0, Timestamp::from_millis(1000));
        assert!(c.planar_speed_from(&b).is_none());
        assert!(a.planar_speed_from(&b).is_none());
    }

    #[test]
    fn well_formedness() {
        let good = RawRecord::new(DeviceId::new("d"), 1.0, 2.0, 0, Timestamp(0));
        assert!(good.is_well_formed());
        let bad = RawRecord::new(DeviceId::new("d"), f64::NAN, 2.0, 0, Timestamp(0));
        assert!(!bad.is_well_formed());
    }
}
