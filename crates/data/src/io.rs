//! Multi-source ingestion and export.
//!
//! The Data Selector "accepts the indoor positioning data from multi-sources
//! (e.g., text files, database tables, and streams APIs)" (paper §2). This
//! module provides the three source kinds behind one trait:
//!
//! * [`CsvSource`] — delimiter-separated text files;
//! * [`TableSource`] — an in-memory row table (the shape a DB driver yields);
//! * [`StreamSource`] — an iterator-backed API for live feeds.

use crate::record::{DeviceId, RawRecord};
use crate::sequence::{group_by_device, PositioningSequence};
use crate::timestamp::Timestamp;
use std::fmt;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Errors raised by ingestion.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file error.
    File(std::io::Error),
    /// A line/row could not be parsed: (line number, message).
    Parse(usize, String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::File(e) => write!(f, "file error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::File(e)
    }
}

/// Anything that yields raw positioning records.
pub trait RecordSource {
    /// Drains the source into a record vector.
    fn read_all(&mut self) -> Result<Vec<RawRecord>, IoError>;

    /// Convenience: read and group into per-device sequences.
    fn read_sequences(&mut self) -> Result<Vec<PositioningSequence>, IoError> {
        Ok(group_by_device(self.read_all()?))
    }
}

/// Parses one CSV line `device,x,y,floor,ts_millis`.
fn parse_line(line: &str, lineno: usize) -> Result<Option<RawRecord>, IoError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split(',').map(str::trim);
    let err = |msg: &str| IoError::Parse(lineno, msg.to_string());
    let device = parts.next().ok_or_else(|| err("missing device"))?;
    let x: f64 = parts
        .next()
        .ok_or_else(|| err("missing x"))?
        .parse()
        .map_err(|_| err("bad x"))?;
    let y: f64 = parts
        .next()
        .ok_or_else(|| err("missing y"))?
        .parse()
        .map_err(|_| err("bad y"))?;
    let floor: i16 = parts
        .next()
        .ok_or_else(|| err("missing floor"))?
        .parse()
        .map_err(|_| err("bad floor"))?;
    let ts: i64 = parts
        .next()
        .ok_or_else(|| err("missing ts"))?
        .parse()
        .map_err(|_| err("bad ts"))?;
    if parts.next().is_some() {
        return Err(err("too many fields"));
    }
    Ok(Some(RawRecord::new(
        DeviceId::new(device),
        x,
        y,
        floor,
        Timestamp::from_millis(ts),
    )))
}

/// Formats a record as a CSV line (inverse of [`parse_line`]).
fn format_line(r: &RawRecord) -> String {
    format!(
        "{},{},{},{},{}",
        r.device,
        r.location.xy.x,
        r.location.xy.y,
        r.location.floor,
        r.ts.as_millis()
    )
}

/// Text-file source: one `device,x,y,floor,ts_millis` record per line;
/// `#`-prefixed lines and blank lines are skipped.
pub struct CsvSource {
    content: String,
}

impl CsvSource {
    /// Reads from a file on disk.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IoError> {
        Ok(CsvSource {
            content: fs::read_to_string(path)?,
        })
    }

    /// Wraps an in-memory CSV document (tests, demos).
    pub fn from_string(content: &str) -> Self {
        CsvSource {
            content: content.to_string(),
        }
    }
}

impl RecordSource for CsvSource {
    fn read_all(&mut self) -> Result<Vec<RawRecord>, IoError> {
        let mut out = Vec::new();
        for (i, line) in self.content.lines().enumerate() {
            if let Some(r) = parse_line(line, i + 1)? {
                out.push(r);
            }
        }
        Ok(out)
    }
}

/// Database-table source: rows already materialised as tuples.
pub struct TableSource {
    rows: Vec<(String, f64, f64, i16, i64)>,
}

impl TableSource {
    /// Wraps rows of `(device, x, y, floor, ts_millis)`.
    pub fn new(rows: Vec<(String, f64, f64, i16, i64)>) -> Self {
        TableSource { rows }
    }
}

impl RecordSource for TableSource {
    fn read_all(&mut self) -> Result<Vec<RawRecord>, IoError> {
        Ok(self
            .rows
            .drain(..)
            .map(|(d, x, y, f, t)| {
                RawRecord::new(DeviceId::new(&d), x, y, f, Timestamp::from_millis(t))
            })
            .collect())
    }
}

/// Stream-API source: any record iterator (a live positioning feed adapter).
pub struct StreamSource<I: Iterator<Item = RawRecord>> {
    inner: Option<I>,
}

impl<I: Iterator<Item = RawRecord>> StreamSource<I> {
    /// Wraps an iterator.
    pub fn new(iter: I) -> Self {
        StreamSource { inner: Some(iter) }
    }
}

impl<I: Iterator<Item = RawRecord>> RecordSource for StreamSource<I> {
    fn read_all(&mut self) -> Result<Vec<RawRecord>, IoError> {
        Ok(self.inner.take().map(|i| i.collect()).unwrap_or_default())
    }
}

/// Writes records to a CSV file (the export counterpart, used to persist
/// simulated datasets and cleaned sequences).
pub fn write_csv(records: &[RawRecord], path: impl AsRef<Path>) -> Result<(), IoError> {
    let file = fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# device,x,y,floor,ts_millis")?;
    for r in records {
        writeln!(w, "{}", format_line(r))?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes records to an in-memory CSV document.
pub fn to_csv_string(records: &[RawRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 32);
    s.push_str("# device,x,y,floor,ts_millis\n");
    for r in records {
        s.push_str(&format_line(r));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# device,x,y,floor,ts_millis
3a.7f.99.14,5.1,12.7,3,100
3a.7f.99.14,6.5,11.8,3,7100

other.device,1.0,2.0,0,50
";

    #[test]
    fn csv_parses_records_and_skips_comments() {
        let mut src = CsvSource::from_string(SAMPLE);
        let records = src.read_all().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].device.as_str(), "3a.7f.99.14");
        assert_eq!(records[0].location.floor, 3);
        assert_eq!(records[2].ts, Timestamp::from_millis(50));
    }

    #[test]
    fn csv_reports_parse_errors_with_line_numbers() {
        let mut src = CsvSource::from_string("dev,notanumber,2.0,0,100\n");
        match src.read_all() {
            Err(IoError::Parse(1, msg)) => assert!(msg.contains("bad x")),
            other => panic!("expected parse error, got {other:?}"),
        }
        let mut src = CsvSource::from_string("dev,1.0,2.0,0,100,extra\n");
        assert!(matches!(src.read_all(), Err(IoError::Parse(1, _))));
        let mut src = CsvSource::from_string("dev,1.0\n");
        assert!(matches!(src.read_all(), Err(IoError::Parse(1, _))));
    }

    #[test]
    fn sequences_grouped_per_device() {
        let mut src = CsvSource::from_string(SAMPLE);
        let seqs = src.read_sequences().unwrap();
        assert_eq!(seqs.len(), 2);
        let big = seqs.iter().find(|s| s.len() == 2).unwrap();
        assert_eq!(big.device().as_str(), "3a.7f.99.14");
    }

    #[test]
    fn table_source() {
        let mut src = TableSource::new(vec![
            ("a".into(), 1.0, 2.0, 0, 10),
            ("b".into(), 3.0, 4.0, 1, 20),
        ]);
        let records = src.read_all().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].location.floor, 1);
        // Drained: second read is empty.
        assert!(src.read_all().unwrap().is_empty());
    }

    #[test]
    fn stream_source() {
        let records = vec![
            RawRecord::new(DeviceId::new("s"), 0.0, 0.0, 0, Timestamp(0)),
            RawRecord::new(DeviceId::new("s"), 1.0, 0.0, 0, Timestamp(1)),
        ];
        let mut src = StreamSource::new(records.clone().into_iter());
        assert_eq!(src.read_all().unwrap(), records);
        assert!(src.read_all().unwrap().is_empty(), "stream consumed");
    }

    #[test]
    fn csv_roundtrip() {
        let mut src = CsvSource::from_string(SAMPLE);
        let records = src.read_all().unwrap();
        let csv = to_csv_string(&records);
        let mut back = CsvSource::from_string(&csv);
        assert_eq!(back.read_all().unwrap(), records);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("trips-data-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.csv");
        let records = vec![RawRecord::new(
            DeviceId::new("f"),
            1.5,
            -2.5,
            2,
            Timestamp(42),
        )];
        write_csv(&records, &path).unwrap();
        let mut src = CsvSource::open(&path).unwrap();
        assert_eq!(src.read_all().unwrap(), records);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            CsvSource::open("/no/such/file.csv"),
            Err(IoError::File(_))
        ));
    }
}
