//! End-to-end dataset assembly: the synthetic stand-in for the paper's
//! 7-floor, 7-day Hangzhou mall dataset.

use crate::error::ErrorModel;
use crate::mobility::{simulate_session, AgentProfile, GroundTruth, TrueVisit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trips_data::{DeviceId, Duration, PositioningSequence, RawRecord, Timestamp};
use trips_dsm::builder::MallBuilder;
use trips_dsm::{DigitalSpaceModel, PathQuery};
use trips_geom::IndoorPoint;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of devices (shoppers).
    pub devices: usize,
    /// Number of days the dataset spans (paper demo: 7).
    pub days: usize,
    /// Sessions per device per day (a shopper may come back).
    pub max_sessions_per_day: usize,
    /// Mall opening hour (paper walkthrough: 10:00).
    pub open_hour: i64,
    /// Mall closing hour (22:00).
    pub close_hour: i64,
    /// Error model degrading ground truth into raw records.
    pub error_model: ErrorModel,
    /// RNG seed — everything is deterministic given the seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            devices: 20,
            days: 1,
            max_sessions_per_day: 1,
            open_hour: 10,
            close_hour: 22,
            error_model: ErrorModel::default(),
            seed: 0xF00D,
        }
    }
}

impl ScenarioConfig {
    /// The paper's demo environment: 7 days in a 7-floor mall.
    pub fn paper_demo(devices: usize) -> Self {
        ScenarioConfig {
            devices,
            days: 7,
            ..ScenarioConfig::default()
        }
    }
}

/// Everything simulated for one device.
#[derive(Debug, Clone)]
pub struct DeviceTrace {
    pub device: DeviceId,
    /// The degraded raw positioning sequence (Translator input).
    pub raw: PositioningSequence,
    /// Ground-truth trajectory samples.
    pub truth_samples: Vec<(Timestamp, IndoorPoint)>,
    /// Ground-truth mobility semantics (assessment reference).
    pub truth_visits: Vec<TrueVisit>,
}

/// A full simulated dataset: the DSM plus per-device traces.
#[derive(Debug, Clone)]
pub struct SimulatedDataset {
    pub dsm: DigitalSpaceModel,
    pub traces: Vec<DeviceTrace>,
    pub config_summary: String,
}

impl SimulatedDataset {
    /// All raw records across devices, time-sorted (flat export form).
    pub fn all_records(&self) -> Vec<RawRecord> {
        let mut out: Vec<RawRecord> = self
            .traces
            .iter()
            .flat_map(|t| t.raw.records().iter().cloned())
            .collect();
        out.sort_by_key(|r| r.ts);
        out
    }

    /// All raw sequences (cloned handles).
    pub fn sequences(&self) -> Vec<PositioningSequence> {
        self.traces.iter().map(|t| t.raw.clone()).collect()
    }

    /// Total raw record count.
    pub fn record_count(&self) -> usize {
        self.traces.iter().map(|t| t.raw.len()).sum()
    }
}

/// Generates a MAC-style device id from an index, deterministic per seed.
fn mac_device_id(rng: &mut StdRng, idx: usize) -> DeviceId {
    let a: u8 = rng.gen();
    let b: u8 = rng.gen();
    DeviceId::new(&format!(
        "{a:02x}.{b:02x}.{:02x}.{:02x}",
        (idx >> 8) as u8,
        idx as u8
    ))
}

/// Runs the scenario on an externally built DSM.
pub fn generate_on(dsm: DigitalSpaceModel, config: &ScenarioConfig) -> SimulatedDataset {
    assert!(dsm.is_frozen(), "DSM must be frozen before simulation");
    assert!(config.open_hour < config.close_hour, "open before close");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let floor_range = {
        let mut floors: Vec<i16> = dsm.floors().map(|f| f.id).collect();
        floors.sort_unstable();
        (*floors.first().unwrap_or(&0), *floors.last().unwrap_or(&0))
    };

    let mut traces = Vec::with_capacity(config.devices);
    {
        let pq = PathQuery::new(&dsm).expect("frozen DSM");
        for i in 0..config.devices {
            let device = mac_device_id(&mut rng, i);
            let profile = AgentProfile::sample(&mut rng);

            let mut truth = GroundTruth::default();
            for day in 0..config.days {
                let sessions = rng.gen_range(1..=config.max_sessions_per_day.max(1));
                for _ in 0..sessions {
                    // Session start uniform inside operating hours, leaving
                    // an hour of slack before closing.
                    let latest = (config.close_hour - 1).max(config.open_hour);
                    let hour = if latest > config.open_hour {
                        rng.gen_range(config.open_hour..latest)
                    } else {
                        config.open_hour
                    };
                    let minute = rng.gen_range(0..60);
                    let start = Timestamp::from_dhms(day as i64, hour, minute, 0);
                    // Skip if it would overlap the previous session.
                    if truth
                        .samples
                        .last()
                        .is_some_and(|(last, _)| *last + Duration::from_mins(10) > start)
                    {
                        continue;
                    }
                    let session = simulate_session(&dsm, &pq, &mut rng, &profile, start);
                    truth.samples.extend(session.samples);
                    truth.visits.extend(session.visits);
                }
            }

            let raw_records =
                config
                    .error_model
                    .degrade(&mut rng, &device, &truth.samples, floor_range);
            traces.push(DeviceTrace {
                raw: PositioningSequence::from_records(device.clone(), raw_records),
                device,
                truth_samples: truth.samples,
                truth_visits: truth.visits,
            });
        }
    }

    let config_summary = format!(
        "{} devices x {} day(s), {} floors, seed {:#x}",
        config.devices,
        config.days,
        dsm.floor_count(),
        config.seed
    );
    SimulatedDataset {
        dsm,
        traces,
        config_summary,
    }
}

/// Builds the default mall for `floors` and runs the scenario on it.
pub fn generate(floors: u16, shops_per_row: usize, config: &ScenarioConfig) -> SimulatedDataset {
    let dsm = MallBuilder::new()
        .floors(floors)
        .shops_per_row(shops_per_row)
        .build();
    generate_on(dsm, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimulatedDataset {
        generate(
            2,
            3,
            &ScenarioConfig {
                devices: 4,
                days: 1,
                seed: 99,
                ..ScenarioConfig::default()
            },
        )
    }

    #[test]
    fn dataset_has_expected_shape() {
        let ds = tiny();
        assert_eq!(ds.traces.len(), 4);
        assert!(ds.record_count() > 0);
        for t in &ds.traces {
            assert!(!t.truth_samples.is_empty());
            assert!(!t.truth_visits.is_empty());
            assert_eq!(t.raw.device(), &t.device);
        }
    }

    #[test]
    fn device_ids_are_mac_style_and_unique() {
        let ds = tiny();
        let mut ids: Vec<&str> = ds.traces.iter().map(|t| t.device.as_str()).collect();
        for id in &ids {
            assert_eq!(id.split('.').count(), 4, "{id} not MAC-style");
        }
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.record_count(), b.record_count());
        assert_eq!(a.traces[0].raw.records(), b.traces[0].raw.records());
        let c = generate(
            2,
            3,
            &ScenarioConfig {
                devices: 4,
                days: 1,
                seed: 100,
                ..ScenarioConfig::default()
            },
        );
        assert_ne!(
            a.traces[0].raw.records(),
            c.traces[0].raw.records(),
            "seed changes the data"
        );
    }

    #[test]
    fn sessions_respect_operating_hours() {
        let ds = tiny();
        for t in &ds.traces {
            for (ts, _) in &t.truth_samples {
                let hour = ts.time_of_day().as_millis() / 3_600_000;
                assert!(
                    (9..=23).contains(&hour),
                    "session sample at odd hour {hour}"
                );
            }
        }
    }

    #[test]
    fn multi_day_dataset_spans_days() {
        let ds = generate(
            1,
            2,
            &ScenarioConfig {
                devices: 3,
                days: 3,
                seed: 5,
                ..ScenarioConfig::default()
            },
        );
        let days: std::collections::BTreeSet<i64> =
            ds.all_records().iter().map(|r| r.ts.day()).collect();
        assert!(
            days.len() >= 2,
            "expected sessions on multiple days: {days:?}"
        );
    }

    #[test]
    fn all_records_time_sorted() {
        let ds = tiny();
        let recs = ds.all_records();
        for w in recs.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn raw_noise_differs_from_truth() {
        let ds = tiny();
        let t = &ds.traces[0];
        // At least one raw record deviates from every truth sample position
        // (noise applied).
        let deviates = t.raw.records().iter().any(|r| {
            t.truth_samples
                .iter()
                .all(|(_, p)| p.xy.distance(r.location.xy) > 0.01)
        });
        assert!(deviates, "error model must perturb positions");
    }

    #[test]
    fn paper_demo_config() {
        let c = ScenarioConfig::paper_demo(100);
        assert_eq!(c.devices, 100);
        assert_eq!(c.days, 7);
    }

    #[test]
    #[should_panic(expected = "must be frozen")]
    fn unfrozen_dsm_rejected() {
        let dsm = DigitalSpaceModel::new("x");
        generate_on(dsm, &ScenarioConfig::default());
    }
}
