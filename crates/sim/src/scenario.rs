//! End-to-end dataset assembly: the synthetic stand-in for the paper's
//! 7-floor, 7-day Hangzhou mall dataset.

use crate::error::ErrorModel;
use crate::mobility::{simulate_session, AgentProfile, GroundTruth, TrueVisit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trips_data::{DeviceId, Duration, PositioningSequence, RawRecord, Timestamp};
use trips_dsm::builder::MallBuilder;
use trips_dsm::{DigitalSpaceModel, PathQuery};
use trips_geom::IndoorPoint;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of devices (shoppers).
    pub devices: usize,
    /// Number of days the dataset spans (paper demo: 7).
    pub days: usize,
    /// Sessions per device per day (a shopper may come back).
    pub max_sessions_per_day: usize,
    /// Mall opening hour (paper walkthrough: 10:00).
    pub open_hour: i64,
    /// Mall closing hour (22:00).
    pub close_hour: i64,
    /// Error model degrading ground truth into raw records.
    pub error_model: ErrorModel,
    /// RNG seed — everything is deterministic given the seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            devices: 20,
            days: 1,
            max_sessions_per_day: 1,
            open_hour: 10,
            close_hour: 22,
            error_model: ErrorModel::default(),
            seed: 0xF00D,
        }
    }
}

impl ScenarioConfig {
    /// The paper's demo environment: 7 days in a 7-floor mall.
    pub fn paper_demo(devices: usize) -> Self {
        ScenarioConfig {
            devices,
            days: 7,
            ..ScenarioConfig::default()
        }
    }
}

/// Everything simulated for one device.
#[derive(Debug, Clone)]
pub struct DeviceTrace {
    pub device: DeviceId,
    /// The degraded raw positioning sequence (Translator input).
    pub raw: PositioningSequence,
    /// Ground-truth trajectory samples.
    pub truth_samples: Vec<(Timestamp, IndoorPoint)>,
    /// Ground-truth mobility semantics (assessment reference).
    pub truth_visits: Vec<TrueVisit>,
}

/// A full simulated dataset: the DSM plus per-device traces.
#[derive(Debug, Clone)]
pub struct SimulatedDataset {
    pub dsm: DigitalSpaceModel,
    pub traces: Vec<DeviceTrace>,
    pub config_summary: String,
}

impl SimulatedDataset {
    /// All raw records across devices, time-sorted (flat export form).
    pub fn all_records(&self) -> Vec<RawRecord> {
        let mut out: Vec<RawRecord> = self
            .traces
            .iter()
            .flat_map(|t| t.raw.records().iter().cloned())
            .collect();
        out.sort_by_key(|r| r.ts);
        out
    }

    /// All raw sequences (cloned handles).
    pub fn sequences(&self) -> Vec<PositioningSequence> {
        self.traces.iter().map(|t| t.raw.clone()).collect()
    }

    /// Total raw record count.
    pub fn record_count(&self) -> usize {
        self.traces.iter().map(|t| t.raw.len()).sum()
    }
}

/// Generates a MAC-style device id from an index, deterministic per seed.
fn mac_device_id(rng: &mut StdRng, idx: usize) -> DeviceId {
    let a: u8 = rng.gen();
    let b: u8 = rng.gen();
    DeviceId::new(&format!(
        "{a:02x}.{b:02x}.{:02x}.{:02x}",
        (idx >> 8) as u8,
        idx as u8
    ))
}

/// Runs the scenario on an externally built DSM.
pub fn generate_on(dsm: DigitalSpaceModel, config: &ScenarioConfig) -> SimulatedDataset {
    assert!(dsm.is_frozen(), "DSM must be frozen before simulation");
    assert!(config.open_hour < config.close_hour, "open before close");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let floor_range = {
        let mut floors: Vec<i16> = dsm.floors().map(|f| f.id).collect();
        floors.sort_unstable();
        (*floors.first().unwrap_or(&0), *floors.last().unwrap_or(&0))
    };

    let mut traces = Vec::with_capacity(config.devices);
    {
        let pq = PathQuery::new(&dsm).expect("frozen DSM");
        for i in 0..config.devices {
            let device = mac_device_id(&mut rng, i);
            let profile = AgentProfile::sample(&mut rng);

            let mut truth = GroundTruth::default();
            for day in 0..config.days {
                let sessions = rng.gen_range(1..=config.max_sessions_per_day.max(1));
                for _ in 0..sessions {
                    // Session start uniform inside operating hours, leaving
                    // an hour of slack before closing.
                    let latest = (config.close_hour - 1).max(config.open_hour);
                    let hour = if latest > config.open_hour {
                        rng.gen_range(config.open_hour..latest)
                    } else {
                        config.open_hour
                    };
                    let minute = rng.gen_range(0..60);
                    let start = Timestamp::from_dhms(day as i64, hour, minute, 0);
                    // Skip if it would overlap the previous session.
                    if truth
                        .samples
                        .last()
                        .is_some_and(|(last, _)| *last + Duration::from_mins(10) > start)
                    {
                        continue;
                    }
                    let session = simulate_session(&dsm, &pq, &mut rng, &profile, start);
                    truth.samples.extend(session.samples);
                    truth.visits.extend(session.visits);
                }
            }

            let raw_records =
                config
                    .error_model
                    .degrade(&mut rng, &device, &truth.samples, floor_range);
            traces.push(DeviceTrace {
                raw: PositioningSequence::from_records(device.clone(), raw_records),
                device,
                truth_samples: truth.samples,
                truth_visits: truth.visits,
            });
        }
    }

    let config_summary = format!(
        "{} devices x {} day(s), {} floors, seed {:#x}",
        config.devices,
        config.days,
        dsm.floor_count(),
        config.seed
    );
    SimulatedDataset {
        dsm,
        traces,
        config_summary,
    }
}

/// Builds the default mall for `floors` and runs the scenario on it.
pub fn generate(floors: u16, shops_per_row: usize, config: &ScenarioConfig) -> SimulatedDataset {
    let dsm = MallBuilder::new()
        .floors(floors)
        .shops_per_row(shops_per_row)
        .build();
    generate_on(dsm, config)
}

/// One building of a campus: a name (`b0`, `b1`, …) and its own DSM +
/// traces.
#[derive(Debug, Clone)]
pub struct CampusBuilding {
    pub name: String,
    pub dataset: SimulatedDataset,
}

/// A multi-building deployment (MazeMap-style campus): every building has
/// its own DSM and device population, with building-prefixed device ids
/// (`b<i>.<mac>`) so id-pattern selection (`b0.*`) isolates one building's
/// traffic. Used by the semantics-store bench and tests to exercise
/// cross-shard traffic.
#[derive(Debug, Clone)]
pub struct CampusDataset {
    pub buildings: Vec<CampusBuilding>,
}

impl CampusDataset {
    /// All raw sequences across buildings, building-major.
    pub fn sequences(&self) -> Vec<PositioningSequence> {
        self.buildings
            .iter()
            .flat_map(|b| b.dataset.sequences())
            .collect()
    }

    /// Total devices across buildings.
    pub fn device_count(&self) -> usize {
        self.buildings.iter().map(|b| b.dataset.traces.len()).sum()
    }

    /// Total raw records across buildings.
    pub fn record_count(&self) -> usize {
        self.buildings
            .iter()
            .map(|b| b.dataset.record_count())
            .sum()
    }

    /// All raw records across every building, time-sorted — the arrival
    /// order a campus-wide positioning feed would deliver them in. Load
    /// generators replay this stream against a serving endpoint.
    pub fn all_records(&self) -> Vec<RawRecord> {
        let mut out: Vec<RawRecord> = self
            .buildings
            .iter()
            .flat_map(|b| b.dataset.traces.iter())
            .flat_map(|t| t.raw.records().iter().cloned())
            .collect();
        out.sort_by_key(|r| r.ts);
        out
    }
}

/// Generates a campus of `buildings` identical-layout malls, each simulated
/// with a building-derived seed (so traffic differs per building) and
/// re-tagged device ids (`b<i>.` prefix, unique campus-wide).
pub fn generate_campus(
    buildings: usize,
    floors: u16,
    shops_per_row: usize,
    config: &ScenarioConfig,
) -> CampusDataset {
    assert!(buildings >= 1, "a campus needs at least one building");
    let buildings = (0..buildings)
        .map(|b| {
            let cfg = ScenarioConfig {
                seed: config
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(b as u64 + 1)),
                ..config.clone()
            };
            let mut ds = generate(floors, shops_per_row, &cfg);
            for t in &mut ds.traces {
                let id = DeviceId::new(&format!("b{b}.{}", t.device.as_str()));
                let records: Vec<RawRecord> = t
                    .raw
                    .records()
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        r.device = id.clone();
                        r
                    })
                    .collect();
                t.raw = PositioningSequence::from_records(id.clone(), records);
                t.device = id;
            }
            ds.config_summary = format!("b{b}: {}", ds.config_summary);
            CampusBuilding {
                name: format!("b{b}"),
                dataset: ds,
            }
        })
        .collect();
    CampusDataset { buildings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimulatedDataset {
        generate(
            2,
            3,
            &ScenarioConfig {
                devices: 4,
                days: 1,
                seed: 99,
                ..ScenarioConfig::default()
            },
        )
    }

    #[test]
    fn dataset_has_expected_shape() {
        let ds = tiny();
        assert_eq!(ds.traces.len(), 4);
        assert!(ds.record_count() > 0);
        for t in &ds.traces {
            assert!(!t.truth_samples.is_empty());
            assert!(!t.truth_visits.is_empty());
            assert_eq!(t.raw.device(), &t.device);
        }
    }

    #[test]
    fn device_ids_are_mac_style_and_unique() {
        let ds = tiny();
        let mut ids: Vec<&str> = ds.traces.iter().map(|t| t.device.as_str()).collect();
        for id in &ids {
            assert_eq!(id.split('.').count(), 4, "{id} not MAC-style");
        }
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.record_count(), b.record_count());
        assert_eq!(a.traces[0].raw.records(), b.traces[0].raw.records());
        let c = generate(
            2,
            3,
            &ScenarioConfig {
                devices: 4,
                days: 1,
                seed: 100,
                ..ScenarioConfig::default()
            },
        );
        assert_ne!(
            a.traces[0].raw.records(),
            c.traces[0].raw.records(),
            "seed changes the data"
        );
    }

    #[test]
    fn sessions_respect_operating_hours() {
        let ds = tiny();
        for t in &ds.traces {
            for (ts, _) in &t.truth_samples {
                let hour = ts.time_of_day().as_millis() / 3_600_000;
                assert!(
                    (9..=23).contains(&hour),
                    "session sample at odd hour {hour}"
                );
            }
        }
    }

    #[test]
    fn multi_day_dataset_spans_days() {
        let ds = generate(
            1,
            2,
            &ScenarioConfig {
                devices: 3,
                days: 3,
                seed: 5,
                ..ScenarioConfig::default()
            },
        );
        let days: std::collections::BTreeSet<i64> =
            ds.all_records().iter().map(|r| r.ts.day()).collect();
        assert!(
            days.len() >= 2,
            "expected sessions on multiple days: {days:?}"
        );
    }

    #[test]
    fn all_records_time_sorted() {
        let ds = tiny();
        let recs = ds.all_records();
        for w in recs.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn raw_noise_differs_from_truth() {
        let ds = tiny();
        let t = &ds.traces[0];
        // At least one raw record deviates from every truth sample position
        // (noise applied).
        let deviates = t.raw.records().iter().any(|r| {
            t.truth_samples
                .iter()
                .all(|(_, p)| p.xy.distance(r.location.xy) > 0.01)
        });
        assert!(deviates, "error model must perturb positions");
    }

    #[test]
    fn paper_demo_config() {
        let c = ScenarioConfig::paper_demo(100);
        assert_eq!(c.devices, 100);
        assert_eq!(c.days, 7);
    }

    #[test]
    #[should_panic(expected = "must be frozen")]
    fn unfrozen_dsm_rejected() {
        let dsm = DigitalSpaceModel::new("x");
        generate_on(dsm, &ScenarioConfig::default());
    }

    #[test]
    fn campus_shape_and_unique_prefixed_ids() {
        let campus = generate_campus(
            3,
            1,
            2,
            &ScenarioConfig {
                devices: 4,
                days: 1,
                seed: 0xCA11,
                ..ScenarioConfig::default()
            },
        );
        assert_eq!(campus.buildings.len(), 3);
        assert_eq!(campus.device_count(), 12);
        assert_eq!(campus.sequences().len(), 12);
        assert!(campus.record_count() > 0);
        let mut ids: Vec<String> = Vec::new();
        for (b, building) in campus.buildings.iter().enumerate() {
            assert_eq!(building.name, format!("b{b}"));
            for t in &building.dataset.traces {
                assert!(
                    t.device.as_str().starts_with(&format!("b{b}.")),
                    "{} missing building prefix",
                    t.device
                );
                assert_eq!(t.raw.device(), &t.device);
                for r in t.raw.records() {
                    assert_eq!(&r.device, &t.device, "records re-tagged");
                }
                ids.push(t.device.as_str().to_string());
            }
        }
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "device ids unique campus-wide");
    }

    #[test]
    fn campus_all_records_is_the_time_sorted_union() {
        let campus = generate_campus(
            2,
            1,
            2,
            &ScenarioConfig {
                devices: 3,
                days: 1,
                seed: 0xFEED,
                ..ScenarioConfig::default()
            },
        );
        let records = campus.all_records();
        assert_eq!(records.len(), campus.record_count());
        assert!(
            records.windows(2).all(|w| w[0].ts <= w[1].ts),
            "time-sorted"
        );
        assert!(
            records.iter().any(|r| r.device.as_str().starts_with("b0."))
                && records.iter().any(|r| r.device.as_str().starts_with("b1.")),
            "both buildings interleaved in the feed"
        );
    }

    #[test]
    fn campus_buildings_have_distinct_traffic_and_pattern_selection_works() {
        let campus = generate_campus(
            2,
            1,
            2,
            &ScenarioConfig {
                devices: 3,
                days: 1,
                seed: 7,
                ..ScenarioConfig::default()
            },
        );
        let a = &campus.buildings[0].dataset;
        let b = &campus.buildings[1].dataset;
        assert_ne!(
            a.traces[0].raw.records(),
            b.traces[0].raw.records(),
            "per-building seeds differ"
        );
        // The paper's Data Selector isolates one building by id pattern.
        let selector =
            trips_data::Selector::new(trips_data::SelectionRule::DevicePattern("b1.*".into()));
        let picked = selector.select(campus.sequences());
        assert_eq!(picked.len(), 3);
        assert!(picked
            .iter()
            .all(|s| s.device().as_str().starts_with("b1.")));
    }
}
