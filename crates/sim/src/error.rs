//! The Wi-Fi positioning error model.
//!
//! Raw indoor positioning data "is uncertain and discrete in nature due to
//! the limitations of indoor positioning" (paper §1). This module degrades a
//! ground-truth trajectory into exactly the error phenomenology the Cleaning
//! layer targets:
//!
//! * **planar noise** — Gaussian jitter on (x, y), metres-scale;
//! * **outlier bursts** — occasional large jumps (multipath / AP mismatch)
//!   that violate the indoor speed constraint;
//! * **floor misreads** — the floor attribute flips to an adjacent floor
//!   (barometric/AP ambiguity), the target of floor value correction;
//! * **irregular sampling** — records arrive every `sample_interval` ±
//!   jitter, not on a neat grid;
//! * **drops** — stretches with no records at all (device sleep, AP
//!   hand-off), the gaps the Complementing layer fills.

use crate::rng;
use rand::Rng;
use trips_data::{DeviceId, Duration, RawRecord, Timestamp};
use trips_geom::IndoorPoint;

/// Error-model parameters.
#[derive(Debug, Clone)]
pub struct ErrorModel {
    /// Std-dev of planar Gaussian noise, metres.
    pub xy_sigma: f64,
    /// Probability that a record is an outlier with `outlier_sigma` noise.
    pub outlier_rate: f64,
    /// Std-dev of outlier noise, metres.
    pub outlier_sigma: f64,
    /// Probability that a record's floor flips to an adjacent floor.
    pub floor_error_rate: f64,
    /// Mean time between emitted records.
    pub sample_interval: Duration,
    /// Uniform jitter applied to each sampling step (fraction of interval,
    /// 0..1).
    pub interval_jitter: f64,
    /// Probability that an emission is dropped entirely.
    pub drop_rate: f64,
    /// Emissions stop when the ground truth is older than this (the device
    /// left the building between sessions).
    pub max_staleness: Duration,
    /// Probability per emission of entering a dropout burst…
    pub burst_drop_rate: f64,
    /// …whose length is uniform in `1..=burst_len` emissions.
    pub burst_len: usize,
}

impl Default for ErrorModel {
    fn default() -> Self {
        ErrorModel {
            xy_sigma: 1.2,
            outlier_rate: 0.02,
            outlier_sigma: 12.0,
            floor_error_rate: 0.03,
            sample_interval: Duration::from_secs(7),
            interval_jitter: 0.4,
            drop_rate: 0.05,
            max_staleness: Duration::from_secs(30),
            burst_drop_rate: 0.01,
            burst_len: 30,
        }
    }
}

impl ErrorModel {
    /// A noise-free model (pass-through sampling) — baseline for ablations.
    pub fn clean() -> Self {
        ErrorModel {
            xy_sigma: 0.0,
            outlier_rate: 0.0,
            outlier_sigma: 0.0,
            floor_error_rate: 0.0,
            interval_jitter: 0.0,
            drop_rate: 0.0,
            burst_drop_rate: 0.0,
            burst_len: 0,
            ..ErrorModel::default()
        }
    }

    /// Scales all error rates by `f` (error-sweep experiments, Figure 3a).
    pub fn scaled(&self, f: f64) -> Self {
        ErrorModel {
            xy_sigma: self.xy_sigma * f,
            outlier_rate: (self.outlier_rate * f).min(0.9),
            floor_error_rate: (self.floor_error_rate * f).min(0.9),
            drop_rate: (self.drop_rate * f).min(0.9),
            burst_drop_rate: (self.burst_drop_rate * f).min(0.9),
            ..self.clone()
        }
    }

    /// Degrades a ground-truth trajectory into raw positioning records.
    ///
    /// `floor_range` bounds floor misreads (`(min, max)` valid floors).
    pub fn degrade<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        device: &DeviceId,
        truth: &[(Timestamp, IndoorPoint)],
        floor_range: (i16, i16),
    ) -> Vec<RawRecord> {
        let mut out = Vec::new();
        if truth.is_empty() {
            return out;
        }
        let start = truth[0].0;
        let end = truth[truth.len() - 1].0;
        let mut t = start;
        let mut burst_remaining = 0usize;

        while t <= end {
            // Advance by a jittered interval.
            let base = self.sample_interval.as_millis() as f64;
            let jitter = 1.0 + self.interval_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            let step = Duration((base * jitter.max(0.1)) as i64);

            let emit_ts = t;
            t = t + step;

            // Burst dropout state machine.
            if burst_remaining > 0 {
                burst_remaining -= 1;
                continue;
            }
            if self.burst_len > 0 && rng.gen::<f64>() < self.burst_drop_rate {
                burst_remaining = rng.gen_range(1..=self.burst_len);
                continue;
            }
            if rng.gen::<f64>() < self.drop_rate {
                continue;
            }

            // Ground-truth position at emit_ts (nearest sample ≤ ts).
            let idx = truth.partition_point(|(ts, _)| *ts <= emit_ts);
            let (truth_ts, pos) = truth[idx.saturating_sub(1)];
            // Between sessions the device is outside the building: no truth
            // within the staleness window means no emission.
            if emit_ts - truth_ts > self.max_staleness {
                continue;
            }

            // Planar noise (regular or outlier).
            let sigma = if rng.gen::<f64>() < self.outlier_rate {
                self.outlier_sigma
            } else {
                self.xy_sigma
            };
            let x = pos.xy.x + rng::normal(rng, 0.0, sigma);
            let y = pos.xy.y + rng::normal(rng, 0.0, sigma);

            // Floor misread.
            let floor = if rng.gen::<f64>() < self.floor_error_rate {
                let delta = if rng.gen::<bool>() { 1 } else { -1 };
                (pos.floor + delta).clamp(floor_range.0, floor_range.1)
            } else {
                pos.floor
            };

            out.push(RawRecord::new(device.clone(), x, y, floor, emit_ts));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trips_geom::Point;

    fn truth(n: usize) -> Vec<(Timestamp, IndoorPoint)> {
        (0..n)
            .map(|i| {
                (
                    Timestamp::from_millis(i as i64 * 2000),
                    IndoorPoint::new(i as f64 * 0.5, 10.0, 2),
                )
            })
            .collect()
    }

    #[test]
    fn clean_model_reproduces_truth_positions() {
        let em = ErrorModel::clean();
        let mut rng = StdRng::seed_from_u64(1);
        let recs = em.degrade(&mut rng, &DeviceId::new("d"), &truth(100), (0, 6));
        assert!(!recs.is_empty());
        for r in &recs {
            assert_eq!(r.location.floor, 2, "no floor errors in clean model");
            assert!((r.location.xy.y - 10.0).abs() < 1e-9, "no planar noise");
        }
        // Sampling decimates the 2 s truth grid to ~7 s.
        assert!(recs.len() < 100);
        assert!(recs.len() > 10);
    }

    #[test]
    fn default_model_injects_floor_errors_and_noise() {
        let em = ErrorModel {
            floor_error_rate: 0.5,
            ..ErrorModel::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let recs = em.degrade(&mut rng, &DeviceId::new("d"), &truth(2000), (0, 6));
        let wrong_floor = recs.iter().filter(|r| r.location.floor != 2).count();
        assert!(
            wrong_floor > recs.len() / 4,
            "expected many floor misreads: {wrong_floor}/{}",
            recs.len()
        );
        let noisy = recs
            .iter()
            .filter(|r| (r.location.xy.y - 10.0).abs() > 0.01)
            .count();
        assert!(noisy > recs.len() * 9 / 10, "noise on nearly every record");
    }

    #[test]
    fn floor_errors_stay_in_range() {
        let em = ErrorModel {
            floor_error_rate: 1.0,
            ..ErrorModel::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        // Truth on floor 0: misreads can only go up (clamped at 0).
        let t: Vec<_> = truth(500)
            .into_iter()
            .map(|(ts, p)| (ts, p.with_floor(0)))
            .collect();
        let recs = em.degrade(&mut rng, &DeviceId::new("d"), &t, (0, 6));
        for r in &recs {
            assert!((0..=6).contains(&r.location.floor));
        }
    }

    #[test]
    fn drop_rates_reduce_record_count() {
        let base = ErrorModel {
            drop_rate: 0.0,
            burst_drop_rate: 0.0,
            ..ErrorModel::default()
        };
        let lossy = ErrorModel {
            drop_rate: 0.5,
            burst_drop_rate: 0.0,
            ..ErrorModel::default()
        };
        let t = truth(3000);
        let n_base = base
            .degrade(
                &mut StdRng::seed_from_u64(4),
                &DeviceId::new("d"),
                &t,
                (0, 6),
            )
            .len();
        let n_lossy = lossy
            .degrade(
                &mut StdRng::seed_from_u64(4),
                &DeviceId::new("d"),
                &t,
                (0, 6),
            )
            .len();
        assert!(
            (n_lossy as f64) < n_base as f64 * 0.7,
            "dropping halves the stream: {n_lossy} vs {n_base}"
        );
    }

    #[test]
    fn burst_drops_create_long_gaps() {
        let em = ErrorModel {
            drop_rate: 0.0,
            burst_drop_rate: 0.05,
            burst_len: 40,
            interval_jitter: 0.0,
            ..ErrorModel::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let recs = em.degrade(&mut rng, &DeviceId::new("d"), &truth(5000), (0, 6));
        let max_gap = recs
            .windows(2)
            .map(|w| (w[1].ts - w[0].ts).as_millis())
            .max()
            .unwrap();
        assert!(
            max_gap > 60_000,
            "expected a > 1 min dropout burst, max gap {max_gap} ms"
        );
    }

    #[test]
    fn timestamps_strictly_increase() {
        let em = ErrorModel::default();
        let mut rng = StdRng::seed_from_u64(6);
        let recs = em.degrade(&mut rng, &DeviceId::new("d"), &truth(1000), (0, 6));
        for w in recs.windows(2) {
            assert!(w[0].ts < w[1].ts);
        }
    }

    #[test]
    fn empty_truth_empty_output() {
        let em = ErrorModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(em
            .degrade(&mut rng, &DeviceId::new("d"), &[], (0, 6))
            .is_empty());
    }

    #[test]
    fn scaled_model_scales_rates() {
        let em = ErrorModel::default().scaled(2.0);
        assert!((em.xy_sigma - 2.4).abs() < 1e-9);
        assert!((em.floor_error_rate - 0.06).abs() < 1e-9);
        // Saturation at 0.9.
        let em9 = ErrorModel::default().scaled(1000.0);
        assert!(em9.outlier_rate <= 0.9);
    }

    #[test]
    fn outliers_present_at_high_rate() {
        let em = ErrorModel {
            outlier_rate: 0.3,
            outlier_sigma: 50.0,
            xy_sigma: 0.1,
            ..ErrorModel::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let recs = em.degrade(&mut rng, &DeviceId::new("d"), &truth(2000), (0, 6));
        let far = recs
            .iter()
            .filter(|r| {
                r.location
                    .xy
                    .distance(Point::new(r.location.xy.x.clamp(0.0, 1000.0), 10.0))
                    > 10.0
            })
            .count();
        assert!(far > 0, "expected some large outliers");
    }
}
