//! Shopper agents: ground-truth trajectories plus ground-truth mobility
//! semantics over a mall DSM.
//!
//! An agent performs an *itinerary*: it enters the mall, visits a sequence of
//! semantic regions (staying in some, merely passing through others), and
//! leaves. Movement between regions follows the minimum-walking-distance path
//! through doors and staircases at a per-agent walking speed; inside a region
//! the agent wanders around. The continuous trajectory is sampled on a fixed
//! grid to yield ground-truth samples; region occupancy intervals yield the
//! ground-truth semantics (`stay` / `pass-by` visits) against which the
//! Translator's output is assessed.

use crate::rng;
use rand::Rng;
use trips_data::{Duration, Timestamp};
use trips_dsm::{DigitalSpaceModel, PathQuery, RegionId};
use trips_geom::{IndoorPoint, Point};

/// Ground-truth event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisitKind {
    /// Dwelling in a region (long enough for the paper's "real purchase"
    /// question).
    Stay,
    /// Crossing a region without dwelling.
    PassBy,
}

impl VisitKind {
    /// Stable lowercase name (matches the event labels of Table 1).
    pub fn name(self) -> &'static str {
        match self {
            VisitKind::Stay => "stay",
            VisitKind::PassBy => "pass-by",
        }
    }
}

/// One ground-truth visit: the agent was inside `region` over `[start, end]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrueVisit {
    pub region: RegionId,
    pub region_name: String,
    pub kind: VisitKind,
    pub start: Timestamp,
    pub end: Timestamp,
}

impl TrueVisit {
    /// Visit duration.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// Behavioural parameters of one simulated shopper.
#[derive(Debug, Clone)]
pub struct AgentProfile {
    /// Walking speed, m/s.
    pub walk_speed: f64,
    /// Number of region visits in one session.
    pub visits: usize,
    /// Fraction of visits that are intentional stays (vs brief pass-ins).
    pub stay_probability: f64,
    /// Stay dwell time: log-normal μ of seconds.
    pub dwell_mu: f64,
    /// Stay dwell time: log-normal σ.
    pub dwell_sigma: f64,
    /// Ground-truth sampling interval.
    pub truth_interval: Duration,
}

impl AgentProfile {
    /// Draws a random shopper profile.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        AgentProfile {
            walk_speed: rng.gen_range(0.9..1.6),
            visits: rng.gen_range(2..=6),
            stay_probability: 0.7,
            // exp(5.0) ≈ 148 s median dwell; heavy tail to ~20 min.
            dwell_mu: 5.0,
            dwell_sigma: 0.8,
            truth_interval: Duration::from_secs(2),
        }
    }
}

/// The continuous ground truth of one mall session.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Trajectory samples on the truth grid.
    pub samples: Vec<(Timestamp, IndoorPoint)>,
    /// Region occupancy events derived from the trajectory.
    pub visits: Vec<TrueVisit>,
}

/// Minimum dwell for an occupancy interval to count as a `stay` in ground
/// truth (everything shorter is a `pass-by`). 90 s follows the shopping-mall
/// intuition of the paper's example (stays are minutes, pass-bys seconds).
pub const STAY_THRESHOLD: Duration = Duration::from_secs(90);

/// Simulates one session of `profile` starting at `start`, returning the
/// ground truth. Returns an empty ground truth if the DSM has no shop
/// regions (nothing to visit).
pub fn simulate_session<R: Rng + ?Sized>(
    dsm: &DigitalSpaceModel,
    pq: &PathQuery<'_>,
    rng: &mut R,
    profile: &AgentProfile,
    start: Timestamp,
) -> GroundTruth {
    // Candidate destinations: shop/service regions, weighted by a Zipf-like
    // popularity so some shops are much hotter than others (drives the
    // Complementor's transition knowledge).
    let candidates: Vec<(RegionId, Point, i16)> = dsm
        .regions()
        .filter(|r| r.tag.category != "circulation")
        .map(|r| (r.id, r.anchor(), r.floor))
        .collect();
    if candidates.is_empty() {
        return GroundTruth::default();
    }
    let weights: Vec<f64> = (0..candidates.len())
        .map(|i| 1.0 / (1.0 + i as f64).sqrt())
        .collect();

    // Entrance: a point in a ground-floor circulation region (the mall door),
    // or the anchor of the first region as a fallback.
    let entrance = dsm
        .regions()
        .find(|r| r.floor == 0 && r.tag.category == "circulation")
        .map(|r| IndoorPoint {
            xy: r.anchor(),
            floor: 0,
        })
        .unwrap_or(IndoorPoint {
            xy: candidates[0].1,
            floor: candidates[0].2,
        });

    // Build the continuous trajectory: walk → dwell → walk → … → exit.
    let mut cursor = entrance;
    let mut now = start;
    let mut samples: Vec<(Timestamp, IndoorPoint)> = vec![(now, cursor)];
    let step = profile.truth_interval;

    for _ in 0..profile.visits {
        let pick = rng::weighted_index(rng, &weights);
        let (_, anchor, floor) = candidates[pick];
        let dest = IndoorPoint { xy: anchor, floor };

        // Walk leg.
        if let Some(path) = pq.path(&cursor, &dest) {
            let travel_secs = (path.distance / profile.walk_speed).max(1.0);
            let steps = (travel_secs / step.as_secs_f64()).ceil() as usize;
            for k in 1..=steps {
                let frac = k as f64 / steps as f64;
                now = now + step;
                samples.push((now, path.point_at_fraction(frac)));
            }
            cursor = dest;
        } else {
            // Unreachable destination: skip it.
            continue;
        }

        // Dwell leg: intentional stay or brief pass-in.
        let dwell_secs = if rng.gen::<f64>() < profile.stay_probability {
            rng::log_normal(rng, profile.dwell_mu, profile.dwell_sigma)
                .clamp(STAY_THRESHOLD.as_secs_f64() + 10.0, 1800.0)
        } else {
            rng.gen_range(5.0..STAY_THRESHOLD.as_secs_f64() * 0.6)
        };
        let dwell_steps = (dwell_secs / step.as_secs_f64()).ceil() as usize;
        let region = dsm.region_at(&cursor);
        for _ in 0..dwell_steps {
            now = now + step;
            // Wander around the anchor, staying inside the region.
            let jitter = Point::new(rng::normal(rng, 0.0, 0.8), rng::normal(rng, 0.0, 0.8));
            let candidate = Point::new(cursor.xy.x + jitter.x, cursor.xy.y + jitter.y);
            let pos = match region {
                Some(r) if r.contains(candidate) => candidate,
                _ => cursor.xy,
            };
            samples.push((
                now,
                IndoorPoint {
                    xy: pos,
                    floor: cursor.floor,
                },
            ));
        }
    }

    // Exit leg back to the entrance.
    if let Some(path) = pq.path(&cursor, &entrance) {
        let travel_secs = (path.distance / profile.walk_speed).max(1.0);
        let steps = (travel_secs / step.as_secs_f64()).ceil() as usize;
        for k in 1..=steps {
            let frac = k as f64 / steps as f64;
            now = now + step;
            samples.push((now, path.point_at_fraction(frac)));
        }
    }

    let visits = derive_visits(dsm, &samples);
    GroundTruth { samples, visits }
}

/// Derives ground-truth visits (region occupancy intervals) from a sampled
/// trajectory. Consecutive samples in the same region merge into one
/// interval; intervals ≥ [`STAY_THRESHOLD`] are stays, shorter ones pass-bys.
pub fn derive_visits(
    dsm: &DigitalSpaceModel,
    samples: &[(Timestamp, IndoorPoint)],
) -> Vec<TrueVisit> {
    let mut visits: Vec<TrueVisit> = Vec::new();
    let mut open: Option<(RegionId, String, Timestamp, Timestamp)> = None;
    for (ts, p) in samples {
        let here = dsm.region_at(p).map(|r| (r.id, r.name.clone()));
        match (&mut open, here) {
            (Some((rid, _, _, end)), Some((hid, _))) if *rid == hid => {
                *end = *ts;
            }
            (slot, here) => {
                if let Some((rid, name, start, end)) = slot.take() {
                    visits.push(close_visit(rid, name, start, end));
                }
                *slot = here.map(|(hid, hname)| (hid, hname, *ts, *ts));
            }
        }
    }
    if let Some((rid, name, start, end)) = open {
        visits.push(close_visit(rid, name, start, end));
    }
    visits
}

fn close_visit(
    region: RegionId,
    region_name: String,
    start: Timestamp,
    end: Timestamp,
) -> TrueVisit {
    let kind = if end - start >= STAY_THRESHOLD {
        VisitKind::Stay
    } else {
        VisitKind::PassBy
    };
    TrueVisit {
        region,
        region_name,
        kind,
        start,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trips_dsm::builder::MallBuilder;

    fn mall() -> DigitalSpaceModel {
        MallBuilder::new().floors(2).shops_per_row(4).build()
    }

    fn profile() -> AgentProfile {
        AgentProfile {
            walk_speed: 1.2,
            visits: 3,
            stay_probability: 0.7,
            dwell_mu: 5.0,
            dwell_sigma: 0.5,
            truth_interval: Duration::from_secs(2),
        }
    }

    #[test]
    fn session_produces_ordered_samples() {
        let dsm = mall();
        let pq = PathQuery::new(&dsm).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let gt = simulate_session(
            &dsm,
            &pq,
            &mut rng,
            &profile(),
            Timestamp::from_dhms(0, 10, 0, 0),
        );
        assert!(gt.samples.len() > 10);
        for w in gt.samples.windows(2) {
            assert!(w[0].0 < w[1].0, "timestamps strictly increase");
        }
    }

    #[test]
    fn session_visits_are_consistent_intervals() {
        let dsm = mall();
        let pq = PathQuery::new(&dsm).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let gt = simulate_session(
            &dsm,
            &pq,
            &mut rng,
            &profile(),
            Timestamp::from_dhms(0, 10, 0, 0),
        );
        assert!(!gt.visits.is_empty());
        for v in &gt.visits {
            assert!(v.start <= v.end);
            let expected = if v.duration() >= STAY_THRESHOLD {
                VisitKind::Stay
            } else {
                VisitKind::PassBy
            };
            assert_eq!(v.kind, expected);
        }
        // Consecutive visits never share a region (they would have merged).
        for w in gt.visits.windows(2) {
            assert!(
                w[0].region != w[1].region || w[0].end < w[1].start,
                "adjacent same-region visits should merge"
            );
        }
        // At least one stay happens with stay_probability 0.7 over 3 visits
        // under this seed.
        assert!(gt.visits.iter().any(|v| v.kind == VisitKind::Stay));
    }

    #[test]
    fn visits_cover_movement_through_hall() {
        let dsm = mall();
        let pq = PathQuery::new(&dsm).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let gt = simulate_session(
            &dsm,
            &pq,
            &mut rng,
            &profile(),
            Timestamp::from_dhms(0, 12, 0, 0),
        );
        // The agent must traverse the hallway between shops.
        assert!(
            gt.visits
                .iter()
                .any(|v| v.region_name.starts_with("Center Hall")),
            "hall traversal must appear in ground truth"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let dsm = mall();
        let pq = PathQuery::new(&dsm).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate_session(
                &dsm,
                &pq,
                &mut rng,
                &profile(),
                Timestamp::from_dhms(0, 10, 0, 0),
            )
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.visits, b.visits);
        let c = run(43);
        assert_ne!(a.samples, c.samples, "different seed, different walk");
    }

    #[test]
    fn derive_visits_merges_and_classifies() {
        let dsm = mall();
        // Hand-built trajectory: 2 samples in shop (short) then 60 in hall.
        let shop = dsm.regions().find(|r| r.tag.category == "shop").unwrap();
        let hall = dsm
            .regions()
            .find(|r| r.tag.category == "circulation")
            .unwrap();
        let shop_pt = IndoorPoint {
            xy: shop.anchor(),
            floor: shop.floor,
        };
        let hall_pt = IndoorPoint {
            xy: hall.anchor(),
            floor: hall.floor,
        };
        let mut samples = Vec::new();
        for i in 0..3i64 {
            samples.push((Timestamp::from_millis(i * 2000), shop_pt));
        }
        for i in 3..63i64 {
            samples.push((Timestamp::from_millis(i * 2000), hall_pt));
        }
        let visits = derive_visits(&dsm, &samples);
        assert_eq!(visits.len(), 2);
        assert_eq!(visits[0].kind, VisitKind::PassBy, "4 s in shop");
        assert_eq!(visits[1].kind, VisitKind::Stay, "120 s in hall");
    }

    #[test]
    fn empty_samples_no_visits() {
        let dsm = mall();
        assert!(derive_visits(&dsm, &[]).is_empty());
    }

    #[test]
    fn visit_kind_names() {
        assert_eq!(VisitKind::Stay.name(), "stay");
        assert_eq!(VisitKind::PassBy.name(), "pass-by");
    }
}
