//! Synthetic indoor positioning workloads.
//!
//! The paper demonstrates TRIPS on "a dataset obtained from a Wi-Fi based
//! positioning system in a 7-floor shopping mall in Hangzhou, China from
//! 2017-01-01 to 2017-01-07" (§4). That dataset is proprietary, so this crate
//! generates the closest synthetic equivalent (see DESIGN.md §2):
//!
//! 1. [`mobility`] — shopper agents walk itineraries over a mall DSM
//!    (ground-truth trajectories *and* ground-truth mobility semantics, which
//!    the real dataset does not even have);
//! 2. [`error`] — a Wi-Fi error model (Gaussian planar noise, floor
//!    misreads, outlier bursts, irregular sampling, record drops) degrades
//!    ground truth into realistic raw positioning records;
//! 3. [`scenario`] — end-to-end dataset assembly: N devices over D days in a
//!    multi-floor mall, anonymized MAC-style device ids.

pub mod error;
pub mod mobility;
pub mod rng;
pub mod scenario;

pub use error::ErrorModel;
pub use mobility::{AgentProfile, TrueVisit, VisitKind};
pub use scenario::{CampusBuilding, CampusDataset, DeviceTrace, ScenarioConfig, SimulatedDataset};
