//! Small random-sampling helpers on top of `rand` 0.8 (which ships only
//! uniform sampling; normal/log-normal are derived here via Box–Muller).

use rand::Rng;

/// One standard-normal sample (Box–Muller transform).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Log-normal sample parameterised by the *underlying* normal's μ and σ.
/// Dwell times and walking speeds are classically log-normal.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples an index from unnormalised non-negative weights.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        !weights.is_empty() && total > 0.0,
        "weights must be non-empty with positive sum"
    );
    let mut target = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0, "zero weight never drawn");
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "weights must be non-empty")]
    fn weighted_index_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        weighted_index(&mut rng, &[]);
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
