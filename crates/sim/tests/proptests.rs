//! Property-based tests for the simulator: ground truth and degraded
//! records must satisfy structural invariants for any parameters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trips_data::{DeviceId, Duration, Timestamp};
use trips_geom::IndoorPoint;
use trips_sim::{ErrorModel, ScenarioConfig};

fn arb_error_model() -> impl Strategy<Value = ErrorModel> {
    (
        0.0f64..3.0, // xy_sigma
        0.0f64..0.2, // outlier_rate
        0.0f64..0.2, // floor_error_rate
        0.0f64..0.3, // drop_rate
        2i64..15,    // sample interval secs
    )
        .prop_map(
            |(xy_sigma, outlier_rate, floor_error_rate, drop_rate, interval)| ErrorModel {
                xy_sigma,
                outlier_rate,
                floor_error_rate,
                drop_rate,
                sample_interval: Duration::from_secs(interval),
                ..ErrorModel::default()
            },
        )
}

fn straight_truth(n: usize) -> Vec<(Timestamp, IndoorPoint)> {
    (0..n)
        .map(|i| {
            (
                Timestamp::from_millis(i as i64 * 2000),
                IndoorPoint::new(i as f64 * 0.4, 5.0, 3),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn degraded_timestamps_strictly_increase(em in arb_error_model(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let recs = em.degrade(&mut rng, &DeviceId::new("p"), &straight_truth(300), (0, 6));
        for w in recs.windows(2) {
            prop_assert!(w[0].ts < w[1].ts);
        }
    }

    #[test]
    fn degraded_floors_stay_in_range(em in arb_error_model(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let recs = em.degrade(&mut rng, &DeviceId::new("p"), &straight_truth(300), (0, 6));
        for r in &recs {
            prop_assert!((0..=6).contains(&r.location.floor));
            prop_assert!(r.is_well_formed());
        }
    }

    #[test]
    fn degraded_timestamps_within_truth_span(em in arb_error_model(), seed in 0u64..1000) {
        let truth = straight_truth(200);
        let mut rng = StdRng::seed_from_u64(seed);
        let recs = em.degrade(&mut rng, &DeviceId::new("p"), &truth, (0, 6));
        let (start, end) = (truth[0].0, truth[truth.len() - 1].0);
        for r in &recs {
            prop_assert!(r.ts >= start && r.ts <= end);
        }
    }

    #[test]
    fn scenario_deterministic_per_seed(seed in 0u64..500) {
        let cfg = ScenarioConfig {
            devices: 2,
            days: 1,
            seed,
            ..ScenarioConfig::default()
        };
        let a = trips_sim::scenario::generate(1, 2, &cfg);
        let b = trips_sim::scenario::generate(1, 2, &cfg);
        prop_assert_eq!(a.record_count(), b.record_count());
        for (ta, tb) in a.traces.iter().zip(&b.traces) {
            prop_assert_eq!(ta.raw.records(), tb.raw.records());
            prop_assert_eq!(&ta.truth_visits, &tb.truth_visits);
        }
    }

    #[test]
    fn truth_visits_partition_time(seed in 0u64..200) {
        let ds = trips_sim::scenario::generate(
            2,
            3,
            &ScenarioConfig {
                devices: 2,
                days: 1,
                seed,
                ..ScenarioConfig::default()
            },
        );
        for trace in &ds.traces {
            for w in trace.truth_visits.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "visits must not overlap");
            }
            for v in &trace.truth_visits {
                prop_assert!(v.start <= v.end);
                // The classification matches the threshold rule.
                let expected = if v.duration() >= trips_sim::mobility::STAY_THRESHOLD {
                    trips_sim::VisitKind::Stay
                } else {
                    trips_sim::VisitKind::PassBy
                };
                prop_assert_eq!(v.kind, expected);
            }
        }
    }
}
