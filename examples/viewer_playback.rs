//! The Viewer's assessment workflow (paper §3, Figure 4): abstract every
//! data sequence as a timeline of entries, toggle source visibility, click
//! semantics on the timeline, and play an animated, semantics-enriched
//! movement.
//!
//! Run with: `cargo run --example viewer_playback`

use trips::prelude::*;
use trips::viewer::{animate, ascii};

fn main() {
    let dataset = trips::sim::scenario::generate(
        1,
        4,
        &ScenarioConfig {
            devices: 2,
            days: 1,
            seed: 5150,
            ..ScenarioConfig::default()
        },
    );
    let mut editor = EventEditor::with_default_patterns();
    for trace in &dataset.traces {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() >= 2 {
                let _ = editor.designate_segment(visit.kind.name(), &segment);
            }
        }
    }
    let device = dataset.traces[0].device.clone();
    let truth: Vec<Entry> = dataset.traces[0]
        .truth_samples
        .iter()
        .map(|(ts, p)| Entry::from_truth(*ts, *p))
        .collect();
    let dsm = dataset.dsm.clone();

    let mut system = Trips::new(Configurator::new(dataset.dsm).with_event_editor(editor));
    system
        .run(dataset.traces.iter().map(|t| t.raw.clone()).collect())
        .expect("translate");

    // Timeline with all four sources (the simulator gives us ground truth).
    let mut entries: Vec<Entry> = system
        .timeline_for(&device)
        .expect("timeline")
        .entries()
        .to_vec();
    entries.extend(truth);
    let timeline = Timeline::new(entries);
    let (start, end) = timeline.span().expect("non-empty");
    println!(
        "timeline for {}: {} entries over {} - {}",
        device.anonymized(),
        timeline.len(),
        start,
        end
    );

    // The semantics sequence is the primary navigator.
    println!("\nnavigator ({} semantics):", timeline.navigator_len());
    for (i, e) in timeline.navigator().enumerate().take(6) {
        println!("  [{i}] {}", e.label);
    }

    // Clicking an entry reveals everything its time range covers.
    if let Some(covered) = timeline.click_navigator(0) {
        let mut by_source = std::collections::BTreeMap::new();
        for e in &covered {
            *by_source.entry(e.source.name()).or_insert(0usize) += 1;
        }
        println!("\nclick navigator[0] → covered entries by source: {by_source:?}");
    }

    // Visibility control: focus on semantics vs raw only.
    let mut vis = VisibilityControl::all_visible();
    vis.toggle(SourceKind::Cleaned);
    vis.toggle(SourceKind::GroundTruth);
    let art = ascii::render(&dsm, 0, timeline.entries(), &vis, 78, 16);
    println!("\nraw + semantics only (r = raw, S = semantics):\n{art}");

    // Animated, semantics-enriched playback.
    let frames = animate::frames(&timeline, Duration::from_mins(2), Duration::from_secs(30));
    println!("playback at 2-minute steps ({} frames):", frames.len());
    for f in frames.iter().take(10) {
        println!(
            "  t={} active={} caption={}",
            f.t,
            f.active.len(),
            f.caption.as_deref().unwrap_or("-")
        );
    }
}
