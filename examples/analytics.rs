//! Downstream analytics on translated semantics: the applications the paper
//! motivates translation with (§1) — popular indoor location discovery,
//! in-store conversion, mobility flows — all computed from semantics alone.
//!
//! Run with: `cargo run --example analytics --release`

use trips::core::analytics;
use trips::prelude::*;

fn main() {
    // A week of traffic in a 7-floor mall.
    let dataset = trips::sim::scenario::generate(
        7,
        6,
        &ScenarioConfig {
            devices: 60,
            days: 7,
            seed: 0xA11A,
            ..ScenarioConfig::default()
        },
    );
    println!(
        "dataset: {} ({} records)\n",
        dataset.config_summary,
        dataset.record_count()
    );

    let mut editor = EventEditor::with_default_patterns();
    for trace in dataset.traces.iter().take(15) {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() >= 2 {
                let _ = editor.designate_segment(visit.kind.name(), &segment);
            }
        }
    }
    let sequences = dataset.sequences();
    let mut system = Trips::new(Configurator::new(dataset.dsm).with_event_editor(editor))
        .with_translator_config(TranslatorConfig::parallel(4));
    let result = system.run(sequences).expect("translate");
    println!(
        "translated {} records into {} semantics\n",
        result.total_records(),
        result.total_semantics()
    );

    // Popular indoor location discovery (ref [8]).
    println!("top 10 regions by stays:");
    println!(
        "{:<28} {:>6} {:>8} {:>9} {:>10} {:>11}",
        "region", "stays", "pass-bys", "stayers", "dwell", "conversion"
    );
    for p in analytics::popular_regions(result).iter().take(10) {
        println!(
            "{:<28} {:>6} {:>8} {:>9} {:>10} {:>10.0}%",
            p.region_name,
            p.stays,
            p.pass_bys,
            p.unique_stayers,
            p.total_dwell.to_string(),
            p.conversion_rate() * 100.0
        );
    }

    // Mobility flows (behavior prediction substrate, ref [6]).
    println!("\ntop 8 region-to-region flows:");
    for f in analytics::top_flows(result, 8) {
        println!("  {:<26} -> {:<26} x{}", f.from_name, f.to_name, f.count);
    }

    // Dwell-time distribution (the "long enough for a real purchase"
    // question of the paper's intro).
    println!("\nstay dwell histogram (5-minute buckets):");
    for (bucket, n) in analytics::dwell_histogram(result, Duration::from_mins(5)) {
        println!("  >= {:<9} {}", bucket.to_string(), "#".repeat(n.min(60)));
    }

    // Per-device dashboard rows.
    println!("\nfirst 5 device summaries:");
    for s in analytics::device_summaries(result).iter().take(5) {
        println!(
            "  {:<10} visited {:>2} regions, {:>2} stays, {} accounted",
            s.device, s.regions_visited, s.stays, s.accounted
        );
    }
}
