//! The Space Modeler's three-step DSM creation (paper §3, Figure 2) driven
//! programmatically: import a floorplan image, trace indoor entities with
//! drawing operations (snapping, undo/redo, groups), attach semantic tags,
//! and export the DSM to JSON.
//!
//! Run with: `cargo run --example floorplan_modeler`

use trips::dsm::canvas::FloorplanCanvas;
use trips::dsm::entity::EntityKind;
use trips::dsm::{json as dsm_json, DigitalSpaceModel, PathQuery};
use trips::prelude::*;

fn rect(x: f64, y: f64, w: f64, h: f64) -> Vec<Point> {
    vec![
        Point::new(x, y),
        Point::new(x + w, y),
        Point::new(x + w, y + h),
        Point::new(x, y + h),
    ]
}

fn main() {
    let mut canvas = FloorplanCanvas::new(0);

    // Step (1): import the floorplan image to the canvas.
    canvas.import_image("ground-floor.png");
    println!("step 1: imported {:?}", canvas.background_image);

    // Step (2): trace the floorplan by drawing geometric elements.
    let hall = canvas.draw_polygon(
        EntityKind::Hallway,
        "Center Hall",
        rect(0.0, 8.0, 40.0, 6.0),
    );
    let nike = canvas.draw_polygon(EntityKind::Room, "Nike Store", rect(0.0, 0.0, 12.0, 8.0));
    // The next shop's corner is drawn slightly off; the auto-adjust hint
    // snaps it onto Nike's corner.
    let adidas = canvas.draw_polygon(
        EntityKind::Room,
        "Adidas",
        vec![
            Point::new(12.1, 0.05), // snaps to (12, 0)
            Point::new(24.0, 0.0),
            Point::new(24.0, 8.0),
            Point::new(11.95, 7.9), // snaps to (12, 8)
        ],
    );
    let cashier = canvas.draw_polygon(EntityKind::Room, "Cashier", rect(24.0, 0.0, 8.0, 8.0));
    canvas.draw_door("nike-door", Point::new(6.0, 8.0), 1.5);
    canvas.draw_door("adidas-door", Point::new(18.0, 8.0), 1.5);
    canvas.draw_door("cashier-door", Point::new(28.0, 8.0), 1.5);
    canvas.draw_polyline(
        EntityKind::Wall,
        "north-wall",
        vec![Point::new(0.0, 14.0), Point::new(40.0, 14.0)],
    );
    canvas.draw_circle(EntityKind::Obstacle, "pillar", Point::new(20.0, 11.0), 0.6);

    // Edit-mode demonstration: a mis-draw, undone.
    let oops = canvas.draw_polygon(EntityKind::Room, "oops", rect(100.0, 100.0, 5.0, 5.0));
    canvas.delete(oops).expect("delete");
    canvas.undo().expect("undo delete");
    canvas.undo().expect("undo draw");
    println!("step 2: traced {} elements (after undo)", canvas.len());

    // Group the two sportswear shops and nudge them together.
    canvas.set_group(&[nike, adidas], 1).expect("group");
    canvas.move_group(1, 0.0, 0.0).expect("move group");

    // Step (3): attach semantic tags.
    canvas
        .assign_tag(nike, SemanticTag::new("sportswear", "shop"))
        .expect("tag");
    canvas
        .assign_tag(adidas, SemanticTag::new("sportswear", "shop"))
        .expect("tag");
    canvas
        .assign_tag(cashier, SemanticTag::new("cashier", "service"))
        .expect("tag");
    canvas
        .assign_tag(hall, SemanticTag::new("atrium", "circulation"))
        .expect("tag");
    println!("step 3: semantic tags attached");

    // Export: geometry + tags -> DSM with computed topology.
    let mut dsm = DigitalSpaceModel::new("drawn-mall");
    let report = canvas.export_to_dsm(&mut dsm).expect("export");
    dsm.freeze();
    println!(
        "exported {} entities, {} semantic regions",
        report.entities, report.regions
    );

    // The computed topological relations.
    let topo = dsm.topology().expect("frozen");
    for region in dsm.regions() {
        let neighbours: Vec<String> = topo
            .neighbours(region.id)
            .iter()
            .filter_map(|id| dsm.region(*id).ok())
            .map(|r| r.name.clone())
            .collect();
        println!("  {} ↔ {:?}", region.name, neighbours);
    }

    // Walking distance Nike -> Cashier threads through both doors.
    let pq = PathQuery::new(&dsm).expect("query");
    let nike_pt = IndoorPoint::new(6.0, 4.0, 0);
    let cashier_pt = IndoorPoint::new(28.0, 4.0, 0);
    let path = pq.path(&nike_pt, &cashier_pt).expect("walkable");
    println!(
        "walking distance Nike→Cashier: {:.1} m over {} waypoints (planar {:.1} m)",
        path.distance,
        path.points.len(),
        nike_pt.planar_distance(&cashier_pt)
    );

    // Save the DSM the way the Space Modeler saves its file.
    let out = std::path::Path::new("target/walkthrough");
    std::fs::create_dir_all(out).expect("mkdir");
    let path = out.join("drawn-mall.dsm.json");
    dsm_json::save(&dsm, &path).expect("save DSM");
    println!("DSM saved to {}", path.display());

    // Round-trip check.
    let back = dsm_json::load(&path).expect("load DSM");
    assert_eq!(back.entity_count(), dsm.entity_count());
    assert_eq!(back.region_count(), dsm.region_count());
    println!("round-trip OK ({} entities)", back.entity_count());
}
