//! Online translation: feed a live positioning stream into the
//! [`StreamingTranslator`] and receive finalized mobility semantics the
//! moment each device's session closes — the streaming extension on top of
//! the paper's batch Translator.
//!
//! Run with: `cargo run --example streaming`

use trips::complement::MobilityKnowledge;
use trips::core::stream::{StreamConfig, StreamingTranslator};
use trips::prelude::*;

fn main() {
    // Day 1 (historical batch): translate offline and learn the mobility
    // knowledge the streaming complementor will use.
    let history = trips::sim::scenario::generate(
        2,
        4,
        &ScenarioConfig {
            devices: 20,
            days: 1,
            seed: 0x0DA1,
            ..ScenarioConfig::default()
        },
    );
    let mut editor = EventEditor::with_default_patterns();
    for trace in &history.traces {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() >= 2 {
                let _ = editor.designate_segment(visit.kind.name(), &segment);
            }
        }
    }
    let translator =
        Translator::from_editor(&history.dsm, &editor, TranslatorConfig::standard()).unwrap();
    let batch = translator.translate(&history.sequences());
    let all_sems: Vec<Vec<MobilitySemantics>> = batch
        .devices
        .iter()
        .map(|d| d.original_semantics.clone())
        .collect();
    let knowledge = MobilityKnowledge::build(&history.dsm, &all_sems, 0.5);
    println!(
        "day 1 batch: {} sequences -> knowledge with {} observed transitions\n",
        batch.devices.len(),
        knowledge.observed_transitions
    );

    // Day 2 (live): replay the stream record by record.
    let live = trips::sim::scenario::generate(
        2,
        4,
        &ScenarioConfig {
            devices: 6,
            days: 1,
            seed: 0x11FE,
            ..ScenarioConfig::default()
        },
    );
    let mut stream = StreamingTranslator::from_editor(
        &history.dsm,
        &editor,
        Some(knowledge),
        StreamConfig {
            flush_gap: Duration::from_mins(10),
            ..StreamConfig::default()
        },
    )
    .unwrap();

    let records = live.all_records();
    println!("replaying {} live records…\n", records.len());
    let mut emitted = 0usize;
    for r in records {
        let device = r.device.anonymized();
        let out = stream.push(r);
        if !out.is_empty() {
            println!("session closed for {device}: {} semantics", out.len());
            for s in out.iter().take(3) {
                println!("    {s}");
            }
            if out.len() > 3 {
                println!("    …");
            }
            emitted += out.len();
        }
    }
    // End of stream: drain the open sessions.
    let rest = stream.finish();
    for (device, sems) in &rest {
        println!(
            "stream end, {}: {} semantics",
            device.anonymized(),
            sems.len()
        );
        emitted += sems.len();
    }
    println!(
        "\ntotal: {emitted} semantics emitted online ({} devices)",
        rest.len()
    );
}
