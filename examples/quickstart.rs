//! Quickstart: translate one simulated shopper's raw positioning data into
//! mobility semantics and print the Table-1-style before/after comparison.
//!
//! Run with: `cargo run --example quickstart`

use trips::prelude::*;

fn main() {
    // --- a synthetic mall and one day of shopper traffic -----------------
    let dataset = trips::sim::scenario::generate(
        2, // floors
        4, // shops per row
        &ScenarioConfig {
            devices: 5,
            days: 1,
            seed: 7,
            ..ScenarioConfig::default()
        },
    );
    println!("dataset: {}", dataset.config_summary);
    println!(
        "{} raw records across {} devices\n",
        dataset.record_count(),
        dataset.traces.len()
    );

    // --- Event Editor: designate training segments from ground truth -----
    let mut editor = EventEditor::with_default_patterns();
    for trace in &dataset.traces {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() >= 2 {
                let _ = editor.designate_segment(visit.kind.name(), &segment);
            }
        }
    }
    println!(
        "event editor: {} designated segments\n",
        editor.example_count()
    );

    // --- the five-step workflow ------------------------------------------
    let sequences = dataset.sequences();
    let device = dataset.traces[0].device.clone();
    let mut system = Trips::new(Configurator::new(dataset.dsm).with_event_editor(editor));
    let result = system.run(sequences).expect("translation");

    // --- Table 1: raw records vs mobility semantics ----------------------
    let d = result.device(&device).expect("translated device");
    println!(
        "=== Raw Indoor Positioning Data (first 8 of {}) ===",
        d.raw.len()
    );
    for r in d.raw.records().iter().take(8) {
        println!("  {r}");
    }
    println!("  ...");
    println!(
        "\n=== Mobility Semantics ({} triplets) ===",
        d.semantics.len()
    );
    println!("{}:", device.anonymized());
    for s in &d.semantics {
        println!("  {s}");
    }
    println!(
        "\nconciseness: {:.1} raw records per semantics triplet",
        d.conciseness_ratio()
    );
    println!("cleaning: {:?}", d.cleaned.report);
}
