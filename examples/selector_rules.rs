//! The Data Selector's rule vocabulary on a multi-day dataset: device-id
//! patterns, spatial/temporal ranges, positioning frequency, and the
//! periodic pattern that singles out daily commuters (paper §2).
//!
//! Run with: `cargo run --example selector_rules`

use trips::data::selector::Quantifier;
use trips::prelude::*;

fn count(selector: &Selector, seqs: &[PositioningSequence]) -> usize {
    selector.select_refs(seqs).len()
}

fn main() {
    // Three days of mall traffic.
    let dataset = trips::sim::scenario::generate(
        3,
        4,
        &ScenarioConfig {
            devices: 40,
            days: 3,
            max_sessions_per_day: 2,
            seed: 99,
            ..ScenarioConfig::default()
        },
    );
    let seqs = dataset.sequences();
    println!(
        "{} sequences, {} records total\n",
        seqs.len(),
        dataset.record_count()
    );

    // Rule 1: device ID pattern.
    let first_octet = dataset.traces[0].device.as_str().split('.').next().unwrap();
    let by_id = Selector::new(SelectionRule::DevicePattern(format!("{first_octet}.*")));
    println!(
        "device pattern '{first_octet}.*'      → {:>3} sequences",
        count(&by_id, &seqs)
    );

    // Rule 2: spatial range — devices seen on the ground floor, west wing.
    let west_wing = Selector::new(SelectionRule::SpatialRange {
        bbox: trips::geom::BoundingBox::new(Point::new(0.0, 0.0), Point::new(20.0, 25.0)),
        floor: Some(0),
        quantifier: Quantifier::Any,
    });
    println!(
        "west wing of ground floor  → {:>3} sequences",
        count(&west_wing, &seqs)
    );

    // Rule 3: sequences lasting more than one hour (the paper's example).
    let long_visits = Selector::new(SelectionRule::MinDuration(Duration::from_hours(1)));
    println!(
        "> 1 hour in the mall       → {:>3} sequences",
        count(&long_visits, &seqs)
    );

    // Rule 4: positioning frequency between 4 and 20 records/minute.
    let steady = Selector::new(SelectionRule::FrequencyPerMin {
        min: 4.0,
        max: 20.0,
    });
    println!(
        "4-20 records/min           → {:>3} sequences",
        count(&steady, &seqs)
    );

    // Rule 5: periodic pattern — devices that recur daily around the same
    // time (mall staff rather than shoppers).
    let daily = Selector::new(SelectionRule::PeriodicPattern {
        period: Duration::from_days(1),
        min_repeats: 3,
        tolerance: Duration::from_hours(2),
    });
    println!(
        "daily periodic visitors    → {:>3} sequences",
        count(&daily, &seqs)
    );

    // Combinators: long ground-floor visits that are NOT daily visitors.
    let combined = Selector::new(
        SelectionRule::MinDuration(Duration::from_hours(1))
            .and(SelectionRule::FloorVisited(0))
            .and(
                SelectionRule::PeriodicPattern {
                    period: Duration::from_days(1),
                    min_repeats: 3,
                    tolerance: Duration::from_hours(2),
                }
                .negate(),
            ),
    );
    println!(
        "long ∧ ground ∧ ¬daily     → {:>3} sequences",
        count(&combined, &seqs)
    );

    // The selected set feeds straight into the Translator.
    let picked = combined.select(seqs);
    println!(
        "\nfeeding {} selected sequences into the Translator…",
        picked.len()
    );
    let mut editor = EventEditor::with_default_patterns();
    for trace in dataset.traces.iter().take(8) {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() >= 2 {
                let _ = editor.designate_segment(visit.kind.name(), &segment);
            }
        }
    }
    let mut system = Trips::new(Configurator::new(dataset.dsm).with_event_editor(editor));
    let result = system.run(picked).expect("translate");
    println!(
        "translated: {} semantics across {} devices",
        result.total_semantics(),
        result.devices.len()
    );
}
