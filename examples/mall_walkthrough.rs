//! The paper's §4 walkthrough (Figure 5), end to end: the five-step workflow
//! in the shopping-mall scenario, producing the same artifacts the demo
//! shows — a translation result file and Viewer renderings (SVG + ASCII).
//!
//! Run with: `cargo run --example mall_walkthrough`
//!
//! Artifacts are written to `target/walkthrough/`.

use std::fs;
use trips::core::{export, store::Store};
use trips::prelude::*;
use trips::viewer::ascii;

fn main() {
    let out_dir = std::path::Path::new("target/walkthrough");
    fs::create_dir_all(out_dir).expect("create output dir");

    // The demo environment: a 7-floor mall, 7 days of data.
    let dataset = trips::sim::scenario::generate(
        7,
        6,
        &ScenarioConfig {
            devices: 30,
            days: 7,
            seed: 20170101,
            ..ScenarioConfig::default()
        },
    );
    println!("[data] {}", dataset.config_summary);
    println!("[data] {} raw records", dataset.record_count());

    // ---- Step (1): Data Selector ----------------------------------------
    // "select her desired positioning sequences (e.g., those that only
    // appear during the mall's operating hours 10:00 AM – 10:00 PM)".
    let selector = Selector::new(
        SelectionRule::TimeOfDayWindow {
            from: Duration::from_hours(10),
            to: Duration::from_hours(22),
            quantifier: trips::data::selector::Quantifier::All,
        }
        .and(SelectionRule::MinRecords(20)),
    );
    println!("[step 1] selector configured (operating hours 10:00-22:00, ≥20 records)");

    // ---- Step (2): Space Modeler -----------------------------------------
    // The DSM came from the mall builder here; persist it the way the demo
    // saves the DSM file for reuse.
    let store = Store::open(out_dir.join("backend")).expect("open store");
    store
        .save_dsm("hangzhou-mall", &dataset.dsm)
        .expect("save DSM");
    println!(
        "[step 2] DSM saved: {} floors, {} entities, {} semantic regions",
        dataset.dsm.floor_count(),
        dataset.dsm.entity_count(),
        dataset.dsm.region_count()
    );

    // ---- Step (3): Event Editor -------------------------------------------
    // Designate pass-by/stay patterns on browsed segments (ground truth
    // plays the analyst here).
    let mut editor = EventEditor::with_default_patterns();
    for trace in dataset.traces.iter().take(10) {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() >= 2 {
                let _ = editor.designate_segment(visit.kind.name(), &segment);
            }
        }
    }
    store
        .save_training("hangzhou-mall", &editor)
        .expect("save training");
    println!(
        "[step 3] {} event patterns, {} designated segments",
        editor.patterns().len(),
        editor.example_count()
    );

    // ---- Step (4): Translator ---------------------------------------------
    let sequences = dataset.sequences();
    let mut system = Trips::new(
        Configurator::new(dataset.dsm.clone())
            .with_selector(selector)
            .with_event_editor(editor),
    )
    .with_translator_config(TranslatorConfig::parallel(4));
    let result = system.run(sequences).expect("translation");
    println!(
        "[step 4] translated {} sequences: {} records -> {} semantics",
        result.devices.len(),
        result.total_records(),
        result.total_semantics()
    );

    // Export the result file (Figure 5(4)).
    export::save_text(result, out_dir.join("translation-result.txt")).expect("save text");
    export::save_json(result, out_dir.join("translation-result.json")).expect("save json");

    // ---- Step (5): Viewer ---------------------------------------------------
    let device = result.devices[0].raw.device().clone();
    let timeline = system.timeline_for(&device).expect("timeline");
    println!(
        "[step 5] timeline for {}: {} entries, {} semantics navigators",
        device.anonymized(),
        timeline.len(),
        timeline.navigator_len()
    );
    // Clicking the first navigator entry reveals the covered data.
    if let Some(covered) = timeline.click_navigator(0) {
        println!(
            "[step 5] clicking first semantics reveals {} covered entries",
            covered.len()
        );
    }
    let svg = system.render_svg(&device, 0).expect("svg");
    fs::write(out_dir.join("map-floor0.svg"), &svg).expect("write svg");

    // ASCII quick look of the ground floor with this device's data.
    let art = ascii::render(
        &system.configurator.dsm,
        0,
        timeline.entries(),
        &VisibilityControl::all_visible(),
        78,
        18,
    );
    println!("\nGround-floor map ({}):\n{art}", device.anonymized());

    // Assessment against ground truth.
    let trace = dataset
        .traces
        .iter()
        .find(|t| t.device == device)
        .expect("trace");
    let d = system.result().unwrap().device(&device).unwrap();
    let report = trips::core::assess::assess(&d.semantics, &trace.truth_visits);
    println!(
        "assessment: region-time accuracy {:.2}, coverage {:.2}, event accuracy {:.2}",
        report.region_time_accuracy, report.coverage, report.event_accuracy
    );
    println!("\nartifacts in {}", out_dir.display());
}
