//! The `Strategy` trait and basic combinators.

use crate::runner::TestRng;

/// A recipe for generating values of `Self::Value` from a deterministic rng.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply produces one value per draw.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strat: self, f }
    }

    /// Discards generated values failing the predicate (the runner retries;
    /// counts against the global reject budget like `prop_assume!`).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            strat: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) strat: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strat.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`]. Draws until the predicate holds, bounded
/// by a local retry cap (then panics with the filter's reason).
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    pub(crate) strat: S,
    pub(crate) f: F,
    pub(crate) reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.strat.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive draws: {}",
            self.reason
        );
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    arms: Vec<S>,
}

impl<S: Strategy> Union<S> {
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.sample_range(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}
