//! Collection strategies (`prop::collection::vec`).

use crate::runner::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Inclusive lower / exclusive upper bound on generated collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements are
/// drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.sample_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.elem.new_value(rng)).collect()
    }
}
