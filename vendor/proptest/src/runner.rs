//! The deterministic case runner behind `proptest!`.

use crate::strategy::Strategy;
use crate::{ProptestConfig, TestCaseError, TestCaseResult};
use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};
use std::fs;
use std::path::PathBuf;

/// The rng handed to strategies. Wraps the workspace `StdRng` so strategies
/// stay decoupled from the rand crate's traits.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn sample_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(&mut self.0)
    }
}

/// FNV-1a over the test's full name: the per-test base seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seed for `case` (attempt 0) or its retries after rejections.
fn case_seed(base: u64, case: u64, attempt: u64) -> u64 {
    base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt.wrapping_mul(0xD1B5_4A32_D192_ED03)
}

fn regression_path(manifest_dir: &str, test_name: &str) -> PathBuf {
    // `module_path!()`-derived names contain `::`; keep filenames flat.
    let flat = test_name.replace("::", "__");
    PathBuf::from(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{flat}.txt"))
}

/// Seeds recorded by previous failing runs, replayed before fresh cases.
fn load_regressions(manifest_dir: &str, test_name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(regression_path(manifest_dir, test_name)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| l.trim().strip_prefix("cc "))
        .filter_map(|s| s.trim().parse::<u64>().ok())
        .collect()
}

fn save_regression(manifest_dir: &str, test_name: &str, seed: u64) {
    let path = regression_path(manifest_dir, test_name);
    let Some(dir) = path.parent() else { return };
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut text = fs::read_to_string(&path).unwrap_or_else(|_| {
        "# Proptest regression seeds. Committed on purpose: each `cc <seed>` line\n\
         # replays a previously failing case before fresh cases are generated.\n"
            .to_string()
    });
    let line = format!("cc {seed}");
    if !text.lines().any(|l| l.trim() == line) {
        text.push_str(&line);
        text.push('\n');
        let _ = fs::write(&path, text);
    }
}

/// Runs one property: replayed regression seeds first, then `config.cases`
/// deterministic fresh cases. Panics (failing the enclosing `#[test]`) on
/// the first violated property, recording its seed.
pub fn run<S: Strategy>(
    config: &ProptestConfig,
    manifest_dir: &str,
    test_name: &str,
    strategy: S,
    test: impl Fn(S::Value) -> TestCaseResult,
) {
    let base = fnv1a(test_name);
    let mut global_rejects: u32 = 0;

    let run_seed = |seed: u64, label: &str| {
        let mut rng = TestRng::from_seed(seed);
        let value = strategy.new_value(&mut rng);
        match test(value) {
            Ok(()) => true,
            Err(TestCaseError::Reject(_)) => false,
            Err(TestCaseError::Fail(msg)) => {
                save_regression(manifest_dir, test_name, seed);
                panic!(
                    "proptest `{test_name}` failed at {label} (seed {seed}): {msg}\n\
                     (seed recorded in proptest-regressions/)"
                );
            }
        }
    };

    for (i, seed) in load_regressions(manifest_dir, test_name)
        .into_iter()
        .enumerate()
    {
        // Regression inputs that now hit `prop_assume!` count as passed.
        run_seed(seed, &format!("regression #{i}"));
    }

    for case in 0..config.cases {
        let mut attempt: u64 = 0;
        loop {
            let seed = case_seed(base, case as u64, attempt);
            if run_seed(seed, &format!("case {case}")) {
                break;
            }
            global_rejects += 1;
            attempt += 1;
            if global_rejects > config.max_global_rejects {
                panic!(
                    "proptest `{test_name}`: too many prop_assume! rejections \
                     ({global_rejects}) — weaken the assumption or the strategy"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let a = strat.new_value(&mut TestRng::from_seed(1));
        let b = strat.new_value(&mut TestRng::from_seed(1));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 5i64..10, y in 0.0f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(0usize..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn map_and_assume_work(v in (1u32..50).prop_map(|x| x * 2)) {
            prop_assume!(v != 4);
            prop_assert!(v % 2 == 0);
            prop_assert_ne!(v, 4);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_draws_every_arm(picks in prop::collection::vec(prop_oneof![Just(1), Just(2)], 64)) {
            prop_assert!(picks.iter().all(|&p| p == 1 || p == 2));
        }
    }
}
