//! Offline stand-in for `proptest` covering the surface this workspace's
//! eight property suites use: range/tuple/`Just`/`prop_oneof!` strategies,
//! `prop::collection::vec`, `prop_map`, and the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Generation is fully deterministic: each case's rng seed derives from the
//! test's module path + name + case index, so every run (locally and in CI)
//! explores the same inputs. There is no shrinking — failures report the
//! case seed, which reproduces by construction — and failing seeds are
//! persisted to `proptest-regressions/` and replayed first on later runs,
//! mirroring upstream's regression-file workflow.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod runner;
pub mod strategy;

pub use runner::TestRng;
pub use strategy::{Just, Map, Strategy, Union};

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the input; the runner retries with new input.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (the subset of upstream's knobs the suites set).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Total `prop_assume!` rejections tolerated across a property's run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Number strategies: plain `std` ranges sample uniformly.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for bool {
    type Value = bool;
    fn new_value(&self, _rng: &mut TestRng) -> bool {
        *self
    }
}

macro_rules! impl_tuple_strategy {
    ($( ( $($n:tt $s:ident),+ ) )*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Property failed unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` != `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Rejects the current input (the runner draws a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strat),+])
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]`-attributed runner over `config.cases` cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_with_config! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_with_config! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: the config expression is matched
/// at repetition depth 0 so it can be re-used inside every generated test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_with_config {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::runner::run(
                    &config,
                    env!("CARGO_MANIFEST_DIR"),
                    concat!(module_path!(), "::", stringify!($name)),
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
