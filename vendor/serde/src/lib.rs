//! Offline stand-in for `serde` with the same import surface this workspace
//! uses: `Serialize` / `Deserialize` traits, same-named derive macros, and a
//! `#[serde(skip)]` / `#[serde(default)]` field attributes.
//!
//! Unlike upstream serde's visitor architecture, this implementation
//! round-trips through an owned [`value::Value`] tree — `serde_json` then
//! prints/parses that tree. This keeps the derive machinery small enough to
//! hand-roll without `syn`/`quote` while preserving upstream's external JSON
//! shape (externally-tagged enums, transparent newtypes, string-keyed maps).

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a named struct field, treating a missing key as `null` (so
/// `Option` fields may be omitted, as with upstream's `default` behaviour
/// for options; all other types report a missing-field error).
pub fn de_field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{key}`")))
        }
    }
}

/// Looks up a named struct field marked `#[serde(default)]`: a missing
/// key (or an explicit `null` that the type rejects) falls back to
/// `Default::default()` instead of erroring — upstream serde's
/// forward-compatibility behaviour for `default` fields.
pub fn de_field_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Ok(T::default()),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", v.kind())))
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if let Ok(i) = i64::try_from(*self) {
            Value::Int(i)
        } else {
            Value::Float(*self as f64)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let i = v
            .as_i64()
            .ok_or_else(|| Error::custom(format!("expected integer, got {}", v.kind())))?;
        u64::try_from(i).map_err(|_| Error::custom("integer out of range"))
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(Arc::from)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for Rc<str> {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for Rc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(Rc::from)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

macro_rules! impl_serde_tuple {
    ($( ( $($n:tt $t:ident),+ ) )*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {}", v.kind())))?;
                let want = [$($n,)+].len();
                if arr.len() != want {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements", want, arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Maps serialize as JSON objects when every key serializes to a string
/// (upstream's shape), falling back to an array of `[key, value]` pairs for
/// structured keys — this crate's deserializers accept both shapes.
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)> + Clone,
{
    let keys: Vec<Value> = entries.clone().map(|(k, _)| k.to_value()).collect();
    if keys.iter().all(|k| matches!(k, Value::String(_))) {
        Value::Object(
            keys.into_iter()
                .zip(entries.map(|(_, v)| v.to_value()))
                .map(|(k, v)| match k {
                    Value::String(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Array(
            keys.into_iter()
                .zip(entries.map(|(_, v)| v.to_value()))
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .map(|(k, val)| {
                Ok((
                    K::from_value(&Value::String(k.clone()))?,
                    V::from_value(val)?,
                ))
            })
            .collect(),
        Value::Array(items) => items.iter().map(<(K, V)>::from_value).collect(),
        other => Err(Error::custom(format!("expected map, got {}", other.kind()))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_entries_from_value(v).map(|entries| entries.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by serialized key.
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        pairs.sort_by_key(|(k, _)| k.sort_key());
        if pairs.iter().all(|(k, _)| matches!(k, Value::String(_))) {
            Value::Object(
                pairs
                    .into_iter()
                    .map(|(k, v)| match k {
                        Value::String(s) => (s, v),
                        _ => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            Value::Array(
                pairs
                    .into_iter()
                    .map(|(k, v)| Value::Array(vec![k, v]))
                    .collect(),
            )
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_entries_from_value(v).map(|entries| entries.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
