//! The owned JSON-shaped value tree shared by `serde` and `serde_json`.

use std::fmt;
use std::ops::Index;

/// A JSON-shaped value. Objects preserve insertion order (like upstream
/// `serde_json` with `preserve_order`), which keeps derive output stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view; floats with an exact integer value qualify.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object-member or array-element lookup, `None` when absent.
    pub fn get(&self, index: impl ValueIndex) -> Option<&Value> {
        index.get_from(self)
    }

    /// Total order key for deterministic map serialization.
    pub(crate) fn sort_key(&self) -> String {
        match self {
            Value::String(s) => s.clone(),
            other => format!("{other:?}"),
        }
    }
}

/// Types usable with [`Value::get`] and `Index`.
pub trait ValueIndex {
    fn get_from<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for usize {
    fn get_from<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl ValueIndex for &str {
    fn get_from<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == self).map(|(_, val)| val))
    }
}

impl<I: ValueIndex> Index<I> for Value {
    type Output = Value;

    /// Missing members index to `null` (matching `serde_json`'s behaviour)
    /// rather than panicking.
    fn index(&self, index: I) -> &Value {
        index.get_from(self).unwrap_or(&NULL)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
    )*};
}

impl_eq_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => f.write_str("null"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a quoted JSON string (used by `serde_json`'s printers).
pub fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}
