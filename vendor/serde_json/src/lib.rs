//! Offline stand-in for `serde_json`: prints and parses the vendored
//! `serde`'s [`Value`] tree as standard JSON (`to_string`,
//! `to_string_pretty`, `from_str`, indexable `Value`).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

pub use serde::value::Value;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Converts a [`Value`] tree into a deserializable type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.error("trailing characters"));
    }
    T::from_value(&v).map_err(Error::from)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(&pad_in);
                let _ = serde::value::write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.s.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.parse_value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    /// Reads 4 hex digits starting at byte offset `at`.
    fn read_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .s
            .get(at..at + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.error("invalid \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.pos).copied() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.s.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut cp = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: external producers (e.g.
                                // ensure_ascii JSON) encode non-BMP chars as
                                // a \uXXXX\uXXXX pair — combine it.
                                if self.s.get(self.pos + 1..self.pos + 3) == Some(b"\\u") {
                                    let low = self.read_hex4(self.pos + 3)?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                        self.pos += 6;
                                    }
                                }
                            }
                            // Unpaired surrogates degrade to the replacement
                            // char rather than erroring (lenient like most
                            // parsers' non-strict modes).
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or escape
                    // (input is a &str, so the slice is valid UTF-8).
                    let start = self.pos;
                    while matches!(self.s.get(self.pos), Some(b) if *b != b'"' && *b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.s[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.s.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.s.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let json = r#"{"a": [1, 2.5, "x\ny", true, null], "b": {"c": -3}}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], "x\ny");
        assert_eq!(v["a"][3], true);
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"], -3);
        let reprinted: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(reprinted, v);
        let pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn missing_index_is_null() {
        let v: Value = from_str(r#"{"a": 1}"#).unwrap();
        assert!(v["nope"].is_null());
        assert!(v["a"][3].is_null());
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        // Python json.dumps("😀") with ensure_ascii=True.
        let v: Value = from_str(r#""\ud83d\ude00 ok""#).unwrap();
        assert_eq!(v, "\u{1F600} ok");
        // Lone surrogate degrades to the replacement char, not an error.
        let v: Value = from_str(r#""\ud83dx""#).unwrap();
        assert_eq!(v, "\u{fffd}x");
        // Truncated escape after a high surrogate is a hard error.
        assert!(from_str::<Value>(r#""\ud83d\u12""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b".into(), -2.0)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }
}
