//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The real crate's locks do not poison; this shim recovers from poisoning
//! so the API contract (`lock()` returning a guard, not a `Result`) holds.

use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};
// The guard type is the real crate's name for (here) the std guard, so
// callers can write `parking_lot::MutexGuard` in signatures.
pub use std::sync::MutexGuard;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now (`parking_lot`'s
    /// `try_lock` contract: `None` means contended, never poisoned).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the write lock only if it is free right now
    /// (`parking_lot`'s `try_write` contract: `None` means contended,
    /// never poisoned).
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires the read lock only if no writer holds or is waiting for
    /// it right now.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contends_without_blocking() {
        let m = Mutex::new(5);
        let held = m.lock();
        assert!(m.try_lock().is_none(), "held lock -> None");
        drop(held);
        assert_eq!(*m.try_lock().expect("free lock -> guard"), 5);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
