//! Offline stand-in for the parts of `rand` 0.8 this workspace uses:
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng` (here a xoshiro256** seeded through SplitMix64).
//!
//! Sampling is uniform and statistically well-behaved (the simulator's
//! Box–Muller normals are built on `gen::<f64>()`), but the streams do NOT
//! match upstream `rand` bit-for-bit — seeds are stable only within this
//! workspace, which is all determinism the test suites rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an rng (the `Standard`
/// distribution of upstream `rand`, folded into one trait).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T`: floats in `[0, 1)`, integers and bool over
    /// their full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample within `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic rng: xoshiro256** with
    /// SplitMix64 seed expansion (period 2^256 − 1, passes BigCrush).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, bound)` by Lemire-style rejection on the modulus
/// (unbiased; the rejection zone is at most `bound - 1` values of 2^64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3..=5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
            let w = rng.gen_range(10..20);
            assert!((10..20).contains(&w));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(saw_lo && saw_hi, "inclusive endpoints reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(draw(&mut rng) < 1.0);
    }
}
