//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde`, written directly against `proc_macro::TokenStream` (the offline
//! toolchain has no `syn`/`quote`).
//!
//! Supported shapes — exactly what this workspace declares:
//! named/tuple/unit structs, enums with unit/tuple/struct variants,
//! lifetime-only generics, and the `#[serde(skip)]` / `#[serde(default)]`
//! field attributes (skipped fields deserialize via `Default`; `default`
//! fields serialize normally but fall back to `Default` when the key is
//! absent — upstream serde's forward-compatibility idiom). Type
//! parameters and other `#[serde(...)]` options are rejected with a
//! compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: a missing key deserializes via `Default`
    /// instead of erroring (serialization is unaffected).
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    lifetimes: Vec<String>,
    data: Data,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading `#[...]` attributes; returns which `#[serde(...)]`
    /// markers (`skip`, `default`) were present.
    fn skip_attrs(&mut self) -> Result<(bool, bool), String> {
        let mut has_skip = false;
        let mut has_default = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(i)) = inner.first() {
                        if i.to_string() == "serde" {
                            let body = match inner.get(1) {
                                Some(TokenTree::Group(b)) => b.stream().to_string(),
                                _ => String::new(),
                            };
                            match body.trim() {
                                "skip" => has_skip = true,
                                "default" => has_default = true,
                                other => {
                                    return Err(format!(
                                        "unsupported #[serde({other})] — this derive only knows \
                                         `skip` and `default`"
                                    ))
                                }
                            }
                        }
                    }
                }
                _ => return Err("malformed attribute".into()),
            }
        }
        Ok((has_skip, has_default))
    }

    /// Consumes `pub` / `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c) {
            self.next();
            true
        } else {
            false
        }
    }

    /// Consumes a `<...>` generics list; only lifetime params are accepted.
    fn parse_generics(&mut self) -> Result<Vec<String>, String> {
        let mut lifetimes = Vec::new();
        if !self.eat_punct('<') {
            return Ok(lifetimes);
        }
        let mut depth = 1usize;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    let name = self.expect_ident()?;
                    if depth == 1 {
                        lifetimes.push(name);
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                Some(TokenTree::Ident(i)) => {
                    return Err(format!(
                        "type/const parameter `{i}` unsupported by the vendored serde derive"
                    ));
                }
                Some(_) => {}
                None => return Err("unterminated generics".into()),
            }
        }
        Ok(lifetimes)
    }

    /// Skips a field's type: everything up to a top-level `,` (or the end),
    /// tracking `<...>` nesting so type-argument commas don't terminate.
    fn skip_type(&mut self) {
        let mut angle: usize = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

/// Parses the fields of a `{ ... }` struct body or struct variant.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let (skip, default) = cur.skip_attrs()?;
        cur.skip_visibility();
        let name = cur.expect_ident()?;
        if !cur.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        cur.skip_type();
        cur.eat_punct(',');
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

/// Counts the fields of a `( ... )` tuple body (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    if cur.at_end() {
        return 0;
    }
    let mut count = 1;
    let mut angle: usize = 0;
    while let Some(t) = cur.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if cur.at_end() {
                    // trailing comma
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attrs()?;
        let name = cur.expect_ident()?;
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cur.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if cur.eat_punct('=') {
            // Explicit discriminant: skip the expression.
            while let Some(t) = cur.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                cur.next();
            }
        }
        cur.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(item: TokenStream) -> Result<Input, String> {
    let mut cur = Cursor::new(item);
    cur.skip_attrs()?;
    cur.skip_visibility();
    let kw = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    let lifetimes = cur.parse_generics()?;
    match kw.as_str() {
        "struct" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                lifetimes,
                data: Data::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                lifetimes,
                data: Data::TupleStruct(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                lifetimes,
                data: Data::UnitStruct,
            }),
            Some(TokenTree::Ident(i)) if i.to_string() == "where" => {
                Err("`where` clauses unsupported by the vendored serde derive".into())
            }
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                lifetimes,
                data: Data::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// `impl<'a, 'b>` header fragment + `Name<'a, 'b>` type fragment.
fn generics(input: &Input) -> (String, String) {
    if input.lifetimes.is_empty() {
        (String::new(), input.name.clone())
    } else {
        let list = input
            .lifetimes
            .iter()
            .map(|l| format!("'{l}"))
            .collect::<Vec<_>>()
            .join(", ");
        (format!("<{list}>"), format!("{}<{list}>", input.name))
    }
}

fn gen_serialize(input: &Input) -> String {
    let (params, ty) = generics(input);
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::value::Value::Object(fields)");
            s
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::value::Value::Array(vec![{items}])")
        }
        Data::UnitStruct => "::serde::value::Value::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::value::Value::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let pats = (0..*n)
                            .map(|i| format!("__f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vn}({pats}) => ::serde::value::Value::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::value::Value::Array(vec![{items}]))]),\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let pats = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pats} }} => ::serde::value::Value::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::value::Value::Object(vec![{items}]))]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{params} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> Result<String, String> {
    if !input.lifetimes.is_empty() {
        return Err("Deserialize derive does not support borrowed (lifetime-generic) types".into());
    }
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{0}: ::serde::de_field_default(__obj, \"{0}\")?,\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::de_field(__obj, \"{0}\")?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 \"expected object for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Data::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 \"expected array for `{name}`\"))?;\n\
                 if __arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for `{name}`\"));\n}}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __arr = __payload.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array payload for `{name}::{vn}`\"))?;\n\
                             if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for `{name}::{vn}`\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}({items}))\n}}\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else if f.default {
                                inits.push_str(&format!(
                                    "{0}: ::serde::de_field_default(__obj, \"{0}\")?,\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::de_field(__obj, \"{0}\")?,\n",
                                    f.name
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __obj = __payload.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object payload for `{name}::{vn}`\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::value::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                 }},\n\
                 ::serde::value::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __payload) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                 }}\n}}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"expected variant of `{name}`, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    Ok(format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    ))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    match parse_input(item) {
        Ok(input) => gen_serialize(&input)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    match parse_input(item).and_then(|input| gen_deserialize(&input)) {
        Ok(code) => code
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
