//! Offline stand-in for `criterion` with the macro/API surface the bench
//! suite uses: `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group` (with `sample_size` / `throughput`), `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `BatchSize`, and
//! `Bencher::{iter, iter_batched}`.
//!
//! Measurement is deliberately lightweight — a short warmup then a bounded
//! sampling loop per benchmark, reporting mean wall-clock time (and
//! element throughput when declared) to stdout. No plots, no statistics
//! beyond the mean: the point is that `cargo bench` runs end-to-end offline.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped; the stand-in times one input per batch
/// regardless, so variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A parameterised benchmark name, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Names acceptable where criterion takes `impl Into<BenchmarkId>`-ish ids.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Total time spent in measured routines, and iterations counted.
    elapsed: Duration,
    iters: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the sampling loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup draw (also primes caches/allocs out of the measurement).
        black_box(routine());
        let samples = self.sample_size as u64;
        let start = Instant::now();
        for _ in 0..samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += samples;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let samples = self.sample_size as u64;
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += samples;
    }

    /// Like [`Self::iter_batched`] but the routine borrows the input mutably.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut warm = setup();
        black_box(routine(&mut warm));
        let samples = self.sample_size as u64;
        for _ in 0..samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
        }
        self.iters += samples;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{name:<50} (no samples)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let time = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else {
        format!("{:.3} µs", per_iter * 1e6)
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            println!("{name:<50} {time:>12}/iter {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter / 1e6;
            println!("{name:<50} {time:>12}/iter {rate:>12.1} MB/s");
        }
        None => println!("{name:<50} {time:>12}/iter"),
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    /// Measured routine invocations per benchmark (settable per group).
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep offline bench runs quick; upstream's default is 100.
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        name: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into_id();
        run_one(&name, self.default_sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        sample_size,
    };
    f(&mut b);
    report(name, &b, throughput);
}

/// A named group of related benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n.min(20);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (`--bench`, filters); none apply here.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0u64;
        run_one("test/iter", 5, None, |b| b.iter(|| count += 1));
        assert_eq!(count, 6); // warmup + samples

        let mut batched = 0u64;
        run_one("test/batched", 5, Some(Throughput::Elements(10)), |b| {
            b.iter_batched(|| 2u64, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 12);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
