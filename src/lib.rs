//! # TRIPS — Translating Raw Indoor Positioning data into mobility Semantics
//!
//! A full reimplementation of the system demonstrated in *"TRIPS: A System
//! for Translating Raw Indoor Positioning Data into Visual Mobility
//! Semantics"* (Li, Lu, Shi, Chen, Chen, Shou — PVLDB 11(12), 2018), as a
//! Rust library.
//!
//! Raw indoor positioning records (`device, (x, y, floor), timestamp`) are
//! noisy, discrete and semantics-free. TRIPS translates them into *mobility
//! semantics* — triplets of an event annotation, a semantic region, and a
//! time range, e.g. `(stay, Adidas, 1:02:05-1:18:15pm)` — through a
//! three-layer pipeline (Cleaning → Annotation → Complementing) configured
//! by three inputs (positioning data selection, a Digital Space Model, and
//! user-designated mobility-event training data), with a Viewer that renders
//! every intermediate sequence for assessment.
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`geom`] | `trips-geom` | planar geometry substrate |
//! | [`dsm`] | `trips-dsm` | Digital Space Model, topology, walking distance, drawing tool |
//! | [`data`] | `trips-data` | positioning records, sources, Data Selector rules |
//! | [`sim`] | `trips-sim` | synthetic mall workloads with ground truth |
//! | [`clean`] | `trips-clean` | Cleaning layer |
//! | [`annotate`] | `trips-annotate` | Annotation layer (splitting, features, models, Event Editor) |
//! | [`complement`] | `trips-complement` | Complementing layer (knowledge + MAP inference) |
//! | [`viewer`] | `trips-viewer` | timeline abstraction, map view, SVG/ASCII rendering |
//! | [`engine`] | `trips-engine` | pipeline executor: ordered fan-out + per-stage timing |
//! | [`core`] | `trips-core` | Configurator / Translator / assessment / export / facade |
//! | [`wal`] | `trips-wal` | append-only write-ahead log: checksummed records, segment rotation, torn-tail-tolerant replay |
//! | [`server`] | `trips-server` | TCP serving layer: NDJSON ingest/query/admin, load shedding, durable boot |
//!
//! ## Quickstart
//!
//! ```
//! use trips::prelude::*;
//!
//! // A one-floor synthetic mall with ground-truth shopper traces.
//! let dataset = trips::sim::scenario::generate(1, 3, &ScenarioConfig {
//!     devices: 2,
//!     seed: 42,
//!     ..ScenarioConfig::default()
//! });
//!
//! // Train event identification from ground-truth designations.
//! let mut editor = EventEditor::with_default_patterns();
//! for trace in &dataset.traces {
//!     for visit in &trace.truth_visits {
//!         let segment: Vec<_> = trace.raw.records().iter()
//!             .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
//!             .cloned().collect();
//!         if segment.len() >= 2 {
//!             let _ = editor.designate_segment(visit.kind.name(), &segment);
//!         }
//!     }
//! }
//!
//! // Run the five-step workflow.
//! let sequences = dataset.sequences();
//! let mut system = Trips::new(
//!     Configurator::new(dataset.dsm).with_event_editor(editor),
//! );
//! let result = system.run(sequences).unwrap();
//! assert!(result.total_semantics() > 0);
//! ```

pub use trips_annotate as annotate;
pub use trips_clean as clean;
pub use trips_complement as complement;
pub use trips_core as core;
pub use trips_data as data;
pub use trips_dsm as dsm;
pub use trips_engine as engine;
pub use trips_geom as geom;
pub use trips_server as server;
pub use trips_sim as sim;
pub use trips_store as store;
pub use trips_viewer as viewer;
pub use trips_wal as wal;

/// The most commonly used items in one import.
pub mod prelude {
    pub use trips_annotate::{
        Annotator, AnnotatorConfig, EventEditor, MobilitySemantics, SplitConfig,
    };
    pub use trips_clean::{CleanedSequence, Cleaner, CleanerConfig};
    pub use trips_complement::{Complementor, ComplementorConfig, MobilityKnowledge};
    pub use trips_core::{
        AssessmentReport, Configurator, DeviceTranslation, TranslationResult, Translator,
        TranslatorConfig, Trips,
    };
    pub use trips_data::{
        DeviceId, Duration, PositioningSequence, RawRecord, SelectionRule, Selector, Timestamp,
    };
    pub use trips_dsm::builder::MallBuilder;
    pub use trips_dsm::{DigitalSpaceModel, PathQuery, RegionId, SemanticRegion, SemanticTag};
    pub use trips_engine::{Pipeline, PipelineReport};
    pub use trips_geom::{IndoorPoint, Point, Polygon};
    pub use trips_server::{Client, ServerConfig, TripsServer};
    pub use trips_sim::{CampusDataset, ErrorModel, ScenarioConfig, SimulatedDataset};
    pub use trips_store::{
        DurabilityConfig, FsyncPolicy, Query, QueryRequest, QueryResult, QueryService,
        SemanticsSelector, SemanticsStore, StoreHealth,
    };
    pub use trips_viewer::{Entry, MapView, SourceKind, SvgRenderer, Timeline, VisibilityControl};
}
