//! `trips-serve` — boot a TRIPS serving endpoint.
//!
//! Builds a simulated deployment (a mall DSM + an Event Editor trained on
//! ground truth — the repo's stand-in for a surveyed site), binds a TCP
//! listener and serves the wire protocol (NDJSON v1 and binary v2,
//! detected per message) until a `Shutdown` request drains it. With `--port 0` the OS picks an ephemeral port; the chosen
//! address is printed as `listening on HOST:PORT` (and flushed) so
//! scripts can scrape it.
//!
//! ```text
//! trips-serve [--host H] [--port P] [--workers N] [--queue N]
//!             [--max-conns N] [--shards N] [--loop-shards N]
//!             [--translator-shards N] [--read-budget BYTES]
//!             [--event-backend auto|epoll|poll] [--max-rules N]
//!             [--floors N] [--shops N]
//!             [--devices N] [--days N] [--seed N] [--snapshot PATH]
//!             [--snapshot-root DIR] [--wal-dir DIR]
//!             [--fsync always|every=N|never] [--segment-bytes N]
//!             [--metrics-addr HOST:PORT] [--no-obs]
//!             [--slow-threshold-us N] [--trace-ring N] [--slow-log N]
//!             [--idle-timeout SECS] [--rebalance] [--no-writev-batch]
//! ```
//!
//! `--loop-shards` splits the event loop into N independent shards (one
//! thread each, default `min(cores, 4)`); a single acceptor places each
//! new connection on the least-loaded shard (observed bytes + jobs,
//! round-robin when idle). `--translator-shards` partitions the
//! streaming-translator lock by device hash (rounded to a power of two).
//! `--read-budget` bounds bytes read per readiness event per connection.
//! `--event-backend` picks the readiness backend: `epoll`
//! (edge-triggered, Linux), `poll` (portable), or `auto` (default —
//! epoll where available). `--max-rules` caps how many standing TQL
//! rules (`Subscribe` requests) may be registered at once across all
//! connections (default 1024).
//!
//! `--snapshot-root` enables wire-level `Snapshot` requests on a
//! non-durable server: the request's (relative, non-escaping) path
//! resolves inside this directory. Without it such requests are rejected
//! — the wire must not name arbitrary server filesystem locations.
//!
//! `--wal-dir` makes the store durable: boot recovers from the
//! directory (checkpoint snapshot + WAL replay, torn tail truncated) and
//! every acked ingest is journaled before the ack, under the `--fsync`
//! policy (default `every=64`). `Snapshot` admin requests then mean
//! checkpoint + compact. `--snapshot` (one-shot, non-durable boot) and
//! `--wal-dir` are mutually exclusive.
//!
//! `--metrics-addr` binds a second, dedicated listener serving
//! Prometheus text exposition at `GET /metrics` (HTTP/1.0, one request
//! per connection); the chosen address is printed as `metrics on
//! HOST:PORT`. `--slow-threshold-us` sets the latency above which a
//! request's span is promoted into the retrievable slow-log (0 promotes
//! every request — the trace-everything switch); `--trace-ring` /
//! `--slow-log` size the per-loop-shard trace rings and the slow-log.
//! `--no-obs` turns span collection off entirely (metrics stay on).
//!
//! `--idle-timeout SECS` reaps connections with no traffic for that long
//! (default off; epoll shards arm a `timerfd`, the poll backend checks on
//! its timeout lap) — reaps count in the `connections_reaped` metric.
//! `--rebalance` lets loop shards migrate fully-idle connections toward
//! the least-loaded shard between laps (`connections_rebalanced`
//! metric). `--no-writev-batch` disables the segmented `writev(2)` flush
//! and coalesces queued responses into single `write` calls instead (the
//! poll backend always coalesces).
//!
//! Clients replaying `generate_campus` traffic must use the same
//! `--floors/--shops` layout (every campus building shares it); see the
//! README's "Serving" section and `server_load` in `trips-bench`.

use std::io::Write;
use std::net::TcpListener;
use trips::server::{bootstrap_scenario, BackendChoice, ServerConfig, TripsServer};
use trips::sim::ScenarioConfig;
use trips::store::DurabilityConfig;
use trips::wal::FsyncPolicy;

struct Options {
    host: String,
    port: u16,
    config: ServerConfig,
    floors: u16,
    shops: usize,
    devices: usize,
    days: usize,
    seed: u64,
    /// Staged until we know whether --wal-dir was given.
    fsync: Option<FsyncPolicy>,
    segment_bytes: Option<u64>,
}

fn usage_and_exit(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: trips-serve [--host H] [--port P] [--workers N] [--queue N] \
         [--max-conns N] [--shards N] [--loop-shards N] [--translator-shards N] \
         [--read-budget BYTES] [--event-backend auto|epoll|poll] [--max-rules N] \
         [--floors N] [--shops N] [--devices N] [--days N] [--seed N] [--snapshot PATH] \
         [--snapshot-root DIR] [--wal-dir DIR] [--fsync always|every=N|never] \
         [--segment-bytes N] [--metrics-addr HOST:PORT] [--no-obs] \
         [--slow-threshold-us N] [--trace-ring N] [--slow-log N] \
         [--idle-timeout SECS] [--rebalance] [--no-writev-batch]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(value) = args.next() else {
        usage_and_exit(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => usage_and_exit(&format!("invalid value {value:?} for {flag}")),
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        host: "127.0.0.1".to_string(),
        port: 0,
        config: ServerConfig::default(),
        floors: 2,
        shops: 3,
        devices: 8,
        days: 1,
        seed: 0x5EED,
        fsync: None,
        segment_bytes: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--host" => opts.host = parse(&mut args, "--host"),
            "--port" => opts.port = parse(&mut args, "--port"),
            "--workers" => opts.config.workers = parse(&mut args, "--workers"),
            "--queue" => opts.config.queue_capacity = parse(&mut args, "--queue"),
            "--max-conns" => opts.config.max_connections = parse(&mut args, "--max-conns"),
            "--shards" => opts.config.shards = parse(&mut args, "--shards"),
            "--loop-shards" => opts.config.loop_shards = parse(&mut args, "--loop-shards"),
            "--translator-shards" => {
                opts.config.translator_shards = parse(&mut args, "--translator-shards")
            }
            "--read-budget" => opts.config.read_budget = parse(&mut args, "--read-budget"),
            "--max-rules" => opts.config.max_rules = parse(&mut args, "--max-rules"),
            "--event-backend" => {
                let raw: String = parse(&mut args, "--event-backend");
                match BackendChoice::parse(&raw) {
                    Some(choice) => opts.config.backend = choice,
                    None => usage_and_exit(&format!(
                        "invalid value {raw:?} for --event-backend (auto|epoll|poll)"
                    )),
                }
            }
            "--floors" => opts.floors = parse(&mut args, "--floors"),
            "--shops" => opts.shops = parse(&mut args, "--shops"),
            "--devices" => opts.devices = parse(&mut args, "--devices"),
            "--days" => opts.days = parse(&mut args, "--days"),
            "--seed" => opts.seed = parse(&mut args, "--seed"),
            "--snapshot" => {
                opts.config.snapshot = Some(parse::<String>(&mut args, "--snapshot").into())
            }
            "--snapshot-root" => {
                opts.config.snapshot_root =
                    Some(parse::<String>(&mut args, "--snapshot-root").into())
            }
            "--wal-dir" => {
                let dir: String = parse(&mut args, "--wal-dir");
                let durability = opts
                    .config
                    .durability
                    .get_or_insert_with(|| DurabilityConfig::new(&dir));
                durability.dir = dir.into();
            }
            "--fsync" => {
                let policy: FsyncPolicy = parse(&mut args, "--fsync");
                opts.fsync = Some(policy);
            }
            "--segment-bytes" => opts.segment_bytes = Some(parse(&mut args, "--segment-bytes")),
            "--metrics-addr" => {
                opts.config.metrics_addr = Some(parse::<String>(&mut args, "--metrics-addr"))
            }
            "--no-obs" => opts.config.obs = false,
            "--slow-threshold-us" => {
                opts.config.slow_threshold_us = parse(&mut args, "--slow-threshold-us")
            }
            "--trace-ring" => opts.config.trace_ring = parse(&mut args, "--trace-ring"),
            "--slow-log" => opts.config.slow_log = parse(&mut args, "--slow-log"),
            "--idle-timeout" => {
                let secs: u64 = parse(&mut args, "--idle-timeout");
                if secs == 0 {
                    usage_and_exit("--idle-timeout must be at least 1 second");
                }
                opts.config.idle_timeout = Some(std::time::Duration::from_secs(secs));
            }
            "--rebalance" => opts.config.rebalance = true,
            "--no-writev-batch" => opts.config.writev_batch = false,
            other => usage_and_exit(&format!("unknown argument: {other}")),
        }
    }
    match opts.config.durability.as_mut() {
        Some(d) => {
            if let Some(fsync) = opts.fsync {
                d.fsync = fsync;
            }
            if let Some(bytes) = opts.segment_bytes {
                d.segment_bytes = bytes;
            }
        }
        None if opts.fsync.is_some() || opts.segment_bytes.is_some() => {
            usage_and_exit("--fsync/--segment-bytes need --wal-dir");
        }
        None => {}
    }
    if opts.config.durability.is_some() && opts.config.snapshot.is_some() {
        usage_and_exit("--snapshot and --wal-dir are mutually exclusive (a durable store's snapshot is its checkpoint)");
    }
    opts
}

fn main() {
    let opts = parse_args();
    eprintln!(
        "trips-serve: training deployment ({} floors, {} shops/row, {} devices, {} days, seed {:#x})...",
        opts.floors, opts.shops, opts.devices, opts.days, opts.seed
    );
    let boot = bootstrap_scenario(
        opts.floors,
        opts.shops,
        &ScenarioConfig {
            devices: opts.devices,
            days: opts.days,
            seed: opts.seed,
            ..ScenarioConfig::default()
        },
    );
    if let Some(path) = &opts.config.snapshot {
        eprintln!(
            "trips-serve: booting store from snapshot {}",
            path.display()
        );
    }
    if let Some(d) = &opts.config.durability {
        eprintln!(
            "trips-serve: durable store — wal dir {}, fsync {}, segment bytes {}",
            d.dir.display(),
            d.fsync,
            d.segment_bytes
        );
    }
    let server = match TripsServer::new(boot.dsm, boot.editor, opts.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trips-serve: cannot boot: {e}");
            std::process::exit(1);
        }
    };
    if let Some(r) = server.recovery_report() {
        eprintln!(
            "trips-serve: recovery — snapshot {}, {} wal records replayed over {} segments{}",
            if r.snapshot_loaded {
                "loaded"
            } else {
                "absent"
            },
            r.replayed_records,
            r.segments,
            if r.torn_tail_truncated {
                ", torn tail truncated"
            } else {
                ""
            },
        );
    }
    let listener = match TcpListener::bind((opts.host.as_str(), opts.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("trips-serve: cannot bind {}:{}: {e}", opts.host, opts.port);
            std::process::exit(1);
        }
    };
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    eprintln!(
        "trips-serve: event backend {}, loop shards {}, translator shards {}, \
         read budget {} bytes, rule cap {}",
        server.backend(),
        server.loop_shards(),
        server.translator_shards(),
        server.read_budget(),
        server.max_rules(),
    );
    println!("trips-serve: listening on {addr}");
    if let Some(metrics) = server.metrics_addr() {
        println!("trips-serve: metrics on {metrics}");
    }
    std::io::stdout().flush().expect("stdout flush");

    match server.serve(listener) {
        Ok(report) => {
            eprintln!(
                "trips-serve: drained — {} requests ({} shed, {} bad) over {} connections \
                 ({} rejected); peak queue {}; store holds {} devices / {} semantics",
                report.requests,
                report.shed,
                report.bad_requests,
                report.connections_accepted,
                report.connections_rejected,
                report.peak_queue_depth,
                report.devices,
                report.semantics,
            );
        }
        Err(e) => {
            eprintln!("trips-serve: serve failed: {e}");
            std::process::exit(1);
        }
    }
}
