//! Failure-injection tests: the pipeline must degrade gracefully, never
//! panic, on corrupt or degenerate input.

use trips::prelude::*;

fn mall() -> DigitalSpaceModel {
    MallBuilder::new().floors(2).shops_per_row(3).build()
}

fn trained_editor() -> EventEditor {
    let mut e = EventEditor::with_default_patterns();
    for k in 0..6usize {
        let stay: Vec<RawRecord> = (0..(10 + k))
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("t"),
                    5.0 + 0.1 * (i % 3) as f64,
                    4.0,
                    0,
                    Timestamp::from_millis(i as i64 * 7000),
                )
            })
            .collect();
        e.designate_segment("stay", &stay).unwrap();
        let walk: Vec<RawRecord> = (0..(5 + k))
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("t"),
                    9.0 * i as f64,
                    11.0,
                    0,
                    Timestamp::from_millis(i as i64 * 7000),
                )
            })
            .collect();
        e.designate_segment("pass-by", &walk).unwrap();
    }
    e
}

fn translate(seqs: Vec<PositioningSequence>) -> TranslationResult {
    let dsm = mall();
    let translator =
        Translator::from_editor(&dsm, &trained_editor(), TranslatorConfig::standard()).unwrap();
    translator.translate(&seqs)
}

#[test]
fn nan_and_infinite_coordinates_are_rejected_at_ingestion() {
    let d = DeviceId::new("bad");
    let records = vec![
        RawRecord::new(d.clone(), f64::NAN, 1.0, 0, Timestamp::from_millis(0)),
        RawRecord::new(
            d.clone(),
            1.0,
            f64::INFINITY,
            0,
            Timestamp::from_millis(1000),
        ),
        RawRecord::new(d.clone(), 5.0, 5.0, 0, Timestamp::from_millis(2000)),
    ];
    let seq = PositioningSequence::from_records(d, records);
    assert_eq!(seq.len(), 1, "only the finite record survives");
    let result = translate(vec![seq]);
    assert_eq!(result.devices.len(), 1);
}

#[test]
fn empty_sequence_translates_to_nothing() {
    let result = translate(vec![PositioningSequence::new(DeviceId::new("empty"))]);
    assert_eq!(result.devices.len(), 1);
    assert!(result.devices[0].semantics.is_empty());
    assert_eq!(result.devices[0].conciseness_ratio(), 0.0);
}

#[test]
fn single_record_sequence() {
    let d = DeviceId::new("single");
    let seq = PositioningSequence::from_records(
        d.clone(),
        vec![RawRecord::new(d, 5.0, 5.0, 0, Timestamp::from_millis(0))],
    );
    let result = translate(vec![seq]);
    // One record: cleanable, but too sparse for dense snippets; must not
    // panic either way.
    assert_eq!(result.devices.len(), 1);
}

#[test]
fn all_records_outside_building() {
    let d = DeviceId::new("lost");
    let records: Vec<RawRecord> = (0..30)
        .map(|i| {
            RawRecord::new(
                d.clone(),
                -900.0,
                -900.0,
                0,
                Timestamp::from_millis(i * 7000),
            )
        })
        .collect();
    let seq = PositioningSequence::from_records(d, records);
    let result = translate(vec![seq]);
    assert!(
        result.devices[0].semantics.is_empty(),
        "no regions match, no semantics"
    );
}

#[test]
fn records_on_unknown_floor() {
    let d = DeviceId::new("phantom-floor");
    let records: Vec<RawRecord> = (0..30)
        .map(|i| RawRecord::new(d.clone(), 5.0, 5.0, 40, Timestamp::from_millis(i * 7000)))
        .collect();
    let seq = PositioningSequence::from_records(d, records);
    let result = translate(vec![seq]);
    assert_eq!(result.devices.len(), 1, "must not panic on unknown floors");
}

#[test]
fn duplicate_timestamps_are_resolved() {
    let d = DeviceId::new("dup");
    let mut records = Vec::new();
    for i in 0..20i64 {
        records.push(RawRecord::new(
            d.clone(),
            5.0,
            4.0,
            0,
            Timestamp::from_millis(i * 7000),
        ));
        // Duplicate every 4th timestamp with a conflicting position.
        if i % 4 == 0 {
            records.push(RawRecord::new(
                d.clone(),
                50.0,
                4.0,
                0,
                Timestamp::from_millis(i * 7000),
            ));
        }
    }
    let seq = PositioningSequence::from_records(d, records);
    let result = translate(vec![seq]);
    let cleaned = &result.devices[0].cleaned;
    assert!(cleaned.report.dropped > 0, "duplicates must be dropped");
    // Cleaned sequence has strictly increasing timestamps.
    for w in cleaned.sequence.records().windows(2) {
        assert!(w[0].ts < w[1].ts);
    }
}

#[test]
fn disconnected_floor_does_not_break_translation() {
    // Build a mall plus an isolated room on floor 9 (no staircase).
    let mut dsm = MallBuilder::new().shops_per_row(3).build();
    let island = dsm.next_entity_id();
    dsm.add_entity(trips::dsm::Entity::area(
        island,
        trips::dsm::EntityKind::Room,
        9,
        "Island",
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
    ))
    .unwrap();
    let rid = dsm.next_region_id();
    dsm.add_region(SemanticRegion::new(
        rid,
        "Island Region",
        SemanticTag::new("island", "shop"),
        9,
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
        island,
    ))
    .unwrap();
    dsm.freeze();

    // Device jumps from floor 0 to the island: unreachable → records on the
    // island get dropped or the jump handled without panic.
    let d = DeviceId::new("jumper");
    let mut records: Vec<RawRecord> = (0..10)
        .map(|i| RawRecord::new(d.clone(), 5.0, 4.0, 0, Timestamp::from_millis(i * 7000)))
        .collect();
    for i in 10..20 {
        records.push(RawRecord::new(
            d.clone(),
            5.0,
            5.0,
            9,
            Timestamp::from_millis(i * 7000),
        ));
    }
    let seq = PositioningSequence::from_records(d, records);
    let translator =
        Translator::from_editor(&dsm, &trained_editor(), TranslatorConfig::standard()).unwrap();
    let result = translator.translate(&[seq]);
    assert_eq!(result.devices.len(), 1);
}

#[test]
fn degenerate_polygons_rejected_by_loaders() {
    assert!(Polygon::try_new(vec![]).is_none());
    assert!(Polygon::try_new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_none());
    assert!(Polygon::try_new(vec![
        Point::new(0.0, 0.0),
        Point::new(f64::NAN, 1.0),
        Point::new(1.0, 1.0),
    ])
    .is_none());
}

#[test]
fn csv_with_garbage_rows_reports_line() {
    let csv = "dev1,1.0,2.0,0,100\ndev1,oops,2.0,0,200\n";
    let mut src = trips::data::io::CsvSource::from_string(csv);
    use trips::data::io::RecordSource;
    match src.read_all() {
        Err(trips::data::io::IoError::Parse(line, _)) => assert_eq!(line, 2),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn massive_outlier_burst_cleaned_or_dropped() {
    let d = DeviceId::new("burst");
    let mut records = Vec::new();
    for i in 0..40i64 {
        let (x, y) = if (15..20).contains(&i) {
            (500.0 + i as f64, 500.0) // outlier burst
        } else {
            (10.0 + 0.5 * i as f64, 11.0)
        };
        records.push(RawRecord::new(
            d.clone(),
            x,
            y,
            0,
            Timestamp::from_millis(i * 7000),
        ));
    }
    let dsm = mall();
    let cleaner = Cleaner::with_defaults(&dsm).unwrap();
    let out = cleaner.clean(&PositioningSequence::from_records(d, records));
    // Every surviving record satisfies the speed constraint.
    let checker = trips::clean::SpeedChecker::new(&dsm, 3.0).unwrap();
    assert!(checker.scan(out.sequence.records()).is_empty());
    assert!(out.report.interpolated + out.report.dropped >= 5);
}
