//! Property-based invariants across the pipeline, on randomly generated
//! record sequences over a fixed mall.

use proptest::prelude::*;
use trips::prelude::*;

fn mall() -> DigitalSpaceModel {
    MallBuilder::new().floors(2).shops_per_row(3).build()
}

fn trained_editor() -> EventEditor {
    let mut e = EventEditor::with_default_patterns();
    for k in 0..6usize {
        let stay: Vec<RawRecord> = (0..(10 + k))
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("t"),
                    5.0 + 0.1 * (i % 3) as f64,
                    4.0,
                    0,
                    Timestamp::from_millis(i as i64 * 7000),
                )
            })
            .collect();
        e.designate_segment("stay", &stay).unwrap();
        let walk: Vec<RawRecord> = (0..(5 + k))
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("t"),
                    9.0 * i as f64,
                    11.0,
                    0,
                    Timestamp::from_millis(i as i64 * 7000),
                )
            })
            .collect();
        e.designate_segment("pass-by", &walk).unwrap();
    }
    e
}

/// A random walk inside the mall footprint with occasional glitches.
fn arb_sequence() -> impl Strategy<Value = PositioningSequence> {
    let step = (
        -3.0f64..3.0,
        -3.0f64..3.0,
        0u8..40,  // glitch selector
        1i64..15, // seconds to next record
    );
    proptest::collection::vec(step, 2..120).prop_map(|steps| {
        let d = DeviceId::new("prop");
        let mut x = 15.0f64;
        let mut y = 11.0f64;
        let mut floor = 0i16;
        let mut t = 0i64;
        let mut records = Vec::with_capacity(steps.len());
        for (dx, dy, glitch, dt) in steps {
            t += dt * 1000;
            x = (x + dx).clamp(0.0, 30.0);
            y = (y + dy).clamp(0.0, 22.0);
            match glitch {
                0 => floor = (floor + 1).min(1), // floor misread up
                1 => floor = (floor - 1).max(0), // floor misread down
                2 => {
                    // Outlier jump.
                    records.push(RawRecord::new(
                        d.clone(),
                        x + 200.0,
                        y,
                        floor,
                        Timestamp::from_millis(t),
                    ));
                    continue;
                }
                _ => {}
            }
            records.push(RawRecord::new(
                d.clone(),
                x,
                y,
                floor,
                Timestamp::from_millis(t),
            ));
        }
        PositioningSequence::from_records(d, records)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cleaned_output_always_satisfies_speed_constraint(seq in arb_sequence()) {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        let out = cleaner.clean(&seq);
        let checker = trips::clean::SpeedChecker::new(&dsm, 3.0).unwrap();
        prop_assert!(checker.scan(out.sequence.records()).is_empty(),
            "violations remain after cleaning");
        // Audit counts consistent.
        let r = out.report;
        prop_assert_eq!(r.valid + r.floor_corrected + r.interpolated + r.dropped, r.input_records);
        prop_assert_eq!(out.sequence.len(), r.input_records - r.dropped);
    }

    #[test]
    fn cleaning_is_idempotent(seq in arb_sequence()) {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        let once = cleaner.clean(&seq);
        let twice = cleaner.clean(&once.sequence);
        prop_assert_eq!(twice.report.repair_rate(), 0.0);
        prop_assert_eq!(once.sequence.records(), twice.sequence.records());
    }

    #[test]
    fn semantics_are_sorted_and_within_span(seq in arb_sequence()) {
        let dsm = mall();
        let translator = Translator::from_editor(&dsm, &trained_editor(), TranslatorConfig::standard()).unwrap();
        let result = translator.translate(std::slice::from_ref(&seq));
        let d = &result.devices[0];
        for s in &d.semantics {
            prop_assert!(s.start <= s.end);
        }
        for w in d.semantics.windows(2) {
            prop_assert!(w[0].start <= w[1].start, "sorted semantics");
            prop_assert!(w[0].end <= w[1].start, "non-overlapping semantics");
        }
        if let (Some(start), Some(end)) = (seq.start(), seq.end()) {
            for s in &d.semantics {
                prop_assert!(s.start >= start && s.end <= end, "within sequence span");
            }
        }
    }

    #[test]
    fn complementing_preserves_observed_entries(seq in arb_sequence()) {
        let dsm = mall();
        let translator = Translator::from_editor(&dsm, &trained_editor(), TranslatorConfig::standard()).unwrap();
        let result = translator.translate(std::slice::from_ref(&seq));
        let d = &result.devices[0];
        let observed: Vec<_> = d.semantics.iter().filter(|s| !s.inferred).cloned().collect();
        prop_assert_eq!(&observed, &d.original_semantics);
    }

    #[test]
    fn timeline_click_always_includes_clicked_entry(seq in arb_sequence()) {
        let dsm = mall();
        let translator = Translator::from_editor(&dsm, &trained_editor(), TranslatorConfig::standard()).unwrap();
        let result = translator.translate(std::slice::from_ref(&seq));
        let d = &result.devices[0];
        let entries: Vec<Entry> = d
            .semantics
            .iter()
            .map(|s| Entry::from_semantics(s, &dsm))
            .chain(d.raw.records().iter().map(|r| Entry::from_record(r, SourceKind::Raw)))
            .collect();
        let timeline = Timeline::new(entries);
        for i in 0..timeline.navigator_len() {
            let covered = timeline.click_navigator(i).unwrap();
            prop_assert!(!covered.is_empty());
            prop_assert!(covered.iter().any(|e| e.source == SourceKind::Semantics));
        }
    }
}
