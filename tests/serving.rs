//! The serving layer through the root facade: boot a server from the
//! prelude types, round-trip ingest → flush → query over TCP.

use trips::prelude::*;
use trips::server::{bootstrap_scenario, Response};
use trips::store::StoreHealth;

#[test]
fn facade_serves_ingest_and_query_over_tcp() {
    let boot = bootstrap_scenario(
        1,
        2,
        &ScenarioConfig {
            devices: 2,
            days: 1,
            seed: 0xFACE,
            ..ScenarioConfig::default()
        },
    );
    let traffic = trips::sim::scenario::generate(
        1,
        2,
        &ScenarioConfig {
            devices: 2,
            days: 1,
            seed: 0xD00D,
            ..ScenarioConfig::default()
        },
    );

    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let service = server.query_service();
    let handle = server.spawn("127.0.0.1:0").unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.ping().unwrap(), Response::Pong);
    for trace in &traffic.traces {
        match client.ingest(trace.raw.records().to_vec()).unwrap() {
            Response::Ingested { rejected, .. } => assert_eq!(rejected, 0),
            other => panic!("ingest failed: {other:?}"),
        }
    }
    match client.flush(None).unwrap() {
        Response::Flushed { devices, .. } => assert_eq!(devices, traffic.traces.len()),
        other => panic!("flush failed: {other:?}"),
    }

    // Query over the wire...
    let wire = match client
        .query_parts(SemanticsSelector::all(), Query::PopularRegions)
        .unwrap()
        .unwrap()
    {
        QueryResult::PopularRegions(p) => p,
        other => panic!("wrong variant: {other:?}"),
    };
    assert!(!wire.is_empty(), "two shoppers must produce semantics");
    // ...agrees with the in-process QueryService over the same live store.
    assert_eq!(wire, service.popular_regions(&SemanticsSelector::all()));
    // And the cheap health view agrees with the store.
    match client.health().unwrap() {
        Response::Health(h) => {
            let expected: StoreHealth = service.store_stats();
            assert_eq!(h.store, expected);
            assert!(h.store.semantics > 0);
        }
        other => panic!("health failed: {other:?}"),
    }
    drop(client);
    let report = handle.shutdown().unwrap();
    assert_eq!(report.bad_requests, 0);
    assert_eq!(report.shed, 0);
}
