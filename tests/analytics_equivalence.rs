//! Pins the `trips-store` refactor of `trips_core::analytics`: the thin
//! wrapper functions must return results **identical** to the pre-refactor
//! full-rescan implementations on the golden e2e fixture, and the live
//! query service published by `Trips::run` must agree with both.
//!
//! The `rescan` module below is a verbatim port of the pre-refactor
//! analytics implementations (full pass over `TranslationResult` on every
//! call) kept as the reference oracle.

use trips::core::analytics;
use trips::prelude::*;

const GOLDEN_SEED: u64 = 0x601D;

/// The pre-refactor full-rescan analytics, preserved as the oracle.
mod rescan {
    use std::collections::BTreeMap;
    use trips::core::analytics::{DeviceSummary, Flow, RegionPopularity};
    use trips::core::TranslationResult;
    use trips::data::Duration;
    use trips::dsm::RegionId;

    pub fn popular_regions(result: &TranslationResult) -> Vec<RegionPopularity> {
        let mut map: BTreeMap<RegionId, RegionPopularity> = BTreeMap::new();
        let mut stayers: BTreeMap<RegionId, std::collections::BTreeSet<&str>> = BTreeMap::new();
        for d in &result.devices {
            for s in &d.semantics {
                let e = map.entry(s.region).or_insert_with(|| RegionPopularity {
                    region: s.region,
                    region_name: s.region_name.clone(),
                    stays: 0,
                    pass_bys: 0,
                    unique_stayers: 0,
                    total_dwell: Duration::ZERO,
                });
                if s.event == "stay" {
                    e.stays += 1;
                    e.total_dwell = e.total_dwell + s.duration();
                    stayers
                        .entry(s.region)
                        .or_default()
                        .insert(d.raw.device().as_str());
                } else {
                    e.pass_bys += 1;
                }
            }
        }
        let mut out: Vec<RegionPopularity> = map
            .into_values()
            .map(|mut p| {
                p.unique_stayers = stayers.get(&p.region).map_or(0, |s| s.len());
                p
            })
            .collect();
        out.sort_by(|a, b| {
            b.stays
                .cmp(&a.stays)
                .then(b.total_dwell.cmp(&a.total_dwell))
        });
        out
    }

    pub fn top_flows(result: &TranslationResult, limit: usize) -> Vec<Flow> {
        let mut counts: BTreeMap<(RegionId, RegionId), (String, String, usize)> = BTreeMap::new();
        for d in &result.devices {
            for w in d.semantics.windows(2) {
                if w[0].region == w[1].region {
                    continue;
                }
                let e = counts
                    .entry((w[0].region, w[1].region))
                    .or_insert_with(|| (w[0].region_name.clone(), w[1].region_name.clone(), 0));
                e.2 += 1;
            }
        }
        let mut flows: Vec<Flow> = counts
            .into_iter()
            .map(|((from, to), (from_name, to_name, count))| Flow {
                from,
                from_name,
                to,
                to_name,
                count,
            })
            .collect();
        flows.sort_by_key(|f| std::cmp::Reverse(f.count));
        flows.truncate(limit);
        flows
    }

    pub fn dwell_histogram(result: &TranslationResult, bucket: Duration) -> Vec<(Duration, usize)> {
        assert!(bucket.as_millis() > 0, "bucket must be positive");
        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
        for d in &result.devices {
            for s in d.semantics.iter().filter(|s| s.event == "stay") {
                let b = s.duration().as_millis() / bucket.as_millis();
                *counts.entry(b).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .map(|(b, n)| (Duration(b * bucket.as_millis()), n))
            .collect()
    }

    pub fn device_summaries(result: &TranslationResult) -> Vec<DeviceSummary> {
        result
            .devices
            .iter()
            .map(|d| {
                let regions: std::collections::BTreeSet<RegionId> =
                    d.semantics.iter().map(|s| s.region).collect();
                DeviceSummary {
                    device: d.raw.device().anonymized(),
                    regions_visited: regions.len(),
                    stays: d.semantics.iter().filter(|s| s.event == "stay").count(),
                    accounted: Duration(d.semantics.iter().map(|s| s.duration().as_millis()).sum()),
                }
            })
            .collect()
    }
}

fn golden_system() -> trips::core::Trips {
    let ds = trips::sim::scenario::generate(
        2,
        4,
        &ScenarioConfig {
            devices: 8,
            days: 1,
            seed: GOLDEN_SEED,
            ..ScenarioConfig::default()
        },
    );
    let editor = trips_bench::editor_from_truth(&ds, ds.traces.len());
    Trips::new(Configurator::new(ds.dsm.clone()).with_event_editor(editor))
}

#[test]
fn wrappers_identical_to_prerefactor_rescan_on_golden_fixture() {
    let ds = trips::sim::scenario::generate(
        2,
        4,
        &ScenarioConfig {
            devices: 8,
            days: 1,
            seed: GOLDEN_SEED,
            ..ScenarioConfig::default()
        },
    );
    let mut system = golden_system();
    let result = system.run(ds.sequences()).expect("pipeline runs").clone();
    assert!(result.total_semantics() > 0, "fixture must be non-trivial");

    assert_eq!(
        analytics::popular_regions(&result),
        rescan::popular_regions(&result),
        "popular_regions drifted from the pre-refactor implementation"
    );
    for limit in [1, 5, usize::MAX] {
        assert_eq!(
            analytics::top_flows(&result, limit),
            rescan::top_flows(&result, limit),
            "top_flows(limit={limit}) drifted"
        );
    }
    for bucket in [Duration::from_secs(30), Duration::from_mins(5)] {
        assert_eq!(
            analytics::dwell_histogram(&result, bucket),
            rescan::dwell_histogram(&result, bucket),
            "dwell_histogram drifted"
        );
    }
    assert_eq!(
        analytics::device_summaries(&result),
        rescan::device_summaries(&result),
        "device_summaries drifted"
    );
}

#[test]
fn live_query_service_agrees_with_rescan_oracle() {
    let ds = trips::sim::scenario::generate(
        2,
        4,
        &ScenarioConfig {
            devices: 8,
            days: 1,
            seed: GOLDEN_SEED,
            ..ScenarioConfig::default()
        },
    );
    let mut system = golden_system();
    let result = system.run(ds.sequences()).expect("pipeline runs").clone();
    let service = system.query_service();
    let all = SemanticsSelector::all();

    assert_eq!(
        service.popular_regions(&all),
        rescan::popular_regions(&result)
    );
    assert_eq!(service.top_flows(&all, 10), rescan::top_flows(&result, 10));
    assert_eq!(
        service.dwell_histogram(&all, Duration::from_mins(5)),
        rescan::dwell_histogram(&result, Duration::from_mins(5))
    );
    // Store summaries are device-id ordered; the oracle is input ordered —
    // compare as sorted multisets plus per-device lookup.
    let mut oracle = rescan::device_summaries(&result);
    oracle.sort_by(|a, b| a.device.cmp(&b.device));
    let mut via_store: Vec<_> = service
        .device_summaries(&all)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    via_store.sort_by(|a, b| a.device.cmp(&b.device));
    assert_eq!(via_store, oracle);

    // Typed dispatch returns the same data.
    match service.query(&QueryRequest::new(all, Query::PopularRegions)) {
        QueryResult::PopularRegions(p) => assert_eq!(p, rescan::popular_regions(&result)),
        other => panic!("wrong variant: {other:?}"),
    }
}
