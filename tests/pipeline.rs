//! Cross-crate integration tests: the full TRIPS pipeline on simulated
//! mall workloads.

use trips::core::{assess, export};
use trips::prelude::*;

/// Builds an editor from ground truth designations, as the demo analyst
/// would via the Event Editor UI.
fn editor_from_truth(ds: &SimulatedDataset, traces: usize) -> EventEditor {
    let mut editor = EventEditor::with_default_patterns();
    for trace in ds.traces.iter().take(traces) {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() >= 2 {
                let _ = editor.designate_segment(visit.kind.name(), &segment);
            }
        }
    }
    editor
}

fn dataset(seed: u64, devices: usize) -> SimulatedDataset {
    trips::sim::scenario::generate(
        3,
        4,
        &ScenarioConfig {
            devices,
            days: 1,
            seed,
            ..ScenarioConfig::default()
        },
    )
}

#[test]
fn full_pipeline_produces_assessable_semantics() {
    let ds = dataset(101, 6);
    let editor = editor_from_truth(&ds, 6);
    let mut system = Trips::new(Configurator::new(ds.dsm.clone()).with_event_editor(editor));
    let result = system.run(ds.sequences()).expect("translate");

    let mut reports = Vec::new();
    for trace in &ds.traces {
        let d = result.device(&trace.device).expect("device translated");
        reports.push(assess::assess(&d.semantics, &trace.truth_visits));
    }
    let agg = assess::aggregate(&reports);
    assert!(
        agg.region_time_accuracy > 0.5,
        "translation should locate the right region most of the time: {agg:?}"
    );
    assert!(
        agg.coverage > 0.5,
        "semantics should cover most of the visit time: {agg:?}"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let ds = dataset(555, 3);
        let editor = editor_from_truth(&ds, 3);
        let mut system = Trips::new(Configurator::new(ds.dsm.clone()).with_event_editor(editor));
        let result = system.run(ds.sequences()).expect("translate");
        export::to_text(result)
    };
    assert_eq!(run(), run(), "same seed, same output file");
}

#[test]
fn cleaning_improves_position_fidelity() {
    // Heavier error model; compare raw vs cleaned RMS distance to ground
    // truth at the matching timestamps.
    let ds = trips::sim::scenario::generate(
        2,
        3,
        &ScenarioConfig {
            devices: 4,
            days: 1,
            seed: 321,
            error_model: ErrorModel {
                outlier_rate: 0.10,
                floor_error_rate: 0.10,
                ..ErrorModel::default()
            },
            ..ScenarioConfig::default()
        },
    );
    let cleaner = Cleaner::with_defaults(&ds.dsm).expect("frozen");

    let mut raw_err = 0.0f64;
    let mut cleaned_err = 0.0f64;
    let mut raw_n = 0usize;
    let mut cleaned_n = 0usize;
    let mut raw_floor_err = 0usize;
    let mut cleaned_floor_err = 0usize;

    for trace in &ds.traces {
        let truth = &trace.truth_samples;
        let truth_at = |ts: Timestamp| -> Option<IndoorPoint> {
            let idx = truth.partition_point(|(t, _)| *t <= ts);
            (idx > 0).then(|| truth[idx - 1].1)
        };
        for r in trace.raw.records() {
            if let Some(t) = truth_at(r.ts) {
                raw_err += t.xy.distance(r.location.xy).powi(2);
                raw_n += 1;
                raw_floor_err += usize::from(t.floor != r.location.floor);
            }
        }
        let cleaned = cleaner.clean(&trace.raw);
        for r in cleaned.sequence.records() {
            if let Some(t) = truth_at(r.ts) {
                cleaned_err += t.xy.distance(r.location.xy).powi(2);
                cleaned_n += 1;
                cleaned_floor_err += usize::from(t.floor != r.location.floor);
            }
        }
    }
    let raw_rmse = (raw_err / raw_n as f64).sqrt();
    let cleaned_rmse = (cleaned_err / cleaned_n as f64).sqrt();
    assert!(
        cleaned_rmse < raw_rmse,
        "cleaning must reduce RMSE: raw {raw_rmse:.2} vs cleaned {cleaned_rmse:.2}"
    );
    let raw_fr = raw_floor_err as f64 / raw_n as f64;
    let cleaned_fr = cleaned_floor_err as f64 / cleaned_n as f64;
    assert!(
        cleaned_fr < raw_fr,
        "floor correction must reduce floor error rate: {raw_fr:.3} vs {cleaned_fr:.3}"
    );
}

#[test]
fn complementing_improves_coverage_under_dropouts() {
    // Heavy burst dropouts create gaps; the Complementor must close them.
    let ds = trips::sim::scenario::generate(
        2,
        3,
        &ScenarioConfig {
            devices: 8,
            days: 1,
            seed: 888,
            error_model: ErrorModel {
                burst_drop_rate: 0.04,
                burst_len: 40,
                ..ErrorModel::default()
            },
            ..ScenarioConfig::default()
        },
    );
    let editor = editor_from_truth(&ds, 8);
    let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
        .expect("translator");
    let result = translator.translate(&ds.sequences());

    let mut original = Vec::new();
    let mut complemented = Vec::new();
    for trace in &ds.traces {
        let d = result.device(&trace.device).expect("device");
        original.push(assess::assess(&d.original_semantics, &trace.truth_visits));
        complemented.push(assess::assess(&d.semantics, &trace.truth_visits));
    }
    let orig = assess::aggregate(&original);
    let comp = assess::aggregate(&complemented);
    assert!(
        comp.coverage > orig.coverage,
        "complementing must raise coverage: {:.3} -> {:.3}",
        orig.coverage,
        comp.coverage
    );
}

#[test]
fn selector_feeds_translator() {
    let ds = dataset(42, 10);
    let editor = editor_from_truth(&ds, 10);
    // Keep only long sequences.
    let selector = Selector::new(SelectionRule::MinRecords(80));
    let expected = selector.select_refs(&ds.sequences()).len();
    let mut system = Trips::new(
        Configurator::new(ds.dsm.clone())
            .with_selector(selector)
            .with_event_editor(editor),
    );
    let result = system.run(ds.sequences()).expect("translate");
    assert_eq!(result.devices.len(), expected);
    assert!(result.devices.len() < 10, "selection must filter something");
}

#[test]
fn dsm_json_roundtrip_preserves_translation() {
    let ds = dataset(77, 3);
    let editor = editor_from_truth(&ds, 3);

    // Translate on the original DSM.
    let t1 = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard()).unwrap();
    let r1 = t1.translate(&ds.sequences());

    // Round-trip the DSM through JSON, then translate again.
    let json = trips::dsm::json::to_json(&ds.dsm).unwrap();
    let dsm2 = trips::dsm::json::from_json(&json).unwrap();
    let t2 = Translator::from_editor(&dsm2, &editor, TranslatorConfig::standard()).unwrap();
    let r2 = t2.translate(&ds.sequences());

    assert_eq!(export::to_text(&r1), export::to_text(&r2));
}

#[test]
fn export_formats_cover_all_devices() {
    let ds = dataset(31, 4);
    let editor = editor_from_truth(&ds, 4);
    let mut system = Trips::new(Configurator::new(ds.dsm.clone()).with_event_editor(editor));
    let result = system.run(ds.sequences()).expect("translate");

    let text = export::to_text(result);
    let json = export::to_json(result).unwrap();
    for trace in &ds.traces {
        assert!(text.contains(&trace.device.anonymized()));
        assert!(json.contains(&trace.device.anonymized()));
    }
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v.as_array().unwrap().len(), 4);
}

#[test]
fn viewer_pipeline_renders_translated_device() {
    let ds = dataset(64, 2);
    let editor = editor_from_truth(&ds, 2);
    let device = ds.traces[0].device.clone();
    let mut system = Trips::new(Configurator::new(ds.dsm.clone()).with_event_editor(editor));
    system.run(ds.sequences()).expect("translate");

    let timeline = system.timeline_for(&device).expect("timeline");
    assert!(timeline.navigator_len() > 0);
    // Every navigator click returns at least the clicked entry.
    for i in 0..timeline.navigator_len() {
        let covered = timeline.click_navigator(i).expect("in range");
        assert!(!covered.is_empty());
    }
    // Render every floor without panicking; floor 0 must show data.
    let mut any_data = false;
    for f in 0..3i16 {
        let svg = system.render_svg(&device, f).expect("svg");
        any_data |= svg.contains("entry-");
    }
    assert!(any_data, "at least one floor shows the device's data");
}
