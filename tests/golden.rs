//! Deterministic end-to-end golden test: the full `Trips::run` pipeline on
//! a fixed-seed simulated mall, pinning both exact output counts and an
//! assessment-quality floor. A regression in any layer (selection,
//! cleaning, annotation, complementing, assessment) moves at least one of
//! these numbers.
//!
//! All randomness flows from the workspace's vendored `rand` via the fixed
//! scenario seed, so the expected values are stable across runs and
//! machines. If a deliberate algorithm change shifts them, re-derive the
//! constants by running with `--nocapture` and reading the printed actuals.

use trips::annotate::baseline::ThresholdClassifier;
use trips::annotate::model::evaluate;
use trips::core::assess;
use trips::prelude::*;

const GOLDEN_SEED: u64 = 0x601D;

fn dataset() -> SimulatedDataset {
    trips::sim::scenario::generate(
        2,
        4,
        &ScenarioConfig {
            devices: 8,
            days: 1,
            seed: GOLDEN_SEED,
            ..ScenarioConfig::default()
        },
    )
}

/// Ground-truth-trained editor over every trace, via the shared bench
/// harness so golden expectations and the evaluation binaries can't diverge.
fn editor_from_truth(ds: &SimulatedDataset) -> EventEditor {
    trips_bench::editor_from_truth(ds, ds.traces.len())
}

#[test]
fn golden_pipeline_counts_and_quality_floor() {
    let ds = dataset();
    let editor = editor_from_truth(&ds);
    let sequences = ds.sequences();
    let raw_records: usize = sequences.iter().map(|s| s.len()).sum();

    let mut system = Trips::new(Configurator::new(ds.dsm.clone()).with_event_editor(editor));
    let result = system.run(sequences).expect("pipeline runs");

    println!(
        "actuals: devices={} raw={} semantics={} inferred={}",
        result.devices.len(),
        raw_records,
        result.total_semantics(),
        result
            .devices
            .iter()
            .map(|d| d.inferred_count())
            .sum::<usize>(),
    );

    // --- Golden counts (layer-shape regressions) -------------------------
    assert_eq!(result.devices.len(), 8, "one translation per device");
    assert_eq!(raw_records, 828, "simulator output drifted");
    assert_eq!(result.total_semantics(), 88, "semantics count drifted");
    assert_eq!(
        result
            .devices
            .iter()
            .map(|d| d.inferred_count())
            .sum::<usize>(),
        1,
        "complementing drifted"
    );

    // Structural invariants that must hold regardless of the exact counts.
    assert!(result.total_records() > result.total_semantics());
    for d in &result.devices {
        for w in d.semantics.windows(2) {
            assert!(w[0].end <= w[1].start, "semantics sorted, non-overlapping");
        }
    }

    // --- Assessment floor (quality regressions) --------------------------
    let reports: Vec<_> = ds
        .traces
        .iter()
        .filter_map(|t| {
            result
                .device(t.raw.device())
                .map(|d| assess::assess(&d.semantics, &t.truth_visits))
        })
        .collect();
    assert_eq!(reports.len(), 8);
    let agg = assess::aggregate(&reports);
    println!(
        "assessment: region_time={:.3} coverage={:.3} event={:.3}",
        agg.region_time_accuracy, agg.coverage, agg.event_accuracy
    );
    assert!(agg.region_time_accuracy > 0.70, "region accuracy {agg:?}");
    assert!(agg.coverage > 0.80, "coverage {agg:?}");

    // The learned event model must beat the fixed-threshold heuristic from
    // `annotate::baseline` on this workload's labelled snippets.
    let (xs, ys) = trips_bench::labelled_snippets(&ds);
    let editor = editor_from_truth(&ds);
    let (model, _labels) = editor.train_default_model().expect("trainable");
    let learned = evaluate(&model, &xs, &ys, 2);
    let baseline = evaluate(&ThresholdClassifier::default(), &xs, &ys, 2);
    println!(
        "event accuracy: learned={:.3} baseline={:.3}",
        learned.accuracy, baseline.accuracy
    );
    assert!(
        learned.accuracy > baseline.accuracy,
        "learned ({:.3}) must beat the threshold baseline ({:.3})",
        learned.accuracy,
        baseline.accuracy
    );
    assert!(
        agg.event_accuracy >= baseline.accuracy - 0.05,
        "end-to-end event accuracy {:.3} fell below the baseline heuristic {:.3}",
        agg.event_accuracy,
        baseline.accuracy
    );
}

#[test]
fn golden_run_is_reproducible() {
    let run = || {
        let ds = dataset();
        let editor = editor_from_truth(&ds);
        let sequences = ds.sequences();
        let mut system = Trips::new(Configurator::new(ds.dsm.clone()).with_event_editor(editor));
        let result = system.run(sequences).expect("pipeline runs");
        result
            .devices
            .iter()
            .flat_map(|d| d.semantics.iter())
            .map(|s| (s.device.clone(), s.event.clone(), s.region, s.start, s.end))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed must reproduce identical semantics");
}
