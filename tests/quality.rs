//! Quality comparisons: the learning-based event identification vs the two
//! literature baselines, on simulated ground truth (experiment F3b's
//! assertions in test form).

use trips::annotate::baseline::ThresholdClassifier;
use trips::annotate::features::FeatureVector;
use trips::annotate::model::{evaluate, Classifier};
use trips::prelude::*;

/// Extracts labelled snippets (features + 0 = stay / 1 = pass-by) from
/// simulated ground truth visits.
fn labelled_snippets(ds: &SimulatedDataset) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for trace in &ds.traces {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() < 2 {
                continue;
            }
            xs.push(FeatureVector::extract(&segment).values().to_vec());
            ys.push(match visit.kind {
                trips::sim::VisitKind::Stay => 0,
                trips::sim::VisitKind::PassBy => 1,
            });
        }
    }
    (xs, ys)
}

fn dataset(seed: u64) -> SimulatedDataset {
    trips::sim::scenario::generate(
        2,
        4,
        &ScenarioConfig {
            devices: 20,
            days: 1,
            seed,
            ..ScenarioConfig::default()
        },
    )
}

#[test]
fn learned_model_beats_threshold_baseline() {
    let train_ds = dataset(1001);
    let test_ds = dataset(2002);
    let (train_x, train_y) = labelled_snippets(&train_ds);
    let (test_x, test_y) = labelled_snippets(&test_ds);
    assert!(
        train_x.len() > 30,
        "enough training snippets: {}",
        train_x.len()
    );
    assert!(test_x.len() > 30);

    let tree = trips::annotate::model::DecisionTree::train(
        &train_x,
        &train_y,
        2,
        &trips::annotate::model::TreeParams::default(),
    );
    let tree_m = evaluate(&tree, &test_x, &test_y, 2);

    let baseline = ThresholdClassifier::default();
    let base_m = evaluate(&baseline, &test_x, &test_y, 2);

    assert!(
        tree_m.accuracy >= base_m.accuracy,
        "learned {:.3} must be at least threshold {:.3}",
        tree_m.accuracy,
        base_m.accuracy
    );
    assert!(
        tree_m.accuracy > 0.8,
        "learned accuracy {:.3}",
        tree_m.accuracy
    );
}

#[test]
fn forest_and_knn_are_competitive() {
    let train_ds = dataset(3003);
    let test_ds = dataset(4004);
    let (train_x, train_y) = labelled_snippets(&train_ds);
    let (test_x, test_y) = labelled_snippets(&test_ds);

    let forest = trips::annotate::model::RandomForest::train(&train_x, &train_y, 2, 15, 9);
    let knn = trips::annotate::model::KNearest::train(&train_x, &train_y, 2, 5);

    let fm = evaluate(&forest, &test_x, &test_y, 2);
    let km = evaluate(&knn, &test_x, &test_y, 2);
    assert!(fm.accuracy > 0.75, "forest {:.3}", fm.accuracy);
    assert!(km.accuracy > 0.70, "knn {:.3}", km.accuracy);
}

#[test]
fn more_training_data_helps_or_holds() {
    let ds = dataset(5005);
    let test_ds = dataset(6006);
    let (xs, ys) = labelled_snippets(&ds);
    let (tx, ty) = labelled_snippets(&test_ds);

    let acc = |n: usize| {
        // Take a class-balanced prefix of n examples.
        let mut bx = Vec::new();
        let mut by = Vec::new();
        let mut count = [0usize; 2];
        for (x, &y) in xs.iter().zip(&ys) {
            if count[y] < n / 2 {
                bx.push(x.clone());
                by.push(y);
                count[y] += 1;
            }
        }
        if by.iter().collect::<std::collections::BTreeSet<_>>().len() < 2 {
            return 0.0;
        }
        let tree = trips::annotate::model::DecisionTree::train(
            &bx,
            &by,
            2,
            &trips::annotate::model::TreeParams::default(),
        );
        evaluate(&tree, &tx, &ty, 2).accuracy
    };

    let small = acc(8);
    let large = acc(xs.len());
    assert!(
        large + 0.05 >= small,
        "training on all data ({large:.3}) should not lose badly to 8 examples ({small:.3})"
    );
    assert!(large > 0.8, "full-data accuracy {large:.3}");
}

#[test]
fn stop_move_baseline_cannot_express_custom_patterns() {
    // The SMoT baseline vocabulary is fixed {stop, move}; TRIPS's Event
    // Editor supports arbitrary user-defined patterns. Verify the editor
    // trains a 3-class model the baseline cannot express.
    let mut editor = EventEditor::with_default_patterns();
    editor
        .define_pattern("queueing", "waiting in a slow-moving line")
        .unwrap();
    let mk = |speed: f64, n: usize| -> Vec<RawRecord> {
        (0..n)
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("q"),
                    speed * 7.0 * i as f64,
                    4.0,
                    0,
                    Timestamp::from_millis(i as i64 * 7000),
                )
            })
            .collect()
    };
    for k in 0..8usize {
        editor
            .designate_segment("stay", &mk(0.005, 12 + k))
            .unwrap();
        editor
            .designate_segment("queueing", &mk(0.07, 10 + k))
            .unwrap();
        editor
            .designate_segment("pass-by", &mk(1.3, 6 + k))
            .unwrap();
    }
    let (model, labels) = editor.train_default_model().unwrap();
    assert_eq!(labels.len(), 3);
    let queue_f = FeatureVector::extract(&mk(0.07, 11));
    assert_eq!(labels[model.predict(queue_f.values())], "queueing");
}
